//! # heapdrag-analysis
//!
//! The static analyses of §5 of *Heap Profiling for Space-Efficient Java*
//! — the machinery needed to perform the paper's three space-saving
//! rewritings automatically instead of by hand:
//!
//! | §5 analysis | module |
//! |---|---|
//! | control flow & stack maps | [`cfg`](mod@cfg), [`types`] |
//! | liveness of reference locals (death points for `assign null`) | [`liveness`](mod@liveness) |
//! | usage analysis (write-only statics/fields) | [`usage`] |
//! | indirect-usage analysis (never-dereferenced allocations) | [`indirect_usage`] |
//! | array liveness / vector idiom (`elements[--size]` leaks) | [`vector_leak`] |
//! | call-graph dependence (CHA, unreachable methods) | [`callgraph`] |
//! | exception analysis (precise-exception safety of removals) | [`exceptions`] |
//! | constructor purity / escape (removability, lazy-allocatability) | [`purity`], [`provenance`] |
//! | use-def chains (\"possible uses of a reference\") | [`reaching`] |
//! | minimal code insertion (first-use guard points) | [`lazy_points`] |
//!
//! All analyses are conservative: they may miss opportunities but never
//! report a transformation as safe when it is not — the property the
//! transformation tests in `heapdrag-transform` exercise.
//!
//! ```
//! use heapdrag_analysis::{death_points, CallGraph, UsageAnalysis};
//! use heapdrag_vm::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A buffer whose local variable outlives its last use.
//! let mut b = ProgramBuilder::new();
//! let main = b.declare_method("main", None, true, 1, 3);
//! {
//!     let mut m = b.begin_body(main);
//!     m.push_int(1000).new_array().store(1);
//!     m.load(1).push_int(0).aload().pop(); // last use of local 1
//!     m.push_int(8).new_array().store(2); // unrelated work
//!     m.load(2).push_int(0).aload().print();
//!     m.ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let program = b.finish()?;
//!
//! // Liveness finds the death frontier where `pushnull; store 1`
//! // belongs (the assign-null rewriting of §3.3.1).
//! let points = death_points(&program, program.entry)?;
//! assert!(points.iter().any(|p| p.local == 1));
//!
//! // And the call graph / usage analyses answer the §5.4 questions.
//! let callgraph = CallGraph::build(&program);
//! assert!(callgraph.is_reachable(program.entry));
//! let usage = UsageAnalysis::build(&program, &callgraph);
//! assert!(usage.write_only_statics(&program).is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod exceptions;
pub mod global_types;
pub mod indirect_usage;
pub mod lazy_points;
pub mod liveness;
pub mod provenance;
pub mod purity;
pub mod reaching;
pub mod types;
pub mod usage;
pub mod vector_leak;

pub use callgraph::{CallGraph, ClassHierarchy};
pub use cfg::Cfg;
pub use dataflow::{solve, BitProblem, BitSet, Direction};
pub use exceptions::{may_throw, HandlerSet, ThrowSet};
pub use global_types::GlobalTypes;
pub use indirect_usage::{analyze_allocation, IndirectUsage, UseWitness};
pub use lazy_points::{field_read_sites, minimize_guard_sites, scope_methods, FieldReadSite};
pub use liveness::{death_points, liveness, DeathPoint, Liveness};
pub use provenance::{infer_provenance, MethodProv, Prov};
pub use purity::{EffectSummary, Purity};
pub use reaching::{DefSite, ReachingDefs, UseDefChains};
pub use types::{infer, infer_in, AbsType, MethodTypes, TypeEnv, TypeError};
pub use usage::UsageAnalysis;
pub use vector_leak::{find_vector_leaks, VectorLeak};
