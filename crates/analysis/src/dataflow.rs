//! A small bit-set lattice and a generic worklist dataflow solver — the
//! shared engine under the §5.1 analyses (liveness, reaching definitions)
//! that direct the paper's rewritings.

use heapdrag_vm::class::Method;

use crate::cfg::Cfg;

/// A fixed-capacity bit set (the lattice element for the set-based
/// analyses: liveness, reaching facts).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with room for `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Inserts `bit`; returns true if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `bit`.
    pub fn remove(&mut self, bit: usize) {
        let (w, b) = (bit / 64, bit % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// In-place union; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates over set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors (entry = boundary).
    Forward,
    /// Facts flow from successors (exits = boundary).
    Backward,
}

/// A gen/kill-style dataflow problem over [`BitSet`] facts, with
/// union join (may analyses).
pub trait BitProblem {
    /// Forward or backward.
    fn direction(&self) -> Direction;
    /// Bit capacity of the fact sets.
    fn capacity(&self) -> usize;
    /// Fact at the boundary (method entry for forward, exits for backward).
    fn boundary(&self) -> BitSet {
        BitSet::new(self.capacity())
    }
    /// Transfer function for the instruction at `pc`, mutating `fact` from
    /// the input side to the output side of the instruction.
    fn transfer(&self, pc: u32, fact: &mut BitSet);
}

/// Per-pc solution: the fact *entering* each instruction (on the analysis'
/// input side: before the instruction for forward problems, after it — i.e.
/// live-out — for backward problems is `out`; `in_` is before/live-in).
#[derive(Debug, Clone)]
pub struct Solution {
    /// Fact on the input side of each pc (before for forward, live-in for
    /// backward).
    pub in_: Vec<BitSet>,
    /// Fact on the output side of each pc.
    pub out: Vec<BitSet>,
}

/// Runs the worklist algorithm to a fixpoint.
pub fn solve(problem: &dyn BitProblem, method: &Method, cfg: &Cfg) -> Solution {
    let n = method.code.len();
    let empty = BitSet::new(problem.capacity());
    let mut in_ = vec![empty.clone(); n];
    let mut out = vec![empty.clone(); n];
    if n == 0 {
        return Solution { in_, out };
    }
    let mut work: Vec<u32> = (0..n as u32).collect();
    match problem.direction() {
        Direction::Forward => {
            while let Some(pc) = work.pop() {
                let mut input = if pc == 0 {
                    problem.boundary()
                } else {
                    empty.clone()
                };
                for &p in cfg.preds(pc) {
                    input.union_with(&out[p as usize]);
                }
                let mut o = input.clone();
                problem.transfer(pc, &mut o);
                let changed_in = in_[pc as usize] != input;
                let changed_out = out[pc as usize] != o;
                in_[pc as usize] = input;
                if changed_out || changed_in {
                    out[pc as usize] = o;
                    for &s in cfg.succs(pc) {
                        work.push(s);
                    }
                }
            }
        }
        Direction::Backward => {
            while let Some(pc) = work.pop() {
                let mut output = if cfg.succs(pc).is_empty() {
                    problem.boundary()
                } else {
                    empty.clone()
                };
                for &s in cfg.succs(pc) {
                    output.union_with(&in_[s as usize]);
                }
                let mut i = output.clone();
                problem.transfer(pc, &mut i);
                let changed = in_[pc as usize] != i || out[pc as usize] != output;
                out[pc as usize] = output;
                if changed {
                    in_[pc as usize] = i;
                    for &p in cfg.preds(pc) {
                        work.push(p);
                    }
                }
            }
        }
    }
    Solution { in_, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::insn::Insn;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(77));
        assert!(s.contains(3) && s.contains(77) && !s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![77]);
        assert!(!s.is_empty());
    }

    #[test]
    fn bitset_union() {
        let a: BitSet = [1, 2].into_iter().collect();
        let mut b: BitSet = [2usize, 65].into_iter().collect();
        // capacities differ; pad a to b's capacity first
        let mut a2 = BitSet::new(66);
        for i in a.iter() {
            a2.insert(i);
        }
        assert!(b.union_with(&a2));
        assert!(!b.union_with(&a2), "second union is a no-op");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
    }

    /// Simple backward liveness over locals used as a solver smoke test.
    struct Live {
        locals: usize,
        code: Vec<Insn>,
    }
    impl BitProblem for Live {
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn capacity(&self) -> usize {
            self.locals
        }
        fn transfer(&self, pc: u32, fact: &mut BitSet) {
            match self.code[pc as usize] {
                Insn::Store(n) => fact.remove(n as usize),
                Insn::Load(n) => {
                    fact.insert(n as usize);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn backward_liveness_through_a_loop() {
        // 0: store 0      (kill 0)
        // 1: load 0       (use 0)
        // 2: branch 1     (loop)
        // 3: ret
        let code = vec![Insn::Store(0), Insn::Load(0), Insn::Branch(1), Insn::Ret];
        let mut m = Method::new("f", 0, 1);
        m.code = code.clone();
        let cfg = Cfg::build(&m);
        let sol = solve(&Live { locals: 1, code }, &m, &cfg);
        assert!(!sol.in_[0].contains(0), "dead before the store");
        assert!(sol.in_[1].contains(0), "live at the use");
        assert!(sol.out[2].contains(0), "live around the back edge");
        assert!(!sol.out[3].contains(0));
    }
}
