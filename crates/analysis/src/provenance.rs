//! Stack/local *provenance*: which abstract value (the receiver `this`, a
//! particular allocation, or something else) each slot holds.
//!
//! This is the workhorse behind the indirect-usage analysis (§5.1) and the
//! escape checks of constructor purity: it answers "where can the object
//! allocated at pc *p* flow inside this method?" and "is this `putfield`
//! receiver the constructor's own receiver?".

use heapdrag_vm::class::Method;
use heapdrag_vm::ids::MethodId;
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::cfg::Cfg;
use crate::types::returns_value;

/// Abstract origin of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prov {
    /// Unreachable / undefined.
    Bottom,
    /// The method's receiver (local 0 of an instance method).
    This,
    /// The i-th parameter (excluding the receiver slot of instance
    /// methods, which is [`Prov::This`]).
    Param(u16),
    /// The object allocated by the `new`/`newarray` at this pc.
    Alloc(u32),
    /// The null constant (flows anywhere harmlessly).
    NullConst,
    /// Definitely not a reference: integer constants and arithmetic
    /// results.
    IntLike,
    /// Anything else.
    Other,
}

impl Prov {
    /// True when the value certainly does not refer to anything outside
    /// the current frame's own fresh objects (used by effect analyses to
    /// decide whether passing it to a callee can leak state).
    pub fn is_frame_local(self) -> bool {
        matches!(
            self,
            Prov::This | Prov::Alloc(_) | Prov::NullConst | Prov::IntLike
        )
    }
}

fn join(a: Prov, b: Prov) -> Prov {
    use Prov::*;
    match (a, b) {
        (Bottom, x) | (x, Bottom) => x,
        (x, y) if x == y => x,
        // Null merges into anything without losing the other origin: a slot
        // holding "alloc-or-null" still only ever *refers to* the alloc.
        (NullConst, x) | (x, NullConst) => x,
        _ => Other,
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    stack: Vec<Prov>,
    locals: Vec<Prov>,
}

/// Provenance solution: the frame entering each pc (`None` when
/// unreachable or when inference bailed out).
#[derive(Debug, Clone)]
pub struct MethodProv {
    /// State entering each pc.
    before: Vec<Option<Frame>>,
}

impl MethodProv {
    /// Provenance of the stack slot `depth` below the top, entering `pc`.
    pub fn stack(&self, pc: u32, depth: usize) -> Prov {
        self.before[pc as usize]
            .as_ref()
            .and_then(|f| f.stack.iter().rev().nth(depth).copied())
            .unwrap_or(Prov::Bottom)
    }

    /// Provenance of local `n` entering `pc`.
    pub fn local(&self, pc: u32, n: u16) -> Prov {
        self.before[pc as usize]
            .as_ref()
            .map_or(Prov::Bottom, |f| f.locals[n as usize])
    }

    /// True if the pc is reachable and was successfully analyzed.
    pub fn analyzed(&self, pc: u32) -> bool {
        self.before[pc as usize].is_some()
    }
}

/// Runs provenance inference over one method. Returns `None` when the
/// bytecode defeats the simulation (stack mismatch / ambiguous arity);
/// callers must then treat everything as [`Prov::Other`].
pub fn infer_provenance(program: &Program, method_id: MethodId) -> Option<MethodProv> {
    let method = &program.methods[method_id.index()];
    let cfg = Cfg::build(method);
    let n = method.code.len();
    let mut before: Vec<Option<Frame>> = vec![None; n];
    if n == 0 {
        return Some(MethodProv { before });
    }

    let mut entry_locals = vec![Prov::Other; method.num_locals as usize];
    for (i, slot) in entry_locals
        .iter_mut()
        .enumerate()
        .take(method.num_params as usize)
    {
        *slot = Prov::Param(i as u16);
    }
    if !method.is_static && method.num_params > 0 {
        entry_locals[0] = Prov::This;
    }
    before[0] = Some(Frame {
        stack: Vec::new(),
        locals: entry_locals,
    });

    let mut work = vec![0u32];
    while let Some(pc) = work.pop() {
        let Some(state) = before[pc as usize].clone() else {
            continue;
        };
        let insn = method.code[pc as usize];
        let mut stack = state.stack;
        let mut locals = state.locals;

        // Pops/pushes per instruction; Other for opaque results.
        let effect_ok = simulate(program, method, pc, insn, &mut stack, &mut locals);
        if !effect_ok {
            return None;
        }

        let out = Frame { stack, locals };
        for &succ in cfg.succs(pc) {
            let is_exception_edge = method
                .handlers
                .iter()
                .any(|h| h.handler_pc == succ && pc >= h.start_pc && pc < h.end_pc)
                && !matches!(insn.jump_target(), Some(t) if t == succ)
                && succ != pc + 1;
            let incoming = if is_exception_edge {
                Frame {
                    stack: vec![Prov::Other],
                    locals: out.locals.clone(),
                }
            } else {
                out.clone()
            };
            match &mut before[succ as usize] {
                slot @ None => {
                    *slot = Some(incoming);
                    work.push(succ);
                }
                Some(existing) => {
                    if existing.stack.len() != incoming.stack.len() {
                        return None;
                    }
                    let mut changed = false;
                    for (a, b) in existing.stack.iter_mut().zip(&incoming.stack) {
                        let j = join(*a, *b);
                        changed |= j != *a;
                        *a = j;
                    }
                    for (a, b) in existing.locals.iter_mut().zip(&incoming.locals) {
                        let j = join(*a, *b);
                        changed |= j != *a;
                        *a = j;
                    }
                    if changed {
                        work.push(succ);
                    }
                }
            }
        }
    }
    Some(MethodProv { before })
}

fn simulate(
    program: &Program,
    method: &Method,
    pc: u32,
    insn: Insn,
    stack: &mut Vec<Prov>,
    locals: &mut [Prov],
) -> bool {
    let _ = method;
    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(v) => v,
                None => return false,
            }
        };
    }
    match insn {
        Insn::PushInt(_) => stack.push(Prov::IntLike),
        Insn::PushNull => stack.push(Prov::NullConst),
        Insn::Dup => {
            let Some(&t) = stack.last() else { return false };
            stack.push(t);
        }
        Insn::Pop => {
            pop!();
        }
        Insn::Swap => {
            let a = pop!();
            let b = pop!();
            stack.push(a);
            stack.push(b);
        }
        Insn::Load(l) => stack.push(locals[l as usize]),
        Insn::Store(l) => {
            let v = pop!();
            locals[l as usize] = v;
        }
        Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Rem => {
            pop!();
            pop!();
            stack.push(Prov::IntLike);
        }
        Insn::Neg => {
            pop!();
            stack.push(Prov::IntLike);
        }
        Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
            pop!();
            pop!();
            stack.push(Prov::IntLike);
        }
        Insn::Jump(_) => {}
        Insn::Branch(_) | Insn::BranchIfNull(_) | Insn::BranchIfNotNull(_) => {
            pop!();
        }
        Insn::New(_) | Insn::NewArray => {
            if matches!(insn, Insn::NewArray) {
                pop!();
            }
            stack.push(Prov::Alloc(pc));
        }
        Insn::GetField(_) => {
            pop!();
            stack.push(Prov::Other);
        }
        Insn::PutField(_) => {
            pop!();
            pop!();
        }
        Insn::ALoad => {
            pop!();
            pop!();
            stack.push(Prov::Other);
        }
        Insn::AStore => {
            pop!();
            pop!();
            pop!();
        }
        Insn::ArrayLen => {
            pop!();
            stack.push(Prov::IntLike);
        }
        Insn::InstanceOf(_) => {
            pop!();
            stack.push(Prov::IntLike);
        }
        Insn::GetStatic(_) => stack.push(Prov::Other),
        Insn::PutStatic(_) => {
            pop!();
        }
        Insn::Call(target) => {
            let callee = &program.methods[target.index()];
            for _ in 0..callee.num_params {
                pop!();
            }
            match returns_value(callee) {
                Ok(true) => stack.push(Prov::Other),
                Ok(false) => {}
                Err(_) => return false,
            }
        }
        Insn::CallVirtual { vslot, argc } => {
            for _ in 0..=argc {
                pop!();
            }
            // All CHA targets must agree on returning a value.
            let mut rv: Option<bool> = None;
            for class in &program.classes {
                if let Some(Some(mid)) = class.vtable.get(vslot.index()).copied() {
                    match returns_value(&program.methods[mid.index()]) {
                        Ok(r) => match rv {
                            None => rv = Some(r),
                            Some(prev) if prev != r => return false,
                            _ => {}
                        },
                        Err(_) => return false,
                    }
                }
            }
            if rv == Some(true) {
                stack.push(Prov::Other);
            }
        }
        Insn::Ret => {}
        Insn::RetVal | Insn::Throw | Insn::Print | Insn::MonitorEnter | Insn::MonitorExit => {
            pop!();
        }
        Insn::Nop => {}
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;

    #[test]
    fn tracks_alloc_through_local() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1); // pc 0: New, pc 1: Store
            m.load(1).push_int(0).putfield(0); // pc 2: Load, pc 3, pc 4
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let prov = infer_provenance(&p, p.entry).unwrap();
        assert_eq!(prov.local(2, 1), Prov::Alloc(0));
        // At the putfield (pc 4), the receiver is one below the value.
        assert_eq!(prov.stack(4, 1), Prov::Alloc(0));
        assert_eq!(prov.stack(4, 0), Prov::IntLike, "pushed int value");
    }

    #[test]
    fn this_receiver_in_instance_method() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let init = b.declare_method("init", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(init);
            m.load(0).push_int(1).putfield(0); // this.f = 1
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).call(init);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let prov = infer_provenance(&p, init).unwrap();
        assert_eq!(prov.local(0, 0), Prov::This);
        assert_eq!(prov.stack(2, 1), Prov::This, "putfield receiver is this");
    }

    #[test]
    fn merge_of_two_allocs_is_other() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.load(0).push_int(0).aload().branch("else");
            m.new_obj(c).store(1);
            m.jump("end");
            m.label("else");
            m.new_obj(c).store(1);
            m.label("end");
            m.load(1).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let prov = infer_provenance(&p, p.entry).unwrap();
        let m = &p.methods[p.entry.index()];
        let end_pc = (m.code.len() - 3) as u32; // the load at label end
        assert_eq!(prov.local(end_pc, 1), Prov::Other);
    }

    #[test]
    fn null_join_keeps_alloc_origin() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.push_null().store(1); // lazy slot starts null
            m.load(0).push_int(0).aload().branch("skip");
            m.new_obj(c).store(1); // pc 5 (alloc)
            m.label("skip");
            m.load(1).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let prov = infer_provenance(&p, p.entry).unwrap();
        let m = &p.methods[p.entry.index()];
        let load_pc = (m.code.len() - 3) as u32;
        assert!(
            matches!(prov.local(load_pc, 1), Prov::Alloc(_)),
            "null-or-alloc still refers only to the alloc, got {:?}",
            prov.local(load_pc, 1)
        );
    }
}
