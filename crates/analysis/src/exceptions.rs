//! Exception analysis (§5.5): what can an instruction throw, and could any
//! handler in the program observe it? Java's precise exception model
//! forbids removing or moving code whose exceptions a handler might catch.

use heapdrag_vm::ids::ClassId;
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::callgraph::CallGraph;

/// The set of exception classes an instruction may raise by itself (not
/// counting exceptions propagating out of callees).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThrowSet {
    /// Specific classes that may be thrown.
    pub classes: Vec<ClassId>,
    /// True when the instruction throws a user object of statically
    /// unknown class (an explicit `throw`).
    pub unknown: bool,
}

impl ThrowSet {
    /// True if nothing can be thrown.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && !self.unknown
    }
}

/// Exceptions the instruction itself can raise.
pub fn may_throw(program: &Program, insn: &Insn) -> ThrowSet {
    let b = program.builtins;
    let classes = match insn {
        Insn::Div | Insn::Rem => vec![b.arithmetic],
        Insn::GetField(_) | Insn::PutField(_) | Insn::MonitorEnter | Insn::MonitorExit => {
            vec![b.null_pointer]
        }
        Insn::ALoad | Insn::AStore => vec![b.null_pointer, b.index_oob],
        Insn::ArrayLen => vec![b.null_pointer],
        Insn::NewArray => vec![b.index_oob, b.out_of_memory],
        Insn::New(_) => vec![b.out_of_memory],
        Insn::Call(_) | Insn::CallVirtual { .. } => vec![b.null_pointer],
        Insn::Throw => {
            return ThrowSet {
                classes: vec![b.null_pointer],
                unknown: true,
            }
        }
        _ => Vec::new(),
    };
    ThrowSet {
        classes,
        unknown: false,
    }
}

/// Which exception classes any *reachable* handler in the program could
/// catch.
#[derive(Debug, Clone, Default)]
pub struct HandlerSet {
    catchable: Vec<ClassId>,
    catch_all: bool,
}

impl HandlerSet {
    /// Collects the handlers of every reachable method.
    pub fn build(program: &Program, callgraph: &CallGraph) -> Self {
        let mut set = HandlerSet::default();
        for mid in callgraph.reachable_methods() {
            for h in &program.methods[mid.index()].handlers {
                match h.catch {
                    Some(c) => set.catchable.push(c),
                    None => set.catch_all = true,
                }
            }
        }
        set.catchable.sort_unstable();
        set.catchable.dedup();
        set
    }

    /// Could an exception of class `thrown` be caught anywhere?
    ///
    /// A handler for `C` catches `thrown` when `thrown <= C`.
    pub fn catches(&self, program: &Program, thrown: ClassId) -> bool {
        self.catch_all
            || self
                .catchable
                .iter()
                .any(|c| program.is_subclass(thrown, *c))
    }

    /// Could *anything* the instruction throws be observed by a handler?
    /// When false, removing the instruction cannot change exception
    /// behaviour of a program that completes normally — the §5.5 check the
    /// paper does for `OutOfMemoryError`.
    pub fn observes(&self, program: &Program, throws: &ThrowSet) -> bool {
        if throws.unknown && (self.catch_all || !self.catchable.is_empty()) {
            return true;
        }
        throws.classes.iter().any(|c| self.catches(program, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;

    fn program_with_handler(catch: Option<&str>) -> Program {
        let mut b = ProgramBuilder::new();
        let arith = b.builtins().arithmetic;
        let catch_id = catch.map(|name| match name {
            "ArithmeticException" => arith,
            "Object" => b.builtins().object,
            _ => unreachable!(),
        });
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.label("try");
            m.push_int(1).push_int(1).div().pop();
            m.label("end");
            m.jump("out");
            m.label("h");
            m.pop();
            m.label("out");
            m.ret();
            m.handler("try", "end", "h", catch_id);
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn throw_sets_per_instruction() {
        let p = program_with_handler(None);
        assert!(may_throw(&p, &Insn::Add).is_empty());
        assert!(!may_throw(&p, &Insn::Div).is_empty());
        assert!(may_throw(&p, &Insn::New(p.builtins.object))
            .classes
            .contains(&p.builtins.out_of_memory));
        assert!(may_throw(&p, &Insn::Throw).unknown);
        assert!(may_throw(&p, &Insn::ALoad)
            .classes
            .contains(&p.builtins.index_oob));
    }

    #[test]
    fn specific_handler_observes_matching_throws_only() {
        let p = program_with_handler(Some("ArithmeticException"));
        let cg = CallGraph::build(&p);
        let h = HandlerSet::build(&p, &cg);
        assert!(h.catches(&p, p.builtins.arithmetic));
        assert!(!h.catches(&p, p.builtins.out_of_memory));
        assert!(h.observes(&p, &may_throw(&p, &Insn::Div)));
        assert!(
            !h.observes(&p, &may_throw(&p, &Insn::New(p.builtins.object))),
            "no OutOfMemory handler → allocation removable wrt exceptions"
        );
    }

    #[test]
    fn catch_all_observes_everything() {
        let p = program_with_handler(None);
        let cg = CallGraph::build(&p);
        let h = HandlerSet::build(&p, &cg);
        assert!(h.catches(&p, p.builtins.out_of_memory));
        assert!(h.observes(&p, &may_throw(&p, &Insn::Throw)));
    }

    #[test]
    fn object_handler_catches_subclasses() {
        let p = program_with_handler(Some("Object"));
        let cg = CallGraph::build(&p);
        let h = HandlerSet::build(&p, &cg);
        assert!(h.catches(&p, p.builtins.arithmetic), "Object catches all builtins");
    }

    #[test]
    fn no_handlers_no_observation() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let h = HandlerSet::build(&p, &cg);
        assert!(!h.observes(
            &p,
            &ThrowSet {
                classes: vec![p.builtins.out_of_memory],
                unknown: true
            }
        ));
    }
}
