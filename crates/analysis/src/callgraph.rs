//! Class-hierarchy-based call graph and reachable-method computation
//! (the JAN-style information of §3.2 / §5.4).

use std::collections::{HashMap, HashSet};

use heapdrag_vm::ids::{ClassId, MethodId, VSlot};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

/// The class hierarchy, with downward (children) edges.
#[derive(Debug, Clone)]
pub struct ClassHierarchy {
    children: Vec<Vec<ClassId>>,
}

impl ClassHierarchy {
    /// Builds the hierarchy of `program`.
    pub fn build(program: &Program) -> Self {
        let mut children = vec![Vec::new(); program.classes.len()];
        for (i, c) in program.classes.iter().enumerate() {
            if let Some(sup) = c.super_class {
                children[sup.index()].push(ClassId(i as u32));
            }
        }
        ClassHierarchy { children }
    }

    /// Direct subclasses of `class`.
    pub fn children(&self, class: ClassId) -> &[ClassId] {
        &self.children[class.index()]
    }

    /// `class` and all transitive subclasses.
    pub fn subtree(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend_from_slice(self.children(c));
        }
        out
    }
}

/// The call graph: for each method, the set of methods it may invoke.
///
/// Virtual calls are resolved with Class Hierarchy Analysis: a
/// `callvirtual` through slot `s` may reach the implementation of `s` in
/// any class (every class is conservatively considered instantiable).
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<Vec<MethodId>>,
    reachable: HashSet<MethodId>,
}

impl CallGraph {
    /// Builds the CHA call graph of `program` and computes methods
    /// reachable from the entry (finalizers are additional roots — the
    /// collector may invoke them).
    pub fn build(program: &Program) -> Self {
        let mut virtual_targets: HashMap<VSlot, Vec<MethodId>> = HashMap::new();
        for class in &program.classes {
            for (slot, m) in class.vtable.iter().enumerate() {
                if let Some(mid) = m {
                    let entry = virtual_targets.entry(VSlot(slot as u32)).or_default();
                    if !entry.contains(mid) {
                        entry.push(*mid);
                    }
                }
            }
        }

        let mut callees: Vec<Vec<MethodId>> = Vec::with_capacity(program.methods.len());
        for m in &program.methods {
            let mut out: Vec<MethodId> = Vec::new();
            for insn in &m.code {
                match insn {
                    Insn::Call(target) => out.push(*target),
                    Insn::CallVirtual { vslot, .. } => {
                        if let Some(ts) = virtual_targets.get(vslot) {
                            out.extend_from_slice(ts);
                        }
                    }
                    _ => {}
                }
            }
            out.sort_unstable();
            out.dedup();
            callees.push(out);
        }

        let mut reachable = HashSet::new();
        let mut stack = vec![program.entry];
        for class in &program.classes {
            if let Some(f) = class.finalizer {
                stack.push(f);
            }
        }
        while let Some(m) = stack.pop() {
            if reachable.insert(m) {
                stack.extend_from_slice(&callees[m.index()]);
            }
        }

        CallGraph { callees, reachable }
    }

    /// Methods `method` may call.
    pub fn callees(&self, method: MethodId) -> &[MethodId] {
        &self.callees[method.index()]
    }

    /// True if the method is reachable from the entry point (or from a
    /// finalizer).
    pub fn is_reachable(&self, method: MethodId) -> bool {
        self.reachable.contains(&method)
    }

    /// Methods that can never run — the §5.4 information used to discard
    /// "possible uses … in unreachable methods".
    pub fn unreachable_methods(&self, program: &Program) -> Vec<MethodId> {
        (0..program.methods.len() as u32)
            .map(MethodId)
            .filter(|m| !self.is_reachable(*m))
            .collect()
    }

    /// All reachable methods.
    pub fn reachable_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.reachable.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;

    fn diamond_program() -> (Program, MethodId, MethodId, MethodId) {
        let mut b = ProgramBuilder::new();
        let base = b.begin_class("Base").finish();
        let derived = b.begin_class("Derived").extends(base).finish();
        let base_m = b.declare_method("go", Some(base), false, 1, 1);
        {
            let mut m = b.begin_body(base_m);
            m.push_int(1).ret_val();
            m.finish();
        }
        let derived_m = b.declare_method("go", Some(derived), false, 1, 1);
        {
            let mut m = b.begin_body(derived_m);
            m.push_int(2).ret_val();
            m.finish();
        }
        let never = b.declare_method("never_called", None, true, 0, 0);
        {
            let mut m = b.begin_body(never);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(base).call_virtual("go", 0).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), base_m, derived_m, never)
    }

    #[test]
    fn cha_includes_all_overriders() {
        let (p, base_m, derived_m, _) = diamond_program();
        let cg = CallGraph::build(&p);
        let callees = cg.callees(p.entry);
        assert!(callees.contains(&base_m));
        assert!(
            callees.contains(&derived_m),
            "CHA conservatively keeps the override"
        );
    }

    #[test]
    fn unreachable_methods_found() {
        let (p, _, _, never) = diamond_program();
        let cg = CallGraph::build(&p);
        assert!(!cg.is_reachable(never));
        assert!(cg.is_reachable(p.entry));
        assert!(cg.unreachable_methods(&p).contains(&never));
    }

    #[test]
    fn hierarchy_subtree() {
        let (p, ..) = diamond_program();
        let h = ClassHierarchy::build(&p);
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        let subtree = h.subtree(base);
        assert!(subtree.contains(&base) && subtree.contains(&derived));
        assert_eq!(h.children(derived), &[] as &[ClassId]);
        let object_tree = h.subtree(p.builtins.object);
        assert_eq!(object_tree.len(), p.classes.len(), "everything under Object");
    }

    #[test]
    fn finalizers_are_roots() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("F").finish();
        let fin = b.declare_method("finalize", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(fin);
            m.ret();
            m.finish();
        }
        b.set_finalizer(c, fin);
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.is_reachable(fin));
    }
}
