//! Reaching definitions and use-def chains (§5.1: "possible uses of a
//! reference are identified using use-def chains").
//!
//! A *definition* of local `l` is either the method entry (parameters and
//! the implicit null initialisation of non-parameter locals) or a
//! `store l` at some pc. The forward may-analysis computes, for every
//! program point, which definitions can reach it; [`UseDefChains`] inverts
//! that into per-`load` definition sets and per-definition use sets.

use heapdrag_vm::class::Method;
use heapdrag_vm::insn::Insn;

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitProblem, BitSet, Direction};

/// A definition site of a local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefSite {
    /// The value the local has on method entry (a parameter, or null).
    Entry {
        /// The local defined.
        local: u16,
    },
    /// A `store` instruction.
    Store {
        /// pc of the store.
        pc: u32,
        /// The local defined.
        local: u16,
    },
}

impl DefSite {
    /// The local variable this definition writes.
    pub fn local(&self) -> u16 {
        match self {
            DefSite::Entry { local } | DefSite::Store { local, .. } => *local,
        }
    }
}

struct ReachingProblem<'a> {
    code: &'a [Insn],
    defs: &'a [DefSite],
    /// def indices grouped by local, for kill sets.
    by_local: Vec<Vec<usize>>,
    entry_defs: BitSet,
}

impl BitProblem for ReachingProblem<'_> {
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn capacity(&self) -> usize {
        self.defs.len()
    }
    fn boundary(&self) -> BitSet {
        self.entry_defs.clone()
    }
    fn transfer(&self, pc: u32, fact: &mut BitSet) {
        if let Insn::Store(local) = self.code[pc as usize] {
            for &d in &self.by_local[local as usize] {
                fact.remove(d);
            }
            let this_def = self
                .defs
                .iter()
                .position(|d| matches!(d, DefSite::Store { pc: p, .. } if *p == pc))
                .expect("every store is a def");
            fact.insert(this_def);
        }
    }
}

/// The reaching-definitions solution for one method.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    defs: Vec<DefSite>,
    /// Definitions reaching the *entry* of each pc.
    in_: Vec<BitSet>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `method`.
    pub fn compute(method: &Method) -> Self {
        let mut defs: Vec<DefSite> = (0..method.num_locals)
            .map(|local| DefSite::Entry { local })
            .collect();
        for (pc, insn) in method.code.iter().enumerate() {
            if let Insn::Store(local) = insn {
                defs.push(DefSite::Store {
                    pc: pc as u32,
                    local: *local,
                });
            }
        }
        let mut by_local = vec![Vec::new(); method.num_locals as usize];
        for (i, d) in defs.iter().enumerate() {
            by_local[d.local() as usize].push(i);
        }
        let mut entry_defs = BitSet::new(defs.len());
        for i in 0..method.num_locals as usize {
            entry_defs.insert(i); // Entry defs are defs 0..num_locals
        }
        let cfg = Cfg::build(method);
        let problem = ReachingProblem {
            code: &method.code,
            defs: &defs,
            by_local,
            entry_defs,
        };
        let sol = solve(&problem, method, &cfg);
        ReachingDefs {
            defs,
            in_: sol.in_,
        }
    }

    /// All definition sites of the method, entry defs first.
    pub fn defs(&self) -> &[DefSite] {
        &self.defs
    }

    /// The definitions of `local` that may reach the entry of `pc`.
    pub fn reaching(&self, pc: u32, local: u16) -> Vec<DefSite> {
        self.in_[pc as usize]
            .iter()
            .map(|i| self.defs[i])
            .filter(|d| d.local() == local)
            .collect()
    }
}

/// Use-def and def-use chains derived from [`ReachingDefs`].
#[derive(Debug, Clone)]
pub struct UseDefChains {
    /// For each `load` pc: the definitions that may flow into it.
    pub use_to_defs: Vec<(u32, Vec<DefSite>)>,
}

impl UseDefChains {
    /// Builds the chains for `method`.
    pub fn build(method: &Method) -> Self {
        let rd = ReachingDefs::compute(method);
        let use_to_defs = method
            .code
            .iter()
            .enumerate()
            .filter_map(|(pc, insn)| match insn {
                Insn::Load(local) => Some((pc as u32, rd.reaching(pc as u32, *local))),
                _ => None,
            })
            .collect();
        UseDefChains { use_to_defs }
    }

    /// The definitions reaching the `load` at `pc`, if it is one.
    pub fn defs_for_use(&self, pc: u32) -> Option<&[DefSite]> {
        self.use_to_defs
            .iter()
            .find(|(p, _)| *p == pc)
            .map(|(_, d)| d.as_slice())
    }

    /// All `load` pcs that a given definition may flow into.
    pub fn uses_of_def(&self, def: DefSite) -> Vec<u32> {
        self.use_to_defs
            .iter()
            .filter(|(_, defs)| defs.contains(&def))
            .map(|(pc, _)| *pc)
            .collect()
    }

    /// Stores whose value can never reach any use — dead stores. (Assign-
    /// null rewrites intentionally create these; they are dead to the
    /// *program* but alive to the *collector*, which is the whole point —
    /// so no transformation eliminates them.)
    pub fn dead_stores(&self, method: &Method) -> Vec<u32> {
        method
            .code
            .iter()
            .enumerate()
            .filter_map(|(pc, insn)| match insn {
                Insn::Store(local) => {
                    let def = DefSite::Store {
                        pc: pc as u32,
                        local: *local,
                    };
                    if self.uses_of_def(def).is_empty() {
                        Some(pc as u32)
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::program::Program;

    fn build(body: impl FnOnce(&mut heapdrag_vm::builder::MethodBuilder<'_>)) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 4);
        {
            let mut m = b.begin_body(main);
            body(&mut m);
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn straight_line_single_def() {
        // 0: push 1 ; 1: store 1 ; 2: load 1 ; 3: print ; 4: ret
        let p = build(|m| {
            m.push_int(1).store(1).load(1).print().ret();
        });
        let chains = UseDefChains::build(&p.methods[0]);
        let defs = chains.defs_for_use(2).unwrap();
        assert_eq!(defs, &[DefSite::Store { pc: 1, local: 1 }]);
    }

    #[test]
    fn merge_sees_both_definitions() {
        let p = build(|m| {
            m.load(0).push_int(0).aload().branch("else");
            m.push_int(1).store(1);
            m.jump("merge");
            m.label("else");
            m.push_int(2).store(1);
            m.label("merge");
            m.load(1).print().ret();
        });
        let method = &p.methods[0];
        let chains = UseDefChains::build(method);
        let load_pc = method
            .code
            .iter()
            .rposition(|i| matches!(i, Insn::Load(1)))
            .unwrap() as u32;
        let mut defs = chains.defs_for_use(load_pc).unwrap().to_vec();
        defs.sort();
        assert_eq!(defs.len(), 2, "both branch stores reach the merge: {defs:?}");
    }

    #[test]
    fn kill_removes_earlier_definition() {
        // store 1; store 1; load 1 — only the second store reaches.
        let p = build(|m| {
            m.push_int(1).store(1);
            m.push_int(2).store(1);
            m.load(1).print().ret();
        });
        let chains = UseDefChains::build(&p.methods[0]);
        let defs = chains.defs_for_use(4).unwrap();
        assert_eq!(defs, &[DefSite::Store { pc: 3, local: 1 }]);
    }

    #[test]
    fn loop_carried_definition_reaches_the_condition() {
        let p = build(|m| {
            m.push_int(0).store(1);
            m.label("loop");
            m.load(1).push_int(5).cmpge().branch("done");
            m.load(1).push_int(1).add().store(1);
            m.jump("loop");
            m.label("done");
            m.load(1).print().ret();
        });
        let chains = UseDefChains::build(&p.methods[0]);
        // The load at pc 2 (loop head) sees both the init store and the
        // loop-body store.
        let defs = chains.defs_for_use(2).unwrap();
        assert_eq!(defs.len(), 2, "{defs:?}");
    }

    #[test]
    fn entry_definition_reaches_unstored_local() {
        let p = build(|m| {
            m.load(0).pop().ret();
        });
        let chains = UseDefChains::build(&p.methods[0]);
        assert_eq!(
            chains.defs_for_use(0).unwrap(),
            &[DefSite::Entry { local: 0 }]
        );
    }

    #[test]
    fn dead_store_detected() {
        let p = build(|m| {
            m.push_int(9).store(2); // never loaded
            m.push_int(1).print().ret();
        });
        let method = &p.methods[0];
        let chains = UseDefChains::build(method);
        assert_eq!(chains.dead_stores(method), vec![1]);
    }

    #[test]
    fn def_use_inverse_is_consistent() {
        let p = build(|m| {
            m.push_int(3).store(1);
            m.load(1).load(1).add().print().ret();
        });
        let chains = UseDefChains::build(&p.methods[0]);
        let def = DefSite::Store { pc: 1, local: 1 };
        let uses = chains.uses_of_def(def);
        assert_eq!(uses, vec![2, 3]);
        for u in uses {
            assert!(chains.defs_for_use(u).unwrap().contains(&def));
        }
    }
}
