//! Liveness of local reference variables, and the *death points* where an
//! `assign null` can be inserted (§5.1's liveness-analysis).

use heapdrag_vm::class::Method;
use heapdrag_vm::ids::MethodId;
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitProblem, BitSet, Direction};
use crate::types::{infer, MethodTypes, TypeError};

struct LocalLiveness<'a> {
    code: &'a [Insn],
    locals: usize,
}

impl BitProblem for LocalLiveness<'_> {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn capacity(&self) -> usize {
        self.locals
    }
    fn transfer(&self, pc: u32, fact: &mut BitSet) {
        match self.code[pc as usize] {
            Insn::Store(n) => fact.remove(n as usize),
            Insn::Load(n) => {
                fact.insert(n as usize);
            }
            _ => {}
        }
    }
}

/// The liveness solution for one method.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live locals entering each pc.
    pub live_in: Vec<BitSet>,
    /// Live locals leaving each pc.
    pub live_out: Vec<BitSet>,
}

/// Computes local-variable liveness for `method`.
pub fn liveness(method: &Method) -> Liveness {
    let cfg = Cfg::build(method);
    let problem = LocalLiveness {
        code: &method.code,
        locals: method.num_locals as usize,
    };
    let sol = solve(&problem, method, &cfg);
    Liveness {
        live_in: sol.in_,
        live_out: sol.out,
    }
}

/// A point on the *death frontier* of a reference local: the local is dead
/// entering `pc` but was live at some predecessor. Inserting
/// `pushnull; store local` immediately **before** `pc` is
/// semantics-preserving (the local is dead along every path reaching `pc`,
/// liveness being path-insensitive) and un-roots whatever it referenced.
///
/// This covers both straight-line deaths (the instruction after a last
/// use) and deaths on loop-exit or join edges, like the arrays in the
/// paper's `euler` rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeathPoint {
    /// The method.
    pub method: MethodId,
    /// Insertion point: the null store goes in front of this pc.
    pub pc: u32,
    /// The local variable index.
    pub local: u16,
}

/// Finds the death frontier of every reference-typed local in `method_id`.
///
/// A point `(pc, local)` is reported when:
/// * the local is **dead** in `live_in(pc)`,
/// * it was **live** in `live_in(p)` for some predecessor `p`, and
/// * it holds a reference at `pc` (per type inference) — nulling an int
///   local would be safe but useless.
///
/// # Errors
///
/// Propagates [`TypeError`] from type inference.
pub fn death_points(program: &Program, method_id: MethodId) -> Result<Vec<DeathPoint>, TypeError> {
    let method = &program.methods[method_id.index()];
    let types = infer(program, method_id)?;
    let live = liveness(method);
    Ok(collect_death_points(method_id, method, &types, &live))
}

fn collect_death_points(
    method_id: MethodId,
    method: &Method,
    types: &MethodTypes,
    live: &Liveness,
) -> Vec<DeathPoint> {
    let cfg = Cfg::build(method);
    let mut points = Vec::new();
    for pc in 0..method.code.len() as u32 {
        for local in 0..method.num_locals {
            if live.live_in[pc as usize].contains(local as usize) {
                continue;
            }
            if !types.local(pc, local).is_reflike() {
                continue;
            }
            let died_here = cfg
                .preds(pc)
                .iter()
                .any(|&p| live.live_in[p as usize].contains(local as usize));
            // Skip points already covered by a `pushnull; store local` pair
            // (keeps the assign-null transformation idempotent).
            let already_nulled = matches!(method.code[pc as usize], Insn::PushNull)
                && matches!(method.code.get(pc as usize + 1), Some(Insn::Store(l)) if *l == local);
            if died_here && !already_nulled {
                points.push(DeathPoint {
                    method: method_id,
                    pc,
                    local,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;

    fn program_with_dead_ref() -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let c = b
            .begin_class("Buf")
            .field("len", Visibility::Private)
            .finish();
        let filler = b.declare_method("filler", None, true, 0, 0);
        {
            let mut m = b.begin_body(filler);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1); // pc 0,1
            m.load(1).push_int(9).putfield(0); // pc 2,3,4  <- last use of 1
            m.call(filler); // pc 5: local 1 dragged across this call
            m.ret(); // pc 6
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), main)
    }

    #[test]
    fn finds_frontier_after_last_use() {
        let (p, main) = program_with_dead_ref();
        let points = death_points(&p, main).unwrap();
        // pc 2 is the last use (`load 1`); the frontier is pc 3, where a
        // null store detaches the object before the filler call.
        assert_eq!(
            points,
            vec![DeathPoint {
                method: main,
                pc: 3,
                local: 1
            }]
        );
    }

    #[test]
    fn live_through_loop_is_not_a_death_point() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("Buf").field("x", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.push_int(0).store(2);
            m.label("loop");
            m.load(2).push_int(3).cmpge().branch("done");
            m.load(1).push_int(0).putfield(0); // used every iteration
            m.load(2).push_int(1).add().store(2);
            m.jump("loop");
            m.label("done");
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let points = death_points(&p, p.entry).unwrap();
        // Inside the loop the local stays live around the back edge, so no
        // point there — but it dies on the loop-exit edge, which is exactly
        // the euler-style frontier the paper nulls manually.
        let m = &p.methods[p.entry.index()];
        let exit_pc = (m.code.len() - 1) as u32; // the `ret` at label done
        assert_eq!(
            points,
            vec![DeathPoint {
                method: p.entry,
                pc: exit_pc,
                local: 1
            }]
        );
    }

    #[test]
    fn int_locals_are_ignored() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.push_int(7).store(1);
            m.load(1).print(); // last use of an *int* local
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let points = death_points(&p, p.entry).unwrap();
        assert!(points.is_empty());
    }

    #[test]
    fn liveness_solution_shape() {
        let (p, main) = program_with_dead_ref();
        let m = &p.methods[main.index()];
        let live = liveness(m);
        assert_eq!(live.live_in.len(), m.code.len());
        // Local 1 is live entering pc 2 (the load), dead after.
        assert!(live.live_in[2].contains(1));
        assert!(!live.live_out[2].contains(1));
    }
}
