//! Indirect-usage analysis (§5.1): "an object is never-used if none of its
//! references is ever dereferenced". Given an allocation site, decide
//! statically whether the objects created there can ever be *used* (in the
//! paper's five-event sense) after construction — if not, the allocation
//! is dead and removable (subject to the exception checks of §5.5).

use heapdrag_vm::ids::MethodId;
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::provenance::{infer_provenance, Prov};
use crate::purity::Purity;
use crate::usage::UsageAnalysis;

/// Why an allocation could not be proven never-used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UseWitness {
    /// The object is the receiver of a use instruction at this pc.
    /// (Flows through locals and `dup` are tracked transparently by the
    /// provenance analysis; the witness names the ultimate use.)
    DirectUse(u32),
    /// The object is stored into a field that is read somewhere.
    EscapesToReadField(u32),
    /// The object is stored into a static that is read somewhere.
    EscapesToReadStatic(u32),
    /// The object is stored into an array (assumed readable).
    EscapesToArray(u32),
    /// Passed to a call that may use or retain it.
    EscapesToCall(u32),
    /// Returned from the method.
    Returned(u32),
    /// Thrown.
    Thrown(u32),
    /// Provenance inference failed.
    Opaque,
}

/// Verdict for one allocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndirectUsage {
    /// No reference to the object is ever dereferenced after construction;
    /// the allocation (and its constructor call, when removable) is dead.
    NeverUsed,
    /// A use (or a possible use) was found.
    PossiblyUsed(UseWitness),
}

/// Analyzes the allocation at `(method, alloc_pc)` (a `new` or `newarray`).
///
/// The object may flow through `dup`/locals inside the allocating method.
/// Sinks are judged as follows: constructor calls are allowed when the
/// constructor is removable per [`Purity`]; stores into write-only fields
/// and statics (per [`UsageAnalysis`]) are allowed; everything else is a
/// witness.
///
/// Loads of locals holding the object are only allowed when the loaded
/// value flows into an allowed sink at that point; this one-level chase is
/// handled by treating each instruction uniformly through provenance.
pub fn analyze_allocation(
    program: &Program,
    usage: &UsageAnalysis,
    purity: &Purity,
    method_id: MethodId,
    alloc_pc: u32,
) -> IndirectUsage {
    let method = &program.methods[method_id.index()];
    debug_assert!(method.code[alloc_pc as usize].is_alloc());
    let Some(prov) = infer_provenance(program, method_id) else {
        return IndirectUsage::PossiblyUsed(UseWitness::Opaque);
    };
    let target = Prov::Alloc(alloc_pc);

    for (pc, insn) in method.code.iter().enumerate() {
        let pc = pc as u32;
        if !prov.analyzed(pc) {
            continue;
        }
        let at = |depth: usize| prov.stack(pc, depth) == target;
        let witness = match insn {
            // --- observable uses of the object ---------------------------
            // Dynamically, writing a field of the object is one of the
            // paper's five use events — but it is *not observable*: the
            // write lands in an object nothing will read (§3.4 pattern 1,
            // "the object's last use occurs during its initialization").
            // Writes INTO the candidate are therefore allowed; reads FROM
            // it, length queries, dispatch, and monitors remain witnesses.
            Insn::GetField(_) if at(0) => Some(UseWitness::DirectUse(pc)),
            Insn::PutField(_) if at(1) && !at(0) => None, // initialisation write
            Insn::ALoad if at(1) => Some(UseWitness::DirectUse(pc)),
            Insn::AStore if at(2) => None, // element write into the candidate
            Insn::ArrayLen if at(0) => Some(UseWitness::DirectUse(pc)),
            Insn::MonitorEnter | Insn::MonitorExit if at(0) => Some(UseWitness::DirectUse(pc)),
            Insn::InstanceOf(_) if at(0) => Some(UseWitness::DirectUse(pc)),

            // --- escape sinks --------------------------------------------
            Insn::PutField(slot) if at(0) => {
                // Stored as a value into some object's field: allowed only
                // when that field is never read.
                let receiver = prov.stack(pc, 1);
                let field_read = match receiver {
                    Prov::Alloc(other_pc) => {
                        // Field of a sibling allocation; resolve its class.
                        match method.code[other_pc as usize] {
                            Insn::New(c) => program.classes[c.index()]
                                .layout
                                .get(*slot as usize)
                                .is_none_or(|key| usage.field_is_read(program, *key)),
                            _ => true,
                        }
                    }
                    Prov::This => match method.class {
                        Some(c) => program.classes[c.index()]
                            .layout
                            .get(*slot as usize)
                            .is_none_or(|key| usage.field_is_read(program, *key)),
                        None => true,
                    },
                    _ => true,
                };
                if field_read {
                    Some(UseWitness::EscapesToReadField(pc))
                } else {
                    None
                }
            }
            Insn::PutStatic(s) if at(0) => {
                if usage.static_read_count(*s) > 0 {
                    Some(UseWitness::EscapesToReadStatic(pc))
                } else {
                    None
                }
            }
            Insn::AStore if at(0) => Some(UseWitness::EscapesToArray(pc)),
            Insn::RetVal if at(0) => Some(UseWitness::Returned(pc)),
            Insn::Throw if at(0) => Some(UseWitness::Thrown(pc)),

            Insn::Call(callee_id) => {
                let callee = &program.methods[callee_id.index()];
                let p = callee.num_params as usize;
                let mut w = None;
                for d in 0..p {
                    if at(d) {
                        let is_receiver = d == p - 1 && !callee.is_static;
                        if is_receiver && purity.is_removable_constructor(*callee_id) {
                            // Construction is allowed and side-effect free.
                        } else {
                            w = Some(UseWitness::EscapesToCall(pc));
                        }
                    }
                }
                w
            }
            Insn::CallVirtual { argc, .. } => {
                let mut w = None;
                for d in 0..=*argc as usize {
                    if at(d) {
                        w = Some(if d == *argc as usize {
                            // The object is the receiver of a virtual call —
                            // a direct use event.
                            UseWitness::DirectUse(pc)
                        } else {
                            UseWitness::EscapesToCall(pc)
                        });
                    }
                }
                w
            }
            _ => None,
        };
        if let Some(w) = witness {
            return IndirectUsage::PossiblyUsed(w);
        }
    }
    IndirectUsage::NeverUsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::value::Value;

    fn analyze_first_alloc(p: &Program) -> IndirectUsage {
        let cg = CallGraph::build(p);
        let usage = UsageAnalysis::build(p, &cg);
        let purity = Purity::build(p, &cg);
        let main = p.entry;
        let alloc_pc = p.methods[main.index()]
            .code
            .iter()
            .position(|i| i.is_alloc())
            .expect("program has an allocation") as u32;
        analyze_allocation(p, &usage, &purity, main, alloc_pc)
    }

    #[test]
    fn stored_and_dropped_is_never_used() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.push_null().store(1);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert_eq!(analyze_first_alloc(&p), IndirectUsage::NeverUsed);
    }

    #[test]
    fn field_read_is_a_direct_use_but_initialisation_writes_are_not() {
        // Writes INTO the object are unobservable initialisation (the
        // raytrace pattern); a read FROM it is a real use.
        let build = |read_back: bool| {
            let mut b = ProgramBuilder::new();
            let c = b.begin_class("C").field("f", Visibility::Private).finish();
            let main = b.declare_method("main", None, true, 1, 2);
            {
                let mut m = b.begin_body(main);
                m.new_obj(c).store(1);
                m.load(1).push_int(1).putfield(0);
                if read_back {
                    m.load(1).getfield(0).print();
                }
                m.ret();
                m.finish();
            }
            b.set_entry(main);
            b.finish().unwrap()
        };
        assert_eq!(
            analyze_first_alloc(&build(false)),
            IndirectUsage::NeverUsed,
            "write-only object is dead"
        );
        assert!(matches!(
            analyze_first_alloc(&build(true)),
            IndirectUsage::PossiblyUsed(UseWitness::DirectUse(_))
        ));
    }

    #[test]
    fn pure_constructor_call_is_allowed() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let init = b.declare_method("init", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(init);
            m.load(0).push_int(1).putfield(0);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).dup().store(1).call(init);
            m.push_null().store(1);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert_eq!(
            analyze_first_alloc(&p),
            IndirectUsage::NeverUsed,
            "ctor-only use counts as never-used (§3.4 pattern 1)"
        );
    }

    #[test]
    fn store_into_read_static_is_a_use() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let g = b.static_var("G.x", Visibility::Public, Value::Null);
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).putstatic(g);
            m.getstatic(g).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert!(matches!(
            analyze_first_alloc(&p),
            IndirectUsage::PossiblyUsed(UseWitness::EscapesToReadStatic(_))
        ));
    }

    #[test]
    fn store_into_write_only_static_is_dead() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let g = b.static_var("G.x", Visibility::Public, Value::Null);
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).putstatic(g);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert_eq!(
            analyze_first_alloc(&p),
            IndirectUsage::NeverUsed,
            "the Locale pattern: stored into a never-read static"
        );
    }

    #[test]
    fn returned_object_is_possibly_used() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let make = b.declare_method("make", None, true, 0, 1);
        {
            let mut m = b.begin_body(make);
            m.new_obj(c).ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.call(make).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let usage = UsageAnalysis::build(&p, &cg);
        let purity = Purity::build(&p, &cg);
        let r = analyze_allocation(&p, &usage, &purity, make, 0);
        assert!(matches!(
            r,
            IndirectUsage::PossiblyUsed(UseWitness::Returned(_))
        ));
    }

    #[test]
    fn virtual_call_receiver_is_a_use() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let go = b.declare_method("go", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(go);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).call_virtual("go", 0);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let _ = go;
        assert!(matches!(
            analyze_first_alloc(&p),
            IndirectUsage::PossiblyUsed(UseWitness::DirectUse(_))
        ));
    }
}
