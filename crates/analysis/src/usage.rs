//! Usage analysis (§5.1): which statics and instance fields are ever
//! *read*? A write-only static or field is a sink — allocations flowing
//! into it can be removed (the Locale example of the paper).

use std::collections::{HashMap, HashSet};

use heapdrag_vm::ids::{ClassId, MethodId, StaticId};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::callgraph::CallGraph;
use crate::global_types::GlobalTypes;
use crate::types::{infer_in, AbsType};

/// A field identified by its declaring class and index within that class's
/// own (non-inherited) field list.
pub type FieldKey = (ClassId, u16);

/// Read/write counts for statics and fields across all reachable methods.
#[derive(Debug, Clone, Default)]
pub struct UsageAnalysis {
    static_reads: HashMap<StaticId, u32>,
    static_writes: HashMap<StaticId, u32>,
    field_reads: HashMap<FieldKey, u32>,
    field_writes: HashMap<FieldKey, u32>,
    /// Layout slots read through receivers whose class could not be
    /// resolved; any field landing on such a slot must be assumed read.
    unknown_slot_reads: HashSet<u16>,
}

impl UsageAnalysis {
    /// Scans every reachable method of `program`.
    ///
    /// Methods whose types cannot be inferred are skipped *conservatively*:
    /// every field slot they touch is marked unknown-read.
    pub fn build(program: &Program, callgraph: &CallGraph) -> Self {
        let mut usage = UsageAnalysis::default();
        let globals = GlobalTypes::build(program);
        for mid in 0..program.methods.len() as u32 {
            let mid = MethodId(mid);
            if !callgraph.is_reachable(mid) {
                continue;
            }
            usage.scan_method(program, &globals, mid);
        }
        usage
    }

    fn scan_method(&mut self, program: &Program, globals: &GlobalTypes, mid: MethodId) {
        let method = &program.methods[mid.index()];
        let types = infer_in(program, mid, globals).ok();
        for (pc, insn) in method.code.iter().enumerate() {
            let pc = pc as u32;
            match insn {
                Insn::GetStatic(s) => *self.static_reads.entry(*s).or_default() += 1,
                Insn::PutStatic(s) => *self.static_writes.entry(*s).or_default() += 1,
                Insn::GetField(slot) => {
                    // Receiver on top of stack.
                    match self.resolve(program, &types, pc, 0, *slot) {
                        Some(key) => *self.field_reads.entry(key).or_default() += 1,
                        None => {
                            self.unknown_slot_reads.insert(*slot);
                        }
                    }
                }
                Insn::PutField(slot) => {
                    // Receiver below the value.
                    // Unknown-receiver writes cannot make a field read.
                    if let Some(key) = self.resolve(program, &types, pc, 1, *slot) {
                        *self.field_writes.entry(key).or_default() += 1;
                    }
                }
                _ => {}
            }
        }
    }

    fn resolve(
        &self,
        program: &Program,
        types: &Option<crate::types::MethodTypes>,
        pc: u32,
        depth: usize,
        slot: u16,
    ) -> Option<FieldKey> {
        let t = types.as_ref()?.stack(pc, depth);
        match t {
            AbsType::Ref(Some(class)) => {
                let (decl, idx) = *program.classes[class.index()].layout.get(slot as usize)?;
                Some((decl, idx))
            }
            _ => None,
        }
    }

    /// Times the static has been read in reachable code.
    pub fn static_read_count(&self, s: StaticId) -> u32 {
        self.static_reads.get(&s).copied().unwrap_or(0)
    }

    /// Times the static has been written in reachable code.
    pub fn static_write_count(&self, s: StaticId) -> u32 {
        self.static_writes.get(&s).copied().unwrap_or(0)
    }

    /// Statics written but never read — their stores (and the allocations
    /// feeding them) are dead.
    pub fn write_only_statics(&self, program: &Program) -> Vec<StaticId> {
        (0..program.statics.len() as u32)
            .map(StaticId)
            .filter(|s| self.static_write_count(*s) > 0 && self.static_read_count(*s) == 0)
            .collect()
    }

    /// Is the field (identified by declaring class and own-index) ever
    /// read? Unknown-receiver reads of the field's layout slots count.
    pub fn field_is_read(&self, program: &Program, key: FieldKey) -> bool {
        if self.field_reads.contains_key(&key) {
            return true;
        }
        // If any class laying the field out at slot `s` could be the
        // unknown receiver, be conservative.
        for class in &program.classes {
            for (slot, entry) in class.layout.iter().enumerate() {
                if *entry == key && self.unknown_slot_reads.contains(&(slot as u16)) {
                    return true;
                }
            }
        }
        false
    }

    /// Fields written in reachable code but never read.
    pub fn write_only_fields(&self, program: &Program) -> Vec<FieldKey> {
        let mut keys: Vec<FieldKey> = self
            .field_writes
            .keys()
            .filter(|k| !self.field_is_read(program, **k))
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::value::Value;

    #[test]
    fn write_only_static_detected() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("Locale").finish();
        let used = b.static_var("Locale.USED", Visibility::Public, Value::Null);
        let unused = b.static_var("Locale.UNUSED", Visibility::Public, Value::Null);
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).putstatic(used);
            m.new_obj(c).putstatic(unused);
            m.getstatic(used).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let u = UsageAnalysis::build(&p, &cg);
        assert_eq!(u.write_only_statics(&p), vec![unused]);
        assert_eq!(u.static_read_count(used), 1);
        assert_eq!(u.static_write_count(unused), 1);
    }

    #[test]
    fn writes_in_unreachable_methods_ignored() {
        let mut b = ProgramBuilder::new();
        let s = b.static_var("G.s", Visibility::Public, Value::Int(0));
        let dead = b.declare_method("dead", None, true, 0, 0);
        {
            let mut m = b.begin_body(dead);
            m.getstatic(s).pop(); // a read, but unreachable
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.push_int(1).putstatic(s);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let u = UsageAnalysis::build(&p, &cg);
        assert_eq!(
            u.write_only_statics(&p),
            vec![s],
            "the read in dead code must not count (§5.4)"
        );
    }

    #[test]
    fn write_only_field_detected() {
        let mut b = ProgramBuilder::new();
        let c = b
            .begin_class("Node")
            .field("used", Visibility::Private)
            .field("writeOnly", Visibility::Private)
            .finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.load(1).push_int(1).putfield_named(c, "used");
            m.load(1).push_int(2).putfield_named(c, "writeOnly");
            m.load(1).getfield_named(c, "used").print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let u = UsageAnalysis::build(&p, &cg);
        let wo = u.write_only_fields(&p);
        assert_eq!(wo, vec![(c, 1)]);
        assert!(u.field_is_read(&p, (c, 0)));
        assert!(!u.field_is_read(&p, (c, 1)));
    }

    #[test]
    fn inherited_field_attributed_to_declaring_class() {
        let mut b = ProgramBuilder::new();
        let base = b
            .begin_class("Base")
            .field("inherited", Visibility::Protected)
            .finish();
        let derived = b.begin_class("Derived").extends(base).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(derived).store(1);
            m.load(1).getfield_named(derived, "inherited").pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let u = UsageAnalysis::build(&p, &cg);
        assert!(u.field_is_read(&p, (base, 0)), "read through Derived receiver");
    }
}
