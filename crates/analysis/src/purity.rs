//! Method effect summaries and constructor-purity checks, backing the
//! safety conditions of dead-code removal and lazy allocation (§3.3.2,
//! §3.3.3).

use std::collections::HashMap;

use heapdrag_vm::ids::MethodId;
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::callgraph::CallGraph;
use crate::provenance::{infer_provenance, Prov};

/// What one method does to the world outside its own fresh objects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Reads a static variable (depends on program state).
    pub reads_statics: bool,
    /// Writes a static variable.
    pub writes_statics: bool,
    /// Writes a field or element of an object that is neither the
    /// receiver, a parameter, nor allocated inside the method.
    pub writes_foreign: bool,
    /// Writes a field or element of a (non-receiver) *parameter*. Whether
    /// that is an external effect depends on what each caller passes; the
    /// fixpoint resolves it per call site.
    pub writes_params: bool,
    /// Produces program output.
    pub prints: bool,
    /// Enters or exits a monitor.
    pub uses_monitors: bool,
    /// Contains an explicit `throw`.
    pub throws_explicitly: bool,
    /// Stores the receiver into a field, static, array, or passes it on —
    /// after the call, the receiver may be reachable from elsewhere.
    pub receiver_escapes: bool,
    /// Contains a virtual call (targets approximated by CHA but treated as
    /// opaque for purity).
    pub has_virtual_calls: bool,
    /// Reads a parameter other than the receiver.
    pub reads_other_params: bool,
    /// Provenance inference failed; everything must be assumed.
    pub opaque: bool,
}

impl EffectSummary {
    fn worst() -> Self {
        EffectSummary {
            reads_statics: true,
            writes_statics: true,
            writes_foreign: true,
            writes_params: true,
            prints: true,
            uses_monitors: true,
            throws_explicitly: true,
            receiver_escapes: true,
            has_virtual_calls: true,
            reads_other_params: true,
            opaque: true,
        }
    }

    fn absorb_callee(&mut self, callee: &EffectSummary) {
        self.reads_statics |= callee.reads_statics;
        self.writes_statics |= callee.writes_statics;
        self.writes_foreign |= callee.writes_foreign;
        self.prints |= callee.prints;
        self.uses_monitors |= callee.uses_monitors;
        self.throws_explicitly |= callee.throws_explicitly;
        self.has_virtual_calls |= callee.has_virtual_calls;
        self.opaque |= callee.opaque;
        // receiver_escapes, reads_other_params, and writes_params are
        // per-frame properties, resolved per call site in the fixpoint.
    }
}

/// What a direct call site passes to its callee, as far as effect
/// propagation cares.
#[derive(Debug, Clone, Copy)]
struct CallSite {
    callee: MethodId,
    /// Our receiver is handed over as the callee's receiver.
    receiver_to_receiver: bool,
    /// Some argument is one of our own parameters.
    has_param_arg: bool,
    /// Some argument is an unknown reference (neither frame-local nor a
    /// parameter).
    has_other_arg: bool,
}

/// Effect summaries for every method, computed to a fixpoint over the call
/// graph.
#[derive(Debug, Clone)]
pub struct Purity {
    summaries: HashMap<MethodId, EffectSummary>,
}

impl Purity {
    /// Analyzes all methods of `program`.
    pub fn build(program: &Program, callgraph: &CallGraph) -> Self {
        let n = program.methods.len();
        let mut local: Vec<EffectSummary> = Vec::with_capacity(n);
        let mut callsites: Vec<Vec<CallSite>> = vec![Vec::new(); n];
        for mid in 0..n as u32 {
            let mid = MethodId(mid);
            local.push(local_summary(program, mid, &mut callsites));
        }
        // Fixpoint: absorb callee effects.
        let mut summaries = local.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for mid in 0..n {
                let mut s = summaries[mid];
                for callee in callgraph.callees(MethodId(mid as u32)) {
                    let c = summaries[callee.index()];
                    let before = s;
                    s.absorb_callee(&c);
                    for cs in callsites[mid].iter().filter(|cs| cs.callee == *callee) {
                        // If our receiver is passed to a callee whose own
                        // receiver escapes, ours escapes too.
                        if cs.receiver_to_receiver && c.receiver_escapes {
                            s.receiver_escapes = true;
                        }
                        // A callee that writes its parameters writes
                        // whatever we passed: our own fresh objects (no
                        // effect), our parameters, or something unknown.
                        if c.writes_params {
                            s.writes_params |= cs.has_param_arg;
                            s.writes_foreign |= cs.has_other_arg;
                        }
                    }
                    changed |= s != before;
                }
                summaries[mid] = s;
            }
        }
        Purity {
            summaries: summaries
                .into_iter()
                .enumerate()
                .map(|(i, s)| (MethodId(i as u32), s))
                .collect(),
        }
    }

    /// The transitive effect summary of `method`.
    pub fn summary(&self, method: MethodId) -> EffectSummary {
        self.summaries
            .get(&method)
            .copied()
            .unwrap_or_else(EffectSummary::worst)
    }

    /// §3.3.2's condition for removing an allocation together with its
    /// constructor call: the paper requires "the constructor has no
    /// influence on the rest of the program" — no foreign or parameter
    /// writes, no static writes, no output, no explicit throws, no
    /// receiver escape, no virtual calls.
    pub fn is_removable_constructor(&self, method: MethodId) -> bool {
        let s = self.summary(method);
        !s.opaque
            && !s.writes_statics
            && !s.writes_foreign
            && !s.writes_params
            && !s.prints
            && !s.uses_monitors
            && !s.throws_explicitly
            && !s.receiver_escapes
            && !s.has_virtual_calls
    }

    /// §3.3.3's condition for *delaying* an allocation: everything above,
    /// plus the constructor may not depend on program state — it must not
    /// read statics or non-receiver parameters, so running it later yields
    /// the same object.
    pub fn is_lazy_allocatable_constructor(&self, method: MethodId) -> bool {
        let s = self.summary(method);
        self.is_removable_constructor(method) && !s.reads_statics && !s.reads_other_params
    }
}

fn local_summary(
    program: &Program,
    mid: MethodId,
    callsites: &mut [Vec<CallSite>],
) -> EffectSummary {
    let method = &program.methods[mid.index()];
    let mut s = EffectSummary::default();
    let prov = match infer_provenance(program, mid) {
        Some(p) => p,
        None => return EffectSummary::worst(),
    };
    for (pc, insn) in method.code.iter().enumerate() {
        let pc = pc as u32;
        if !prov.analyzed(pc) {
            continue; // unreachable code has no effects
        }
        match insn {
            Insn::GetStatic(_) => s.reads_statics = true,
            Insn::PutStatic(_) => {
                s.writes_statics = true;
                if prov.stack(pc, 0) == Prov::This {
                    s.receiver_escapes = true;
                }
            }
            Insn::PutField(_) => {
                let receiver = prov.stack(pc, 1);
                let value = prov.stack(pc, 0);
                match receiver {
                    Prov::This | Prov::Alloc(_) => {}
                    Prov::Param(_) => s.writes_params = true,
                    _ => s.writes_foreign = true,
                }
                if value == Prov::This && receiver != Prov::This {
                    s.receiver_escapes = true;
                }
            }
            Insn::AStore => {
                let receiver = prov.stack(pc, 2);
                let value = prov.stack(pc, 0);
                match receiver {
                    Prov::Alloc(_) => {}
                    Prov::Param(_) => s.writes_params = true,
                    _ => s.writes_foreign = true,
                }
                if value == Prov::This {
                    s.receiver_escapes = true;
                }
            }
            Insn::Print => s.prints = true,
            Insn::MonitorEnter | Insn::MonitorExit => s.uses_monitors = true,
            Insn::Throw => s.throws_explicitly = true,
            Insn::RetVal
                if prov.stack(pc, 0) == Prov::This => {
                    s.receiver_escapes = true;
                }
            Insn::Load(l) => {
                if *l > 0 && (*l as usize) < method.num_params as usize {
                    s.reads_other_params = true;
                }
                if *l == 0 && method.is_static && method.num_params > 0 {
                    // Static methods' param 0 is an ordinary parameter.
                    s.reads_other_params = true;
                }
            }
            Insn::Call(target) => {
                let callee = &program.methods[target.index()];
                let p = callee.num_params as usize;
                let mut site = CallSite {
                    callee: *target,
                    receiver_to_receiver: false,
                    has_param_arg: false,
                    has_other_arg: false,
                };
                for d in 0..p {
                    let arg = prov.stack(pc, d);
                    let is_callee_receiver = d == p - 1 && !callee.is_static;
                    match arg {
                        Prov::This if is_callee_receiver => {
                            site.receiver_to_receiver = true;
                        }
                        Prov::This => s.receiver_escapes = true,
                        Prov::Param(_) => site.has_param_arg = true,
                        other if other.is_frame_local() => {}
                        _ => site.has_other_arg = true,
                    }
                }
                callsites[mid.index()].push(site);
            }
            Insn::CallVirtual { argc, .. } => {
                s.has_virtual_calls = true;
                for d in 0..=*argc as usize {
                    if prov.stack(pc, d) == Prov::This {
                        s.receiver_escapes = true;
                    }
                }
            }
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::value::Value;

    struct Fixture {
        program: Program,
        pure_ctor: MethodId,
        static_reading_ctor: MethodId,
        escaping_ctor: MethodId,
        printing_ctor: MethodId,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new();
        let c = b
            .begin_class("C")
            .field("x", Visibility::Private)
            .finish();
        let registry = b.static_var("G.registry", Visibility::Public, Value::Null);

        let pure_ctor = b.declare_method("init", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(pure_ctor);
            m.load(0).push_int(1).putfield(0);
            m.ret();
            m.finish();
        }
        let static_reading_ctor = b.declare_method("initFromGlobal", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(static_reading_ctor);
            m.load(0).getstatic(registry).putfield(0);
            m.ret();
            m.finish();
        }
        let escaping_ctor = b.declare_method("initRegistered", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(escaping_ctor);
            m.load(0).putstatic(registry); // receiver escapes!
            m.ret();
            m.finish();
        }
        let printing_ctor = b.declare_method("initLoud", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(printing_ctor);
            m.push_int(42).print();
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).dup().store(1).call(pure_ctor);
            m.load(1).call(static_reading_ctor);
            m.load(1).call(escaping_ctor);
            m.load(1).call(printing_ctor);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        Fixture {
            program: b.finish().unwrap(),
            pure_ctor,
            static_reading_ctor,
            escaping_ctor,
            printing_ctor,
        }
    }

    #[test]
    fn pure_constructor_is_removable_and_lazy() {
        let f = fixture();
        let cg = CallGraph::build(&f.program);
        let purity = Purity::build(&f.program, &cg);
        assert!(purity.is_removable_constructor(f.pure_ctor));
        assert!(purity.is_lazy_allocatable_constructor(f.pure_ctor));
    }

    #[test]
    fn static_reading_ctor_not_lazy_but_removable() {
        let f = fixture();
        let cg = CallGraph::build(&f.program);
        let purity = Purity::build(&f.program, &cg);
        // Reading state doesn't make removal unsafe, but delaying changes
        // which state is read.
        assert!(purity.is_removable_constructor(f.static_reading_ctor));
        assert!(!purity.is_lazy_allocatable_constructor(f.static_reading_ctor));
    }

    #[test]
    fn escaping_receiver_blocks_removal() {
        let f = fixture();
        let cg = CallGraph::build(&f.program);
        let purity = Purity::build(&f.program, &cg);
        let s = purity.summary(f.escaping_ctor);
        assert!(s.receiver_escapes);
        assert!(!purity.is_removable_constructor(f.escaping_ctor));
    }

    #[test]
    fn output_blocks_removal() {
        let f = fixture();
        let cg = CallGraph::build(&f.program);
        let purity = Purity::build(&f.program, &cg);
        assert!(purity.summary(f.printing_ctor).prints);
        assert!(!purity.is_removable_constructor(f.printing_ctor));
    }

    #[test]
    fn effects_propagate_through_calls() {
        // wrapper() calls a printing helper → wrapper prints transitively.
        let mut b = ProgramBuilder::new();
        let helper = b.declare_method("helper", None, true, 0, 0);
        {
            let mut m = b.begin_body(helper);
            m.push_int(1).print().ret();
            m.finish();
        }
        let c = b.begin_class("C").finish();
        let wrapper = b.declare_method("init", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(wrapper);
            m.call(helper);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).call(wrapper);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let purity = Purity::build(&p, &cg);
        assert!(purity.summary(wrapper).prints);
        assert!(!purity.is_removable_constructor(wrapper));
    }
}

#[cfg(test)]
mod param_write_tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;

    /// fill(a) writes its parameter; callers' effects depend on what they
    /// pass.
    fn fixture() -> (Program, MethodId, MethodId, MethodId, MethodId) {
        let mut b = ProgramBuilder::new();
        let fill = b.declare_method("fill", None, true, 1, 1);
        {
            let mut m = b.begin_body(fill);
            m.load(0).push_int(0).push_int(7).astore();
            m.ret();
            m.finish();
        }
        let c = b.begin_class("C").field("buf", Visibility::Private).finish();
        // Constructor passing a FRESH array to fill: stays effect-free.
        let fresh_ctor = b.declare_method("init", Some(c), false, 1, 2);
        {
            let mut m = b.begin_body(fresh_ctor);
            m.load(0);
            m.push_int(8).new_array().dup().call(fill);
            m.putfield_named(c, "buf");
            m.ret();
            m.finish();
        }
        // Method passing its own PARAMETER through: inherits writes_params.
        let pass_through = b.declare_method("fillIt", Some(c), false, 2, 2);
        {
            let mut m = b.begin_body(pass_through);
            m.load(1).call(fill);
            m.ret();
            m.finish();
        }
        // Method passing an UNKNOWN reference (read from a field): foreign.
        let pass_unknown = b.declare_method("fillMine", Some(c), false, 1, 2);
        {
            let mut m = b.begin_body(pass_unknown);
            m.load(0).getfield_named(c, "buf").call(fill);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).dup().store(1).call(fresh_ctor);
            m.load(1).push_int(4).new_array().call(pass_through);
            m.load(1).call(pass_unknown);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), fill, fresh_ctor, pass_through, pass_unknown)
    }

    #[test]
    fn param_writer_is_flagged_but_not_foreign() {
        let (p, fill, ..) = fixture();
        let cg = CallGraph::build(&p);
        let purity = Purity::build(&p, &cg);
        let s = purity.summary(fill);
        assert!(s.writes_params);
        assert!(!s.writes_foreign);
        assert!(
            !purity.is_removable_constructor(fill),
            "writing params disqualifies removal at unknown call sites"
        );
    }

    #[test]
    fn fresh_argument_keeps_the_caller_clean() {
        let (p, _, fresh_ctor, ..) = fixture();
        let cg = CallGraph::build(&p);
        let purity = Purity::build(&p, &cg);
        let s = purity.summary(fresh_ctor);
        assert!(!s.writes_params, "{s:?}");
        assert!(!s.writes_foreign, "{s:?}");
        assert!(
            purity.is_removable_constructor(fresh_ctor),
            "zero-fill of a fresh array is invisible outside"
        );
    }

    #[test]
    fn param_argument_propagates_writes_params() {
        let (p, _, _, pass_through, _) = fixture();
        let cg = CallGraph::build(&p);
        let purity = Purity::build(&p, &cg);
        let s = purity.summary(pass_through);
        assert!(s.writes_params, "{s:?}");
        assert!(!s.writes_foreign, "{s:?}");
    }

    #[test]
    fn unknown_argument_becomes_foreign() {
        let (p, _, _, _, pass_unknown) = fixture();
        let cg = CallGraph::build(&p);
        let purity = Purity::build(&p, &cg);
        let s = purity.summary(pass_unknown);
        assert!(s.writes_foreign, "{s:?}");
    }
}
