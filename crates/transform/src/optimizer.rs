//! The profile-guided optimizer: §3.4's "putting it all together", run
//! mechanically. Given a drag profile, walk the allocation sites from
//! largest drag down and apply the transformation the site's lifetime
//! pattern suggests, with every safety check of the static analyses.
//!
//! Two levels of API:
//!
//! * [`optimize`] / [`optimize_iteratively`] — the whole-report drivers:
//!   walk every ranked site in one call (optionally looping
//!   profile → rewrite → re-profile rounds).
//! * [`optimize_site`] — one site at a time, threading an explicit
//!   [`OptimizeState`] between calls. This is the building block the
//!   fleet driver uses to make each rewrite *transactional*: clone the
//!   program, attempt one site, verify equivalence, and commit or revert.
//!
//! Every visited site produces a [`SiteAttempt`] carrying the stable
//! outcome taxonomy ([`RewriteOutcome`]): `applied`,
//! `rejected-by-analysis`, `rejected-by-verify` (assigned by callers that
//! run an output-differential check, e.g. the fleet driver), or `no-op`.

use std::collections::HashSet;
use std::fmt;

use heapdrag_core::analyzer::{DragReport, NestedSiteEntry};
use heapdrag_core::pattern::{LifetimePattern, TransformKind};
use heapdrag_core::profiler::ProfileRun;
use heapdrag_vm::ids::{ChainId, MethodId, StaticId};
use heapdrag_vm::program::Program;

use crate::assign_null::{assign_null_method, null_static_after};
use crate::dead_code::{remove_dead_allocation, DeadCodeContext};
use crate::lazy_alloc::{apply_lazy_allocation, find_lazy_candidates};

/// Tuning for the optimizer's site walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerOptions {
    /// Ignore sites contributing less than this share of the total drag.
    pub min_drag_share: f64,
    /// Visit at most this many sites.
    pub max_sites: usize,
    /// Allow path-anchored assign-null: when liveness finds no dead
    /// local, null the *static* named by the site's sampled retaining
    /// path after the profile's dominant last use. Profile-guided rather
    /// than statically proven, so it defaults to `false`; enable it only
    /// behind an output-differential check (the fleet driver's
    /// transactional verify).
    pub path_anchoring: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            min_drag_share: 0.01,
            max_sites: 25,
            path_anchoring: false,
        }
    }
}

/// Where a path-anchored assign-null would strike: the holding static
/// (named by the dominant sampled retaining path) and the pc right after
/// which to null it (the profile's dominant last-use point).
///
/// Resolved by [`find_path_anchor`], consumed by [`optimize_site`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAnchor {
    /// The static variable rooting the site's sampled objects.
    pub target: StaticId,
    /// Its name, for attempt details.
    pub static_name: String,
    /// Method containing the dominant last use.
    pub method: MethodId,
    /// Pc of the dominant last-use instruction; the null store lands
    /// right after it.
    pub pc: u32,
    /// The full sampled path, for attempt details.
    pub path: String,
}

/// Resolves the path-anchored assign-null opportunity at `site`, if any:
/// the report must carry retaining samples for the site
/// ([`DragReport::attach_retains`]), the dominant path must be rooted at
/// a static, and the profile must know a last-use point for the site's
/// objects.
pub fn find_path_anchor(
    program: &Program,
    run: &ProfileRun,
    report: &DragReport,
    site: ChainId,
) -> Option<PathAnchor> {
    let retain = report.retaining.iter().find(|r| r.site == site)?;
    let dominant = retain.dominant_path()?;
    let root = dominant.path.split(" -> ").next()?;
    let name = root.strip_prefix("static ")?;
    let target = program.static_by_name(name)?;
    // The pair partition is sorted by drag, so the first used pair for
    // this site is the dominant last use.
    let pair = report
        .by_alloc_and_last_use
        .iter()
        .find(|p| p.alloc_site == site && p.last_use_site.is_some())?;
    let use_site = run.sites.innermost(pair.last_use_site?)?;
    let info = run.sites.site(use_site);
    Some(PathAnchor {
        target,
        static_name: name.to_string(),
        method: info.method,
        pc: info.pc,
        path: dominant.path.clone(),
    })
}

/// One transformation the optimizer performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedTransform {
    /// The profiled site that motivated the rewrite.
    pub site: ChainId,
    /// Which of the three rewritings ran.
    pub kind: TransformKind,
    /// Human-readable description of what was changed.
    pub detail: String,
}

/// How a per-site rewrite attempt ended — the stable outcome taxonomy.
///
/// The string forms (via [`Display`](fmt::Display) or
/// [`as_str`](RewriteOutcome::as_str)) are part of the scoreboard and
/// metrics contract and must not change:
/// `applied` / `rejected-by-analysis` / `rejected-by-verify` / `no-op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewriteOutcome {
    /// The suggested rewriting (or its safe fallback) changed the program.
    Applied,
    /// A §5 static analysis refused the rewrite as potentially unsafe.
    RejectedByAnalysis,
    /// The rewrite was applied but an output-differential check showed a
    /// behaviour change, so it was reverted. Never produced by
    /// [`optimize_site`] itself — assigned by callers that verify (the
    /// fleet driver, `heapdrag optimize-fleet`).
    RejectedByVerify,
    /// Nothing to do at this site (pattern suggests no rewrite, no dead
    /// locals found, or the method was already rewritten this round).
    NoOp,
}

impl RewriteOutcome {
    /// The stable string form used in scoreboards and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            RewriteOutcome::Applied => "applied",
            RewriteOutcome::RejectedByAnalysis => "rejected-by-analysis",
            RewriteOutcome::RejectedByVerify => "rejected-by-verify",
            RewriteOutcome::NoOp => "no-op",
        }
    }
}

impl fmt::Display for RewriteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The record of one ranked site's visit: which pattern it exhibited,
/// which rewriting the decision table chose, and how the attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteAttempt {
    /// The profiled allocation site (nested chain).
    pub site: ChainId,
    /// The lifetime pattern the analyzer classified the site as.
    pub pattern: LifetimePattern,
    /// The rewriting the pattern → transform decision table selected.
    pub chosen: TransformKind,
    /// How the attempt ended.
    pub outcome: RewriteOutcome,
    /// Human-readable detail (what changed, or why not).
    pub detail: String,
    /// True when the rewrite was placed by a sampled retaining path
    /// (path-anchored assign-null) rather than a static analysis.
    pub path_anchored: bool,
}

/// The optimizer's report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizationOutcome {
    /// Transformations applied, in site-drag order.
    pub applied: Vec<AppliedTransform>,
    /// Sites visited whose suggested rewriting was refused by a safety
    /// check (site, reason).
    pub refused: Vec<(ChainId, String)>,
    /// One entry per ranked site visited, carrying the stable outcome
    /// taxonomy. Superset of the information in `applied`/`refused`.
    pub attempts: Vec<SiteAttempt>,
}

/// Cross-site state for one optimization round.
///
/// Pc-shifting rewrites (dead-code removal, lazy allocation, null-store
/// insertion) invalidate the profiled pcs of the methods they touch;
/// the state records those methods so later sites in the same round skip
/// them. Clone it before a tentative [`optimize_site`] call to make the
/// attempt revertible.
#[derive(Debug, Clone, Default)]
pub struct OptimizeState {
    nulled: HashSet<MethodId>,
    shifted: HashSet<MethodId>,
}

/// The result of one [`optimize_site`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStep {
    /// The taxonomy record for this site.
    pub attempt: SiteAttempt,
    /// Transformations applied at this site (possibly a fallback kind).
    pub applied: Vec<AppliedTransform>,
    /// Refusal reasons recorded at this site.
    pub refused: Vec<(ChainId, String)>,
}

fn assign_null_chain(
    program: &mut Program,
    run: &ProfileRun,
    site: ChainId,
    state: &mut OptimizeState,
) -> usize {
    let mut inserted = 0usize;
    for s in run.sites.chain(site) {
        let m = run.sites.site(*s).method;
        if state.nulled.contains(&m) || state.shifted.contains(&m) {
            continue;
        }
        if let Ok(n) = assign_null_method(program, m) {
            inserted += n;
            if n > 0 {
                // Insertions shift pcs; stale profiled pcs in this method
                // must not be rewritten further this round.
                state.shifted.insert(m);
            }
        }
        state.nulled.insert(m);
    }
    inserted
}

/// Attempts the pattern-appropriate rewriting at one ranked site.
///
/// `program` must be the program that produced `run` (profiled pcs are
/// looked up in it). On return the program may have been rewritten
/// in place — callers that need transactionality should clone `program`
/// (and `state`) first and commit or discard the pair based on
/// [`SiteStep::attempt`]. After committing, relink via `Program::link`.
///
/// `anchor` is the site's path-anchored assign-null opportunity (see
/// [`find_path_anchor`]); pass `None` to restrict assign-null to the
/// statically-safe liveness rewrite. An anchor is only consulted when
/// liveness inserts nothing, and the resulting attempt is flagged
/// [`SiteAttempt::path_anchored`] — callers passing `Some` must verify
/// the rewrite behind an output-differential check.
pub fn optimize_site(
    program: &mut Program,
    run: &ProfileRun,
    entry: &NestedSiteEntry,
    anchor: Option<&PathAnchor>,
    state: &mut OptimizeState,
) -> SiteStep {
    let pattern = entry.stats.pattern;
    let chosen = pattern.suggested_transform();
    let mut step = SiteStep {
        attempt: SiteAttempt {
            site: entry.site,
            pattern,
            chosen,
            outcome: RewriteOutcome::NoOp,
            detail: String::new(),
            path_anchored: false,
        },
        applied: Vec::new(),
        refused: Vec::new(),
    };
    let mut path_anchored = false;
    let mut resolve = |outcome: RewriteOutcome, detail: String| {
        step.attempt.outcome = outcome;
        step.attempt.detail = detail;
    };

    let Some(site_id) = run.sites.innermost(entry.site) else {
        resolve(
            RewriteOutcome::NoOp,
            "site has no resolvable innermost frame".into(),
        );
        return step;
    };
    let info = run.sites.site(site_id);
    let (method, pc) = (info.method, info.pc);

    match chosen {
        TransformKind::DeadCodeRemoval => {
            if state.shifted.contains(&method) {
                step.refused
                    .push((entry.site, "method already rewritten this round".into()));
                resolve(
                    RewriteOutcome::NoOp,
                    "method already rewritten this round".into(),
                );
                return step;
            }
            let ctx = DeadCodeContext::build(program);
            match remove_dead_allocation(program, &ctx, method, pc) {
                Ok(r) => {
                    state.shifted.insert(method);
                    let detail = format!(
                        "removed allocation at {}@{}{}",
                        program.method_name(method),
                        r.pc,
                        match r.ctor_call {
                            Some(c) => format!(" (+ constructor call at {c})"),
                            None => String::new(),
                        }
                    );
                    step.applied.push(AppliedTransform {
                        site: entry.site,
                        kind: TransformKind::DeadCodeRemoval,
                        detail: detail.clone(),
                    });
                    resolve(RewriteOutcome::Applied, detail);
                }
                Err(e) => {
                    step.refused.push((entry.site, e.to_string()));
                    // Fall back to the always-safe rewrite.
                    let n = assign_null_chain(program, run, entry.site, state);
                    if n > 0 {
                        let detail =
                            format!("fallback: inserted {n} null store(s) on the call chain");
                        step.applied.push(AppliedTransform {
                            site: entry.site,
                            kind: TransformKind::AssignNull,
                            detail: detail.clone(),
                        });
                        resolve(RewriteOutcome::Applied, format!("{e}; {detail}"));
                    } else {
                        resolve(
                            RewriteOutcome::RejectedByAnalysis,
                            format!("{e}; fallback inserted nothing"),
                        );
                    }
                }
            }
        }
        TransformKind::LazyAllocation => {
            if state.shifted.contains(&method) {
                step.refused
                    .push((entry.site, "method already rewritten this round".into()));
                resolve(
                    RewriteOutcome::NoOp,
                    "method already rewritten this round".into(),
                );
                return step;
            }
            let callgraph = heapdrag_analysis::CallGraph::build(program);
            let purity = heapdrag_analysis::Purity::build(program, &callgraph);
            // §3.4's anchor walk: the innermost frame is usually inside
            // library code (e.g. the array allocation in Vector.init);
            // walk the chain outwards to the first frame holding a
            // rewritable constructor shape around its call site.
            let candidate = run
                .sites
                .chain(entry.site)
                .iter()
                .filter(|s| !state.shifted.contains(&run.sites.site(**s).method))
                .find_map(|s| {
                    let info = run.sites.site(*s);
                    find_lazy_candidates(program, &purity, info.method)
                        .into_iter()
                        .find(|c| c.alloc_pc <= info.pc && info.pc <= c.store_pc)
                });
            match candidate.as_ref() {
                Some(c) => match apply_lazy_allocation(program, c) {
                    Ok(applied) => {
                        state.shifted.insert(method);
                        state.shifted.insert(c.ctor);
                        for g in &applied.guards {
                            state.shifted.insert(g.method);
                        }
                        let detail = format!(
                            "delayed allocation of field slot {} of {} ({} guard(s))",
                            c.slot,
                            program.classes[c.class.index()].name,
                            applied.guards.len()
                        );
                        step.applied.push(AppliedTransform {
                            site: entry.site,
                            kind: TransformKind::LazyAllocation,
                            detail: detail.clone(),
                        });
                        resolve(RewriteOutcome::Applied, detail);
                    }
                    Err(e) => {
                        step.refused.push((entry.site, e.to_string()));
                        resolve(RewriteOutcome::RejectedByAnalysis, e.to_string());
                    }
                },
                None => {
                    let reason = "no lazy-allocation candidate at this site".to_string();
                    step.refused.push((entry.site, reason.clone()));
                    resolve(RewriteOutcome::RejectedByAnalysis, reason);
                }
            }
        }
        TransformKind::AssignNull => {
            // Null dead references in every method on the call chain —
            // the §3.4 anchor walk.
            let inserted = assign_null_chain(program, run, entry.site, state);
            if inserted > 0 {
                let detail = format!("inserted {inserted} null store(s) on the call chain");
                step.applied.push(AppliedTransform {
                    site: entry.site,
                    kind: TransformKind::AssignNull,
                    detail: detail.clone(),
                });
                resolve(RewriteOutcome::Applied, detail);
            } else if let Some(a) = anchor.filter(|a| !state.shifted.contains(&a.method)) {
                // Liveness found nothing to null: the drag is rooted in a
                // static, not a frame slot. The sampled retaining path
                // names the static; null it right after the profile's
                // dominant last use. Verification is the caller's gate.
                null_static_after(program, a.method, a.pc, a.target);
                state.shifted.insert(a.method);
                path_anchored = true;
                let detail = format!(
                    "no dead reference locals; path-anchored: nulled static {} \
                     after last use at {}@{} (sampled path `{}`)",
                    a.static_name,
                    program.method_name(a.method),
                    a.pc,
                    a.path,
                );
                step.applied.push(AppliedTransform {
                    site: entry.site,
                    kind: TransformKind::AssignNull,
                    detail: detail.clone(),
                });
                resolve(RewriteOutcome::Applied, detail);
            } else {
                let reason = "no dead reference locals found".to_string();
                step.refused.push((entry.site, reason.clone()));
                resolve(RewriteOutcome::NoOp, reason);
            }
        }
        TransformKind::NoTransformation => {
            let reason = format!("pattern `{}` suggests no rewrite", pattern);
            step.refused.push((entry.site, reason.clone()));
            resolve(RewriteOutcome::NoOp, reason);
        }
    }
    step.attempt.path_anchored = path_anchored;
    step
}

/// Rewrites `program` in place, guided by `run`/`report`.
///
/// The program must be the one that produced the profile (site pcs are
/// looked up in it). After the call the program is relinked by the caller
/// via [`Program::link`] — the transforms keep jump targets consistent, so
/// this is just a revalidation.
pub fn optimize(
    program: &mut Program,
    run: &ProfileRun,
    report: &DragReport,
    options: OptimizerOptions,
) -> OptimizationOutcome {
    let mut outcome = OptimizationOutcome::default();
    let total_drag = report.total_drag().max(1);
    let mut state = OptimizeState::default();

    for entry in report.by_nested_site.iter().take(options.max_sites) {
        let share = entry.stats.drag as f64 / total_drag as f64;
        if share < options.min_drag_share {
            break;
        }
        if run.sites.innermost(entry.site).is_none() {
            continue;
        }
        let anchor = if options.path_anchoring {
            find_path_anchor(program, run, report, entry.site)
        } else {
            None
        };
        let step = optimize_site(program, run, entry, anchor.as_ref(), &mut state);
        outcome.applied.extend(step.applied);
        outcome.refused.extend(step.refused);
        outcome.attempts.push(step.attempt);
    }
    let _ = LifetimePattern::Mixed; // referenced for doc-link stability
    outcome
}

/// Runs profile → optimize → re-profile cycles, as §3.2 describes
/// ("sometimes, the results revealed more opportunities for drag
/// reduction; in that case, another cycle of code rewriting and applying
/// the tool took place"). Re-profiling also refreshes site pcs after
/// pc-shifting rewrites. Stops early when a round applies nothing.
///
/// ```
/// use heapdrag_transform::{optimize_iteratively, OptimizerOptions};
/// use heapdrag_vm::interp::{Vm, VmConfig};
/// use heapdrag_vm::ProgramBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let main = b.declare_method("main", None, true, 1, 2);
/// {
///     let mut m = b.begin_body(main);
///     m.push_int(4000).new_array().store(1); // big buffer…
///     m.load(1).push_int(0).push_int(7).astore();
///     m.load(1).push_int(0).aload().print(); // …last used here…
///     m.push_int(64).new_array().pop(); // …drags across this allocation
///     m.ret();
///     m.finish();
/// }
/// b.set_entry(main);
/// let original = b.finish()?;
///
/// let mut revised = original.clone();
/// let outcome = optimize_iteratively(
///     &mut revised,
///     &[],
///     VmConfig::profiling(),
///     OptimizerOptions::default(),
///     3,
/// )?;
/// assert!(!outcome.applied.is_empty(), "the dragged buffer gets a rewrite");
///
/// // Behaviour is preserved: same output on the original input.
/// let o1 = Vm::new(&original, VmConfig::default()).run(&[])?.output;
/// let o2 = Vm::new(&revised, VmConfig::default()).run(&[])?.output;
/// assert_eq!(o1, o2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates VM errors from profiling runs.
pub fn optimize_iteratively(
    program: &mut Program,
    input: &[i64],
    config: heapdrag_vm::interp::VmConfig,
    options: OptimizerOptions,
    max_rounds: usize,
) -> Result<OptimizationOutcome, heapdrag_vm::error::VmError> {
    use heapdrag_core::analyzer::DragAnalyzer;
    let mut combined = OptimizationOutcome::default();
    for _ in 0..max_rounds {
        let run = heapdrag_core::profiler::profile(program, input, config.clone())?;
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let outcome = optimize(program, &run, &report, options);
        program.link().expect("transforms keep the program well-formed");
        let progressed = !outcome.applied.is_empty();
        combined.applied.extend(outcome.applied);
        combined.refused.extend(outcome.refused);
        combined.attempts.extend(outcome.attempts);
        if !progressed {
            break;
        }
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, DragAnalyzer, Integrals, VmConfig};
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::interp::Vm;

    /// One program exhibiting all three patterns at different sites.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("Obj").field("f", Visibility::Private).finish();
        let filler = b.declare_method("filler", None, true, 0, 1);
        {
            let mut m = b.begin_body(filler);
            m.push_int(0).store(0);
            m.label("loop");
            m.load(0).push_int(300).cmpge().branch("done");
            m.push_int(32).new_array().pop();
            m.load(0).push_int(1).add().store(0);
            m.jump("loop");
            m.label("done").ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            // Site A: never-used objects (dead-code removal).
            m.push_int(0).store(2);
            m.label("never_loop");
            m.load(2).push_int(40).cmpge().branch("never_done");
            m.mark("site A: never used").new_obj(c).store(1);
            m.push_null().store(1);
            m.load(2).push_int(1).add().store(2);
            m.jump("never_loop");
            m.label("never_done");
            // Site B: big array genuinely *read* across some allocation
            // (so its in-use span is visible on the byte clock), then
            // dragged. The read matters: a write-only buffer would be
            // plain dead code to the indirect-usage analysis.
            m.push_int(3000).mark("site B: dragged buffer").new_array().store(1);
            m.load(1).push_int(0).push_int(3).astore();
            m.push_int(64).new_array().pop(); // clock advances between uses
            m.load(1).push_int(0).aload().pop(); // last use: a *read*
            m.call(filler);
            m.push_int(17).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn optimizer_applies_pattern_appropriate_transforms() {
        let original = mixed_program();
        let run = profile(&original, &[], VmConfig::profiling()).unwrap();
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let mut revised = original.clone();
        let outcome = optimize(&mut revised, &run, &report, OptimizerOptions::default());
        revised.link().unwrap();

        let kinds: Vec<TransformKind> = outcome.applied.iter().map(|a| a.kind).collect();
        assert!(
            kinds.contains(&TransformKind::AssignNull),
            "dragged buffer wants assign-null; applied: {:?}, refused: {:?}",
            outcome.applied,
            outcome.refused
        );
        assert!(
            kinds.contains(&TransformKind::DeadCodeRemoval),
            "never-used site wants removal; applied: {:?}, refused: {:?}",
            outcome.applied,
            outcome.refused
        );

        // Behaviour preserved, space saved.
        let o1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(o1.output, o2.output);
        let r2 = profile(&revised, &[], VmConfig::profiling()).unwrap();
        let i1 = Integrals::from_records(&run.records);
        let i2 = Integrals::from_records(&r2.records);
        assert!(i2.reachable < i1.reachable);
    }

    #[test]
    fn optimizer_respects_min_share() {
        let original = mixed_program();
        let run = profile(&original, &[], VmConfig::profiling()).unwrap();
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let mut revised = original.clone();
        let outcome = optimize(
            &mut revised,
            &run,
            &report,
            OptimizerOptions {
                min_drag_share: 1.1, // impossible share → nothing visited
                ..OptimizerOptions::default()
            },
        );
        assert!(outcome.applied.is_empty());
        assert!(outcome.attempts.is_empty());
    }

    #[test]
    fn attempts_carry_the_stable_taxonomy() {
        let original = mixed_program();
        let run = profile(&original, &[], VmConfig::profiling()).unwrap();
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let mut revised = original.clone();
        let outcome = optimize(&mut revised, &run, &report, OptimizerOptions::default());

        // Every applied transform's site has an `applied` attempt, every
        // refused-only site a non-applied one.
        assert_eq!(
            outcome
                .attempts
                .iter()
                .filter(|a| a.outcome == RewriteOutcome::Applied)
                .count(),
            outcome.applied.len(),
            "attempts: {:?}",
            outcome.attempts
        );
        for a in &outcome.attempts {
            // The string forms are a stable contract.
            assert!(matches!(
                a.outcome.as_str(),
                "applied" | "rejected-by-analysis" | "rejected-by-verify" | "no-op"
            ));
            assert!(!a.detail.is_empty(), "attempt lacks detail: {a:?}");
        }
    }

    #[test]
    fn per_site_steps_compose_to_the_whole_report_walk() {
        let original = mixed_program();
        let run = profile(&original, &[], VmConfig::profiling()).unwrap();
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));

        let mut whole = original.clone();
        let expected = optimize(&mut whole, &run, &report, OptimizerOptions::default());

        let options = OptimizerOptions::default();
        let mut stepped = original.clone();
        let mut state = OptimizeState::default();
        let mut got = OptimizationOutcome::default();
        let total = report.total_drag().max(1);
        for entry in report.by_nested_site.iter().take(options.max_sites) {
            if (entry.stats.drag as f64 / total as f64) < options.min_drag_share {
                break;
            }
            if run.sites.innermost(entry.site).is_none() {
                continue;
            }
            let step = optimize_site(&mut stepped, &run, entry, None, &mut state);
            got.applied.extend(step.applied);
            got.refused.extend(step.refused);
            got.attempts.push(step.attempt);
        }
        assert_eq!(expected, got);
    }
}
