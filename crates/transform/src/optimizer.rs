//! The profile-guided optimizer: §3.4's "putting it all together", run
//! mechanically. Given a drag profile, walk the allocation sites from
//! largest drag down and apply the transformation the site's lifetime
//! pattern suggests, with every safety check of the static analyses.

use std::collections::HashSet;

use heapdrag_core::analyzer::DragReport;
use heapdrag_core::pattern::{LifetimePattern, TransformKind};
use heapdrag_core::profiler::ProfileRun;
use heapdrag_vm::ids::{ChainId, MethodId};
use heapdrag_vm::program::Program;

use crate::assign_null::assign_null_method;
use crate::dead_code::{remove_dead_allocation, DeadCodeContext};
use crate::lazy_alloc::{apply_lazy_allocation, find_lazy_candidates};

/// Tuning for the optimizer's site walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerOptions {
    /// Ignore sites contributing less than this share of the total drag.
    pub min_drag_share: f64,
    /// Visit at most this many sites.
    pub max_sites: usize,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            min_drag_share: 0.01,
            max_sites: 25,
        }
    }
}

/// One transformation the optimizer performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedTransform {
    /// The profiled site that motivated the rewrite.
    pub site: ChainId,
    /// Which of the three rewritings ran.
    pub kind: TransformKind,
    /// Human-readable description of what was changed.
    pub detail: String,
}

/// The optimizer's report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizationOutcome {
    /// Transformations applied, in site-drag order.
    pub applied: Vec<AppliedTransform>,
    /// Sites visited whose suggested rewriting was refused by a safety
    /// check (site, reason).
    pub refused: Vec<(ChainId, String)>,
}

fn assign_null_chain(
    program: &mut Program,
    run: &ProfileRun,
    site: ChainId,
    nulled: &mut HashSet<MethodId>,
    shifted: &mut HashSet<MethodId>,
) -> usize {
    let mut inserted = 0usize;
    for s in run.sites.chain(site) {
        let m = run.sites.site(*s).method;
        if nulled.contains(&m) || shifted.contains(&m) {
            continue;
        }
        if let Ok(n) = assign_null_method(program, m) {
            inserted += n;
            if n > 0 {
                // Insertions shift pcs; stale profiled pcs in this method
                // must not be rewritten further this round.
                shifted.insert(m);
            }
        }
        nulled.insert(m);
    }
    inserted
}

/// Rewrites `program` in place, guided by `run`/`report`.
///
/// The program must be the one that produced the profile (site pcs are
/// looked up in it). After the call the program is relinked by the caller
/// via [`Program::link`] — the transforms keep jump targets consistent, so
/// this is just a revalidation.
pub fn optimize(
    program: &mut Program,
    run: &ProfileRun,
    report: &DragReport,
    options: OptimizerOptions,
) -> OptimizationOutcome {
    let mut outcome = OptimizationOutcome::default();
    let total_drag = report.total_drag().max(1);
    let mut nulled_methods: HashSet<MethodId> = HashSet::new();
    // Dead-code removal and lazy allocation both shift pcs; since profiled
    // pcs refer to the original program, apply at most one pc-shifting
    // transform per method, then stop touching that method.
    let mut shifted_methods: HashSet<MethodId> = HashSet::new();

    for entry in report.by_nested_site.iter().take(options.max_sites) {
        let share = entry.stats.drag as f64 / total_drag as f64;
        if share < options.min_drag_share {
            break;
        }
        let Some(site_id) = run.sites.innermost(entry.site) else {
            continue;
        };
        let info = run.sites.site(site_id);
        let (method, pc) = (info.method, info.pc);

        match entry.stats.pattern.suggested_transform() {
            TransformKind::DeadCodeRemoval => {
                if shifted_methods.contains(&method) {
                    outcome
                        .refused
                        .push((entry.site, "method already rewritten this round".into()));
                    continue;
                }
                let ctx = DeadCodeContext::build(program);
                match remove_dead_allocation(program, &ctx, method, pc) {
                    Ok(r) => {
                        shifted_methods.insert(method);
                        outcome.applied.push(AppliedTransform {
                            site: entry.site,
                            kind: TransformKind::DeadCodeRemoval,
                            detail: format!(
                                "removed allocation at {}@{}{}",
                                program.method_name(method),
                                r.pc,
                                match r.ctor_call {
                                    Some(c) => format!(" (+ constructor call at {c})"),
                                    None => String::new(),
                                }
                            ),
                        });
                    }
                    Err(e) => {
                        outcome.refused.push((entry.site, e.to_string()));
                        // Fall back to the always-safe rewrite.
                        let n = assign_null_chain(
                            program,
                            run,
                            entry.site,
                            &mut nulled_methods,
                            &mut shifted_methods,
                        );
                        if n > 0 {
                            outcome.applied.push(AppliedTransform {
                                site: entry.site,
                                kind: TransformKind::AssignNull,
                                detail: format!(
                                    "fallback: inserted {n} null store(s) on the call chain"
                                ),
                            });
                        }
                    }
                }
            }
            TransformKind::LazyAllocation => {
                if shifted_methods.contains(&method) {
                    outcome
                        .refused
                        .push((entry.site, "method already rewritten this round".into()));
                    continue;
                }
                let callgraph = heapdrag_analysis::CallGraph::build(program);
                let purity = heapdrag_analysis::Purity::build(program, &callgraph);
                // §3.4's anchor walk: the innermost frame is usually inside
                // library code (e.g. the array allocation in Vector.init);
                // walk the chain outwards to the first frame holding a
                // rewritable constructor shape around its call site.
                let candidate = run
                    .sites
                    .chain(entry.site)
                    .iter()
                    .filter(|s| !shifted_methods.contains(&run.sites.site(**s).method))
                    .find_map(|s| {
                        let info = run.sites.site(*s);
                        find_lazy_candidates(program, &purity, info.method)
                            .into_iter()
                            .find(|c| c.alloc_pc <= info.pc && info.pc <= c.store_pc)
                    });
                match candidate.as_ref() {
                    Some(c) => match apply_lazy_allocation(program, c) {
                        Ok(applied) => {
                            shifted_methods.insert(method);
                            shifted_methods.insert(c.ctor);
                            for g in &applied.guards {
                                shifted_methods.insert(g.method);
                            }
                            outcome.applied.push(AppliedTransform {
                                site: entry.site,
                                kind: TransformKind::LazyAllocation,
                                detail: format!(
                                    "delayed allocation of field slot {} of {} ({} guard(s))",
                                    c.slot,
                                    program.classes[c.class.index()].name,
                                    applied.guards.len()
                                ),
                            });
                        }
                        Err(e) => outcome.refused.push((entry.site, e.to_string())),
                    },
                    None => outcome.refused.push((
                        entry.site,
                        "no lazy-allocation candidate at this site".into(),
                    )),
                }
            }
            TransformKind::AssignNull => {
                // Null dead references in every method on the call chain —
                // the §3.4 anchor walk.
                let inserted = assign_null_chain(
                    program,
                    run,
                    entry.site,
                    &mut nulled_methods,
                    &mut shifted_methods,
                );
                if inserted > 0 {
                    outcome.applied.push(AppliedTransform {
                        site: entry.site,
                        kind: TransformKind::AssignNull,
                        detail: format!("inserted {inserted} null store(s) on the call chain"),
                    });
                } else {
                    outcome
                        .refused
                        .push((entry.site, "no dead reference locals found".into()));
                }
            }
            TransformKind::NoTransformation => {
                outcome.refused.push((
                    entry.site,
                    format!("pattern `{}` suggests no rewrite", entry.stats.pattern),
                ));
            }
        }
    }
    let _ = LifetimePattern::Mixed; // referenced for doc-link stability
    outcome
}

/// Runs profile → optimize → re-profile cycles, as §3.2 describes
/// ("sometimes, the results revealed more opportunities for drag
/// reduction; in that case, another cycle of code rewriting and applying
/// the tool took place"). Re-profiling also refreshes site pcs after
/// pc-shifting rewrites. Stops early when a round applies nothing.
///
/// # Errors
///
/// Propagates VM errors from profiling runs.
pub fn optimize_iteratively(
    program: &mut Program,
    input: &[i64],
    config: heapdrag_vm::interp::VmConfig,
    options: OptimizerOptions,
    max_rounds: usize,
) -> Result<OptimizationOutcome, heapdrag_vm::error::VmError> {
    use heapdrag_core::analyzer::DragAnalyzer;
    let mut combined = OptimizationOutcome::default();
    for _ in 0..max_rounds {
        let run = heapdrag_core::profiler::profile(program, input, config.clone())?;
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let outcome = optimize(program, &run, &report, options);
        program.link().expect("transforms keep the program well-formed");
        let progressed = !outcome.applied.is_empty();
        combined.applied.extend(outcome.applied);
        combined.refused.extend(outcome.refused);
        if !progressed {
            break;
        }
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, DragAnalyzer, Integrals, VmConfig};
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::interp::Vm;

    /// One program exhibiting all three patterns at different sites.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("Obj").field("f", Visibility::Private).finish();
        let filler = b.declare_method("filler", None, true, 0, 1);
        {
            let mut m = b.begin_body(filler);
            m.push_int(0).store(0);
            m.label("loop");
            m.load(0).push_int(300).cmpge().branch("done");
            m.push_int(32).new_array().pop();
            m.load(0).push_int(1).add().store(0);
            m.jump("loop");
            m.label("done").ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            // Site A: never-used objects (dead-code removal).
            m.push_int(0).store(2);
            m.label("never_loop");
            m.load(2).push_int(40).cmpge().branch("never_done");
            m.mark("site A: never used").new_obj(c).store(1);
            m.push_null().store(1);
            m.load(2).push_int(1).add().store(2);
            m.jump("never_loop");
            m.label("never_done");
            // Site B: big array genuinely *read* across some allocation
            // (so its in-use span is visible on the byte clock), then
            // dragged. The read matters: a write-only buffer would be
            // plain dead code to the indirect-usage analysis.
            m.push_int(3000).mark("site B: dragged buffer").new_array().store(1);
            m.load(1).push_int(0).push_int(3).astore();
            m.push_int(64).new_array().pop(); // clock advances between uses
            m.load(1).push_int(0).aload().pop(); // last use: a *read*
            m.call(filler);
            m.push_int(17).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn optimizer_applies_pattern_appropriate_transforms() {
        let original = mixed_program();
        let run = profile(&original, &[], VmConfig::profiling()).unwrap();
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let mut revised = original.clone();
        let outcome = optimize(&mut revised, &run, &report, OptimizerOptions::default());
        revised.link().unwrap();

        let kinds: Vec<TransformKind> = outcome.applied.iter().map(|a| a.kind).collect();
        assert!(
            kinds.contains(&TransformKind::AssignNull),
            "dragged buffer wants assign-null; applied: {:?}, refused: {:?}",
            outcome.applied,
            outcome.refused
        );
        assert!(
            kinds.contains(&TransformKind::DeadCodeRemoval),
            "never-used site wants removal; applied: {:?}, refused: {:?}",
            outcome.applied,
            outcome.refused
        );

        // Behaviour preserved, space saved.
        let o1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(o1.output, o2.output);
        let r2 = profile(&revised, &[], VmConfig::profiling()).unwrap();
        let i1 = Integrals::from_records(&run.records);
        let i2 = Integrals::from_records(&r2.records);
        assert!(i2.reachable < i1.reachable);
    }

    #[test]
    fn optimizer_respects_min_share() {
        let original = mixed_program();
        let run = profile(&original, &[], VmConfig::profiling()).unwrap();
        let report = DragAnalyzer::new().analyze(&run.records, |ch| run.sites.innermost(ch));
        let mut revised = original.clone();
        let outcome = optimize(
            &mut revised,
            &run,
            &report,
            OptimizerOptions {
                min_drag_share: 1.1, // impossible share → nothing visited
                max_sites: 10,
            },
        );
        assert!(outcome.applied.is_empty());
    }
}
