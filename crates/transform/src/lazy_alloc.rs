//! The *lazy allocation* rewriting (§3.3.3), mechanized: an allocation
//! stored into a field by a constructor is removed from the constructor
//! (the field starts null) and re-created by a guard inserted before every
//! possible first use — §5.1's minimal code insertion.
//!
//! ```
//! use heapdrag_transform::{check_equivalence, lazy_allocate_program, Equivalence};
//! use heapdrag_vm::class::Visibility;
//! use heapdrag_vm::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The jack shape: a constructor eagerly builds a table that is only
//! // read when the input demands it.
//! let mut b = ProgramBuilder::new();
//! let table = b.begin_class("Table").field("n", Visibility::Private).finish();
//! let table_init = b.declare_method("init", Some(table), false, 1, 1);
//! {
//!     let mut m = b.begin_body(table_init);
//!     m.load(0).push_int(1).putfield(0);
//!     m.ret();
//!     m.finish();
//! }
//! let parser = b.begin_class("Parser").field("table", Visibility::Package).finish();
//! let parser_init = b.declare_method("init", Some(parser), false, 1, 1);
//! {
//!     let mut m = b.begin_body(parser_init);
//!     m.load(0);
//!     m.new_obj(table).dup().call(table_init); // eager: made lazy below
//!     m.putfield_named(parser, "table");
//!     m.ret();
//!     m.finish();
//! }
//! let lookup = b.declare_method("lookup", Some(parser), false, 1, 1);
//! {
//!     let mut m = b.begin_body(lookup);
//!     m.load(0).getfield_named(parser, "table");
//!     m.getfield_named(table, "n");
//!     m.ret_val();
//!     m.finish();
//! }
//! let main = b.declare_method("main", None, true, 1, 2);
//! {
//!     let mut m = b.begin_body(main);
//!     m.new_obj(parser).dup().store(1).call(parser_init);
//!     m.load(0).push_int(0).aload().branch("use_it");
//!     m.push_int(0).print();
//!     m.jump("end");
//!     m.label("use_it");
//!     m.load(1).call_virtual("lookup", 0).print();
//!     m.label("end");
//!     m.ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let original = b.finish()?;
//!
//! let mut revised = original.clone();
//! let applied = lazy_allocate_program(&mut revised);
//! assert_eq!(applied.len(), 1, "the eager table is now guard-allocated");
//! revised.link()?;
//!
//! // Output preserved whether the table is demanded or not.
//! let verdict = check_equivalence(&original, &revised, &[vec![0], vec![1]])?;
//! assert_eq!(verdict, Equivalence::Same);
//! # Ok(())
//! # }
//! ```

use heapdrag_analysis::callgraph::CallGraph;
use heapdrag_analysis::lazy_points::{
    field_read_sites, minimize_guard_sites, reads_fully_resolved, FieldReadSite,
};
use heapdrag_analysis::provenance::{infer_provenance, Prov};
use heapdrag_analysis::purity::Purity;
use heapdrag_vm::code_edit::{insert_at, replace_at};
use heapdrag_vm::ids::{ClassId, MethodId};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::error::TransformError;

/// An eager field initialisation that can be made lazy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LazyCandidate {
    /// The constructor performing the eager allocation.
    pub ctor: MethodId,
    /// The class whose field is initialised.
    pub class: ClassId,
    /// Layout slot of the field.
    pub slot: u16,
    /// pc of the allocation inside the constructor.
    pub alloc_pc: u32,
    /// pc of the `putfield` storing it.
    pub store_pc: u32,
    /// Constructor call on the allocated object, if any.
    pub init_call: Option<(u32, MethodId)>,
    /// Parameter count of the constructor call (for neutralisation).
    pub init_params: usize,
    /// The instructions a guard must replay to allocate lazily.
    pub replay: Vec<Insn>,
}

/// Finds candidates in `ctor`: shapes of the form
/// `load 0; new C2 [; dup; push consts…; call C2.init]; putfield slot` or
/// `load 0; push k; newarray; putfield slot`, where any `init` is
/// removable per [`Purity`], reads no statics, and — matching the paper's
/// "no parameters or parameters that are constant" condition — takes only
/// integer constants pushed directly before the call.
pub fn find_lazy_candidates(
    program: &Program,
    purity: &Purity,
    ctor: MethodId,
) -> Vec<LazyCandidate> {
    let method = &program.methods[ctor.index()];
    let Some(class) = method.class else {
        return Vec::new();
    };
    if method.is_static {
        return Vec::new();
    }
    let Some(prov) = infer_provenance(program, ctor) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (pc, insn) in method.code.iter().enumerate() {
        let pc = pc as u32;
        let Insn::PutField(slot) = insn else { continue };
        if !prov.analyzed(pc) || prov.stack(pc, 1) != Prov::This {
            continue;
        }
        let Prov::Alloc(alloc_pc) = prov.stack(pc, 0) else {
            continue;
        };
        // Reconstruct the replay sequence and check the ctor call.
        let (replay_alloc, mut replay) = match method.code[alloc_pc as usize] {
            Insn::New(c2) => (true, vec![Insn::New(c2)]),
            Insn::NewArray => {
                // Need a constant length immediately before.
                match method.code.get(alloc_pc as usize - 1) {
                    Some(Insn::PushInt(k)) if alloc_pc > 0 => {
                        (true, vec![Insn::PushInt(*k), Insn::NewArray])
                    }
                    _ => (false, Vec::new()),
                }
            }
            _ => (false, Vec::new()),
        };
        if !replay_alloc {
            continue;
        }
        // Find a ctor call on the allocation between alloc and store.
        let mut init_call = None;
        let mut init_params = 0usize;
        let mut init_consts: Vec<i64> = Vec::new();
        let mut blocked = false;
        for cpc in alloc_pc + 1..pc {
            if let Insn::Call(target) = method.code[cpc as usize] {
                let callee = &program.methods[target.index()];
                let p = callee.num_params as usize;
                if !callee.is_static
                    && p >= 1
                    && prov.analyzed(cpc)
                    && prov.stack(cpc, p - 1) == Prov::Alloc(alloc_pc)
                {
                    if init_call.is_some() {
                        blocked = true; // repeated init: out of scope
                        continue;
                    }
                    // Non-receiver arguments must be integer constants
                    // pushed immediately before the call.
                    let nargs = p - 1;
                    let mut consts = Vec::with_capacity(nargs);
                    let args_ok = (cpc as usize) >= nargs
                        && (0..nargs).all(|k| {
                            match method.code[cpc as usize - nargs + k] {
                                Insn::PushInt(v) => {
                                    consts.push(v);
                                    true
                                }
                                _ => false,
                            }
                        });
                    // Delaying must not change what the ctor observes: it
                    // must be removable (no external effects) and must not
                    // read statics; constant params are fine.
                    let summary = purity.summary(target);
                    let pure_enough =
                        purity.is_removable_constructor(target) && !summary.reads_statics;
                    if args_ok && pure_enough {
                        init_call = Some((cpc, target));
                        init_params = p;
                        init_consts = consts;
                    } else {
                        blocked = true;
                    }
                }
            }
        }
        // Strict shape check: between the allocation and the store,
        // nothing but the recognised constructor call (and harmless
        // stack traffic) may *consume* the allocation — e.g. a helper
        // call taking the fresh object as an argument would be orphaned
        // by the rewrite and crash on the null left behind.
        for cpc in alloc_pc + 1..pc {
            if !prov.analyzed(cpc) {
                continue;
            }
            if matches!(init_call, Some((ic, _)) if ic == cpc) {
                continue; // the recognised constructor
            }
            let insn2 = method.code[cpc as usize];
            if matches!(insn2, Insn::Dup | Insn::Store(_) | Insn::Load(_)) {
                continue; // moves the reference without consuming it
            }
            let consumed = consumed_operands(program, &insn2);
            if (0..consumed).any(|d| prov.stack(cpc, d) == Prov::Alloc(alloc_pc)) {
                blocked = true;
                break;
            }
        }
        if blocked {
            continue;
        }
        if let Some((_, target)) = init_call {
            replay.push(Insn::Dup);
            for v in &init_consts {
                replay.push(Insn::PushInt(*v));
            }
            replay.push(Insn::Call(target));
        }
        out.push(LazyCandidate {
            ctor,
            class,
            slot: *slot,
            alloc_pc,
            store_pc: pc,
            init_call,
            init_params,
            replay,
        });
    }
    out
}

/// A performed lazy-allocation rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedLazyAllocation {
    /// The candidate that was applied.
    pub candidate: LazyCandidate,
    /// Guards inserted, one per possible first use.
    pub guards: Vec<FieldReadSite>,
}

/// Applies the rewrite for `candidate`:
///
/// 1. the constructor's allocation becomes `pushnull` (the field starts
///    null; its `init` call is neutralised), and
/// 2. before every `getfield` of the slot on a compatible receiver, a
///    guard `dup; getfield; brnonnull skip; dup; <replay…>; putfield;
///    skip:` allocates on first use.
///
/// # Errors
///
/// * [`TransformError::UnresolvedFieldRead`] when some read's receiver
///   cannot be typed (guards could miss a first use).
pub fn apply_lazy_allocation(
    program: &mut Program,
    candidate: &LazyCandidate,
) -> Result<AppliedLazyAllocation, TransformError> {
    let callgraph = CallGraph::build(program);
    let sites = field_read_sites(program, &callgraph, candidate.class, candidate.slot);
    if !reads_fully_resolved(&sites) {
        let bad = sites.iter().find(|s| !s.receiver_known).expect("unresolved");
        return Err(TransformError::UnresolvedFieldRead {
            method: bad.method,
            pc: bad.pc,
        });
    }

    // §5.1 minimal code insertion: drop guards dominated by another guard
    // on the same receiver.
    let sites = minimize_guard_sites(program, &sites);

    // 2. Insert guards, per method, descending pc.
    let mut by_method: Vec<FieldReadSite> = sites.clone();
    by_method.sort_by_key(|s| std::cmp::Reverse((s.method, s.pc)));
    for site in &by_method {
        // Skip the constructor's own store path — the getfields we guard
        // are reads; the ctor has none for this slot (its putfield is not
        // a read site).
        let guard = build_guard(candidate, site.pc);
        insert_at(&mut program.methods[site.method.index()], site.pc, &guard);
        program.methods[site.method.index()]
            .site_labels
            .entry(site.pc + guard_alloc_offset(candidate))
            .or_insert_with(|| "lazy allocation".to_string());
    }

    // 1. Neutralise the eager allocation in the ctor (descending pc).
    {
        let m = &mut program.methods[candidate.ctor.index()];
        if let Some((cpc, _)) = candidate.init_call {
            replace_at(m, cpc, Insn::Pop);
            if candidate.init_params > 1 {
                insert_at(m, cpc, &vec![Insn::Pop; candidate.init_params - 1]);
            }
        }
        match m.code[candidate.alloc_pc as usize] {
            Insn::New(_) => replace_at(m, candidate.alloc_pc, Insn::PushNull),
            Insn::NewArray => {
                replace_at(m, candidate.alloc_pc, Insn::Nop);
                replace_at(m, candidate.alloc_pc - 1, Insn::PushNull);
            }
            _ => {
                return Err(TransformError::UnexpectedShape {
                    method: candidate.ctor,
                    pc: candidate.alloc_pc,
                    expected: "the candidate allocation",
                })
            }
        }
    }

    Ok(AppliedLazyAllocation {
        candidate: candidate.clone(),
        guards: sites,
    })
}

/// Offset of the allocation inside the guard sequence (for site labels).
fn guard_alloc_offset(candidate: &LazyCandidate) -> u32 {
    // dup; getfield; brnonnull; dup; <replay...>
    4 + if matches!(candidate.replay.first(), Some(Insn::PushInt(_))) {
        1
    } else {
        0
    }
}

/// Builds the guard inserted before the `getfield` at (new) pc `at`.
///
/// Stack discipline (receiver on top on entry):
/// `[r]` → dup `[r,r]` → getfield `[r,f]` → brnonnull skip `[r]` →
/// dup `[r,r]` → replay `[r,r,obj]` → putfield `[r]` → skip: `[r]`.
fn build_guard(candidate: &LazyCandidate, at: u32) -> Vec<Insn> {
    // Guard layout (absolute pcs after insertion at `at`):
    //   at+0 dup
    //   at+1 getfield
    //   at+2 brnonnull -> skip
    //   at+3 dup
    //   at+4 .. at+3+replay_len     replay
    //   at+4+replay_len             putfield
    //   skip = at + 5 + replay_len  — the original getfield.
    let replay_len = candidate.replay.len() as u32;
    let skip = at + 5 + replay_len;
    let mut guard = vec![
        Insn::Dup,
        Insn::GetField(candidate.slot),
        Insn::BranchIfNotNull(skip),
        Insn::Dup,
    ];
    guard.extend_from_slice(&candidate.replay);
    guard.push(Insn::PutField(candidate.slot));
    debug_assert_eq!(guard.len() as u32, 5 + replay_len);
    guard
}

/// Number of operand-stack slots `insn` consumes (conservatively large
/// for calls, which consume their whole argument list).
fn consumed_operands(program: &Program, insn: &Insn) -> usize {
    match insn {
        Insn::Pop | Insn::Neg | Insn::Branch(_) | Insn::BranchIfNull(_)
        | Insn::BranchIfNotNull(_) | Insn::GetField(_) | Insn::ArrayLen
        | Insn::InstanceOf(_) | Insn::PutStatic(_) | Insn::RetVal | Insn::Throw
        | Insn::Print | Insn::MonitorEnter | Insn::MonitorExit | Insn::NewArray => 1,
        Insn::Swap | Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Rem
        | Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt
        | Insn::CmpGe | Insn::PutField(_) | Insn::ALoad => 2,
        Insn::AStore => 3,
        Insn::Call(target) => program.methods[target.index()].num_params as usize,
        Insn::CallVirtual { argc, .. } => *argc as usize + 1,
        _ => 0,
    }
}

/// Finds and applies every lazy-allocation candidate in the program whose
/// guards can be placed soundly. Returns the applied rewrites.
pub fn lazy_allocate_program(program: &mut Program) -> Vec<AppliedLazyAllocation> {
    let callgraph = CallGraph::build(program);
    let purity = Purity::build(program, &callgraph);
    let mut candidates = Vec::new();
    for mid in 0..program.methods.len() as u32 {
        candidates.extend(find_lazy_candidates(program, &purity, MethodId(mid)));
    }
    let mut applied = Vec::new();
    for c in candidates {
        if let Ok(a) = apply_lazy_allocation(program, &c) {
            applied.push(a);
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, VmConfig};
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::interp::Vm;

    /// The jack shape: the constructor eagerly allocates a table that is
    /// used only when the input demands it (here: input[0] != 0).
    fn jack_like() -> Program {
        let mut b = ProgramBuilder::new();
        let table = b
            .begin_class("pkg.Table")
            .field("n", Visibility::Private)
            .finish();
        let table_init = b.declare_method("init", Some(table), false, 1, 1);
        {
            let mut m = b.begin_body(table_init);
            m.load(0).push_int(1).putfield(0);
            m.ret();
            m.finish();
        }
        let parser = b
            .begin_class("pkg.Parser")
            .field("table", Visibility::Package)
            .finish();
        let parser_init = b.declare_method("init", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(parser_init);
            m.load(0);
            m.mark("eager table").new_obj(table).dup().call(table_init);
            m.putfield_named(parser, "table");
            m.ret();
            m.finish();
        }
        let lookup = b.declare_method("lookup", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(lookup);
            m.load(0).getfield_named(parser, "table");
            m.getfield_named(table, "n");
            m.ret_val();
            m.finish();
        }
        let filler = b.declare_method("filler", None, true, 0, 1);
        {
            let mut m = b.begin_body(filler);
            m.push_int(0).store(0);
            m.label("loop");
            m.load(0).push_int(100).cmpge().branch("done");
            m.push_int(16).new_array().pop();
            m.load(0).push_int(1).add().store(0);
            m.jump("loop");
            m.label("done").ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(parser).dup().store(1).call(parser_init);
            m.call(filler);
            m.load(0).push_int(0).aload().branch("use_it");
            m.push_int(0).print();
            m.jump("end");
            m.label("use_it");
            m.load(1).call_virtual("lookup", 0).print();
            m.label("end");
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    fn lazy_transformed() -> (Program, Program, Vec<AppliedLazyAllocation>) {
        let original = jack_like();
        let mut revised = original.clone();
        let applied = lazy_allocate_program(&mut revised);
        revised.link().expect("revised program links");
        (original, revised, applied)
    }

    #[test]
    fn candidate_found_and_applied() {
        let (_, _, applied) = lazy_transformed();
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].guards.len(), 1, "one read site in lookup");
        assert!(applied[0].candidate.init_call.is_some());
    }

    #[test]
    fn behaviour_preserved_on_both_paths() {
        let (original, revised, _) = lazy_transformed();
        for input in [vec![0], vec![1]] {
            let o1 = Vm::new(&original, VmConfig::default()).run(&input).unwrap();
            let o2 = Vm::new(&revised, VmConfig::default()).run(&input).unwrap();
            assert_eq!(o1.output, o2.output, "input {input:?}");
        }
    }

    #[test]
    fn unused_path_allocates_less() {
        let (original, revised, _) = lazy_transformed();
        let o1 = Vm::new(&original, VmConfig::default()).run(&[0]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[0]).unwrap();
        assert!(
            o2.heap.allocated_bytes < o1.heap.allocated_bytes,
            "table never allocated when never used"
        );
        // When the table IS used, exactly one allocation happens lazily.
        let o3 = Vm::new(&original, VmConfig::default()).run(&[1]).unwrap();
        let o4 = Vm::new(&revised, VmConfig::default()).run(&[1]).unwrap();
        assert_eq!(o3.heap.allocated_objects, o4.heap.allocated_objects);
    }

    #[test]
    fn drag_reduced_on_unused_path() {
        let (original, revised, _) = lazy_transformed();
        let r1 = profile(&original, &[0], VmConfig::profiling()).unwrap();
        let r2 = profile(&revised, &[0], VmConfig::profiling()).unwrap();
        let i1 = Integrals::from_records(&r1.records);
        let i2 = Integrals::from_records(&r2.records);
        assert!(i2.reachable < i1.reachable);
    }

    #[test]
    fn guard_allocates_exactly_once() {
        // Call lookup twice; the lazy table must be allocated only once.
        let mut b = ProgramBuilder::new();
        let table = b.begin_class("T").field("n", Visibility::Private).finish();
        let holder = b
            .begin_class("H")
            .field("t", Visibility::Private)
            .finish();
        let h_init = b.declare_method("init", Some(holder), false, 1, 1);
        {
            let mut m = b.begin_body(h_init);
            m.load(0).new_obj(table).putfield_named(holder, "t");
            m.ret();
            m.finish();
        }
        let get = b.declare_method("get", Some(holder), false, 1, 1);
        {
            let mut m = b.begin_body(get);
            m.load(0).getfield_named(holder, "t");
            m.instance_of(table);
            m.ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(holder).dup().store(1).call(h_init);
            m.load(1).call_virtual("get", 0).print();
            m.load(1).call_virtual("get", 0).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let original = b.finish().unwrap();
        let mut revised = original.clone();
        let applied = lazy_allocate_program(&mut revised);
        assert_eq!(applied.len(), 1);
        revised.link().unwrap();
        let o1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(o1.output, o2.output);
        assert_eq!(o1.output, vec![1, 1]);
        assert_eq!(
            o1.heap.allocated_objects, o2.heap.allocated_objects,
            "allocated once, lazily"
        );
    }

    #[test]
    fn impure_init_blocks_candidate() {
        let mut b = ProgramBuilder::new();
        let table = b.begin_class("T").field("n", Visibility::Private).finish();
        let loud_init = b.declare_method("init", Some(table), false, 1, 1);
        {
            let mut m = b.begin_body(loud_init);
            m.push_int(7).print(); // observable effect: cannot delay
            m.ret();
            m.finish();
        }
        let holder = b.begin_class("H").field("t", Visibility::Private).finish();
        let h_init = b.declare_method("hinit", Some(holder), false, 1, 1);
        {
            let mut m = b.begin_body(h_init);
            m.load(0).new_obj(table).dup().call(loud_init);
            m.putfield_named(holder, "t");
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(holder).dup().store(1).call(h_init);
            m.load(1).getfield_named(holder, "t").pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let mut p = b.finish().unwrap();
        let applied = lazy_allocate_program(&mut p);
        assert!(applied.is_empty(), "printing ctor must not be delayed");
    }

    #[test]
    fn lazy_array_field() {
        let mut b = ProgramBuilder::new();
        let holder = b.begin_class("H").field("buf", Visibility::Private).finish();
        let h_init = b.declare_method("init", Some(holder), false, 1, 1);
        {
            let mut m = b.begin_body(h_init);
            m.load(0).push_int(500).new_array().putfield_named(holder, "buf");
            m.ret();
            m.finish();
        }
        let touch = b.declare_method("touch", Some(holder), false, 1, 1);
        {
            let mut m = b.begin_body(touch);
            m.load(0).getfield_named(holder, "buf").array_len().ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(holder).dup().store(1).call(h_init);
            m.load(0).push_int(0).aload().branch("touch_it");
            m.push_int(-1).print();
            m.jump("end");
            m.label("touch_it");
            m.load(1).call_virtual("touch", 0).print();
            m.label("end");
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let original = b.finish().unwrap();
        let mut revised = original.clone();
        let applied = lazy_allocate_program(&mut revised);
        assert_eq!(applied.len(), 1);
        revised.link().unwrap();
        for input in [vec![0], vec![1]] {
            let o1 = Vm::new(&original, VmConfig::default()).run(&input).unwrap();
            let o2 = Vm::new(&revised, VmConfig::default()).run(&input).unwrap();
            assert_eq!(o1.output, o2.output);
        }
        let o1 = Vm::new(&original, VmConfig::default()).run(&[0]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[0]).unwrap();
        assert!(o2.heap.allocated_bytes < o1.heap.allocated_bytes);
    }
}

#[cfg(test)]
mod consumer_scan_tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::interp::{Vm, VmConfig};

    /// Regression: a helper call consuming the fresh allocation between
    /// the `new` and the `putfield` (the shape the mini-Java front end
    /// emits for `this.f = new int[n]`, whose `__zero_fill(arr)` call
    /// would be orphaned by the rewrite and crash on null).
    #[test]
    fn helper_consumer_blocks_the_candidate() {
        let mut b = ProgramBuilder::new();
        let fill = b.declare_method("fill", None, true, 1, 2);
        {
            let mut m = b.begin_body(fill);
            m.load(0).push_int(0).push_int(1).astore();
            m.ret();
            m.finish();
        }
        let holder = b.begin_class("H").field("buf", Visibility::Private).finish();
        let h_init = b.declare_method("init", Some(holder), false, 1, 2);
        {
            let mut m = b.begin_body(h_init);
            m.load(0);
            m.push_int(100).new_array();
            m.dup().call(fill); // the consumer that must block laziness
            m.putfield_named(holder, "buf");
            m.ret();
            m.finish();
        }
        let get = b.declare_method("get", Some(holder), false, 1, 1);
        {
            let mut m = b.begin_body(get);
            m.load(0).getfield_named(holder, "buf").push_int(0).aload().ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(holder).dup().store(1).call(h_init);
            m.load(1).call_virtual("get", 0).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let original = b.finish().unwrap();
        let mut revised = original.clone();
        let applied = lazy_allocate_program(&mut revised);
        assert!(
            applied.is_empty(),
            "consumer between alloc and store must block: {applied:?}"
        );
        // Whatever happened, behaviour must be identical and crash-free.
        revised.link().unwrap();
        let o1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(o1.output, o2.output);
        assert_eq!(o1.output, vec![1]);
    }

}
