//! # heapdrag-transform
//!
//! The three space-saving program transformations of §3.3 of *Heap
//! Profiling for Space-Efficient Java*, mechanized on top of the
//! [`heapdrag-analysis`](heapdrag_analysis) safety checks — the paper's
//! §5 "future work" of replacing manual code rewriting by a compiler:
//!
//! * [`assign_null`] — insert `pushnull; store` at the death frontier of
//!   every reference local (liveness analysis);
//! * [`dead_code`] — remove allocations whose objects are never used
//!   (indirect-usage analysis + constructor purity + exception analysis);
//! * [`lazy_alloc`] — delay constructor-time allocations to their first
//!   use behind null-check guards (minimal code insertion);
//! * [`optimizer`] — the profile-guided driver that walks a drag report
//!   and applies whichever rewrite the site's lifetime pattern suggests;
//! * [`verify`] — original-vs-revised output equivalence checking.
//!
//! ```
//! use heapdrag_transform::{assign_null_program, check_equivalence, Equivalence};
//! use heapdrag_vm::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let main = b.declare_method("main", None, true, 1, 2);
//! {
//!     let mut m = b.begin_body(main);
//!     m.push_int(500).new_array().store(1);
//!     m.load(1).push_int(0).push_int(9).astore();
//!     m.load(1).push_int(0).aload().print(); // last use of the buffer
//!     m.push_int(64).new_array().pop(); // the buffer drags across this
//!     m.ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let original = b.finish()?;
//!
//! // Mechanically insert `pushnull; store` at every death frontier…
//! let mut revised = original.clone();
//! let inserted = assign_null_program(&mut revised);
//! revised.link()?;
//! assert!(inserted > 0);
//!
//! // …and prove the rewrite changed nothing observable.
//! let verdict = check_equivalence(&original, &revised, &[vec![]])?;
//! assert_eq!(verdict, Equivalence::Same);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod assign_null;
pub mod dead_code;
pub mod error;
pub mod lazy_alloc;
pub mod optimizer;
pub mod verify;

pub use assign_null::{assign_null_method, assign_null_program, null_static_after};
pub use dead_code::{remove_all_dead_allocations, remove_dead_allocation, DeadCodeContext};
pub use error::TransformError;
pub use lazy_alloc::{apply_lazy_allocation, find_lazy_candidates, lazy_allocate_program};
pub use optimizer::{
    find_path_anchor, optimize, optimize_iteratively, optimize_site, AppliedTransform,
    OptimizationOutcome, OptimizeState, OptimizerOptions, PathAnchor, RewriteOutcome, SiteAttempt,
    SiteStep,
};
pub use verify::{check_equivalence, Equivalence};
