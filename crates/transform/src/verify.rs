//! Behavioural-equivalence checking of original vs. revised programs — the
//! paper "checked that the original and revised benchmarks produce
//! identical results on several inputs" (§3.2); so do we, mechanically.

use heapdrag_vm::error::VmError;
use heapdrag_vm::interp::{Vm, VmConfig};
use heapdrag_vm::program::Program;

/// The result of comparing two programs on one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Identical printed output.
    Same,
    /// Outputs diverged.
    Different {
        /// The input that exposed the difference.
        input: Vec<i64>,
        /// Output of the original program.
        original: Vec<i64>,
        /// Output of the revised program.
        revised: Vec<i64>,
    },
}

/// Runs both programs on every input and compares printed outputs.
///
/// # Errors
///
/// Propagates the first [`VmError`] from either program — a revised
/// program that crashes where the original didn't is a transformation bug
/// and surfaces here as an error rather than a silent mismatch.
pub fn check_equivalence(
    original: &Program,
    revised: &Program,
    inputs: &[Vec<i64>],
) -> Result<Equivalence, VmError> {
    for input in inputs {
        let o = Vm::new(original, VmConfig::default()).run(input)?;
        let r = Vm::new(revised, VmConfig::default()).run(input)?;
        if o.output != r.output {
            return Ok(Equivalence::Different {
                input: input.clone(),
                original: o.output,
                revised: r.output,
            });
        }
    }
    Ok(Equivalence::Same)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;

    fn echo_program(offset: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.load(0).push_int(0).aload().push_int(offset).add().print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn same_programs_are_equivalent() {
        let a = echo_program(1);
        let b = echo_program(1);
        let r = check_equivalence(&a, &b, &[vec![5], vec![9]]).unwrap();
        assert_eq!(r, Equivalence::Same);
    }

    #[test]
    fn divergence_reports_the_input() {
        let a = echo_program(1);
        let b = echo_program(2);
        let r = check_equivalence(&a, &b, &[vec![5]]).unwrap();
        match r {
            Equivalence::Different {
                input,
                original,
                revised,
            } => {
                assert_eq!(input, vec![5]);
                assert_eq!(original, vec![6]);
                assert_eq!(revised, vec![7]);
            }
            Equivalence::Same => panic!("must differ"),
        }
    }
}
