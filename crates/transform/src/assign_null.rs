//! The *assigning null* rewriting (§3.3.1), mechanized: insert
//! `pushnull; store l` at every death-frontier point found by the liveness
//! analysis, so dead local references stop rooting their objects.

use heapdrag_analysis::liveness::death_points;
use heapdrag_vm::code_edit::insert_at;
use heapdrag_vm::ids::{MethodId, StaticId};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::error::TransformError;

/// Inserts null stores at all death points of `method`; returns how many
/// stores were inserted.
///
/// # Errors
///
/// Returns [`TransformError::Analysis`] when type inference fails on the
/// method (the method is left untouched).
pub fn assign_null_method(program: &mut Program, method: MethodId) -> Result<usize, TransformError> {
    let mut points = death_points(program, method)?;
    // Insert from the back so earlier pcs stay valid; batch points sharing
    // one pc into a single insertion.
    points.sort_by(|a, b| b.pc.cmp(&a.pc).then(a.local.cmp(&b.local)));
    let mut inserted = 0;
    let mut i = 0;
    while i < points.len() {
        let pc = points[i].pc;
        let mut insns = Vec::new();
        while i < points.len() && points[i].pc == pc {
            insns.push(Insn::PushNull);
            insns.push(Insn::Store(points[i].local));
            i += 1;
        }
        insert_at(&mut program.methods[method.index()], pc, &insns);
        inserted += insns.len() / 2;
    }
    Ok(inserted)
}

/// The *assigning null* rewriting aimed at a **static** holder: inserts
/// `pushnull; putstatic target` immediately after `pc` in `method`,
/// releasing whatever the static was rooting from that point on.
///
/// This is the mechanical half of path-anchored assign-null: the caller
/// names the static (from a sampled retaining path) and the insertion
/// point (the profile's dominant last-use pc). Unlike
/// [`assign_null_method`], nothing here is proven safe by a static
/// analysis — the rewrite is profile-guided, so callers **must** gate it
/// behind an output-differential equivalence check, the way the fleet
/// driver does.
///
/// The instruction pair is stack-neutral (it pushes the null it pops), so
/// inserting mid-expression cannot disturb surrounding operands.
///
/// # Panics
///
/// Panics if `pc` is not a valid instruction index of `method`.
pub fn null_static_after(program: &mut Program, method: MethodId, pc: u32, target: StaticId) {
    let m = &mut program.methods[method.index()];
    assert!(
        (pc as usize) < m.code.len(),
        "anchor pc {pc} beyond method end {}",
        m.code.len()
    );
    insert_at(m, pc + 1, &[Insn::PushNull, Insn::PutStatic(target)]);
}

/// Applies [`assign_null_method`] to every method of the program; methods
/// the analysis cannot handle are skipped. Returns the total number of
/// null stores inserted.
pub fn assign_null_program(program: &mut Program) -> usize {
    let mut total = 0;
    for mid in 0..program.methods.len() as u32 {
        if let Ok(n) = assign_null_method(program, MethodId(mid)) {
            total += n;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, VmConfig};
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::interp::Vm;
    use heapdrag_vm::value::Value;

    /// Builds the juru shape: a large buffer used early, then dragged
    /// across a long filler phase because the local still roots it.
    fn juru_like() -> Program {
        let mut b = ProgramBuilder::new();
        let _ = b
            .begin_class("Doc")
            .field("len", Visibility::Private)
            .finish();
        let filler = b.declare_method("filler", None, true, 0, 1);
        {
            let mut m = b.begin_body(filler);
            m.push_int(0).store(0);
            m.label("loop");
            m.load(0).push_int(400).cmpge().branch("done");
            m.push_int(32).new_array().pop();
            m.load(0).push_int(1).add().store(0);
            m.jump("loop");
            m.label("done").ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.push_int(4000).mark("big buffer").new_array().store(1);
            m.load(1).push_int(0).push_int(7).astore(); // use it once
            m.load(1).push_int(0).aload().print(); // last use
            m.call(filler); // buffer dragged across this
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn inserts_null_store_and_preserves_output() {
        let original = juru_like();
        let mut revised = original.clone();
        let entry = revised.entry;
        let n = assign_null_method(&mut revised, entry).unwrap();
        assert!(n >= 1, "at least the buffer local dies");
        revised.link().unwrap();
        let out1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let out2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(out1.output, out2.output);
    }

    #[test]
    fn nulling_reduces_drag() {
        let original = juru_like();
        let mut revised = original.clone();
        assign_null_program(&mut revised);
        revised.link().unwrap();

        let run1 = profile(&original, &[], VmConfig::profiling()).unwrap();
        let run2 = profile(&revised, &[], VmConfig::profiling()).unwrap();
        let i1 = heapdrag_core::Integrals::from_records(&run1.records);
        let i2 = heapdrag_core::Integrals::from_records(&run2.records);
        assert!(
            i2.reachable < i1.reachable,
            "revised reachable integral {} should undercut original {}",
            i2.reachable,
            i1.reachable
        );
        assert_eq!(i1.in_use, i2.in_use, "in-use behaviour unchanged");
    }

    #[test]
    fn idempotent_on_already_nulled_code() {
        let mut p = juru_like();
        assign_null_program(&mut p);
        p.link().unwrap();
        let mut again = p.clone();
        let n = assign_null_program(&mut again);
        again.link().unwrap();
        // A second pass may insert at most stores for the nulls themselves
        // (null locals are not ref-typed… they are Null, which is reflike),
        // but must not grow without bound: re-running on the result of the
        // second pass changes nothing.
        let mut third = again.clone();
        let n3 = assign_null_program(&mut third);
        assert_eq!(n, n3, "passes converge");
    }

    #[test]
    fn null_static_after_releases_a_static_holder() {
        // A static roots a big buffer across a filler phase; no local dies
        // (main's local stays live to the end), so only the static-aimed
        // rewrite can release it.
        let build = |nulled: bool| {
            let mut b = ProgramBuilder::new();
            let cache = b.static_var("App.cache", Visibility::Private, Value::Null);
            let filler = b.declare_method("filler", None, true, 0, 1);
            {
                let mut m = b.begin_body(filler);
                m.push_int(0).store(0);
                m.label("loop");
                m.load(0).push_int(800).cmpge().branch("done");
                m.push_int(64).new_array().pop();
                m.load(0).push_int(1).add().store(0);
                m.jump("loop");
                m.label("done").ret();
                m.finish();
            }
            let main = b.declare_method("main", None, true, 1, 1);
            let pc_of_last_use;
            {
                let mut m = b.begin_body(main);
                m.push_int(2000).mark("cached buffer").new_array();
                m.putstatic(cache);
                m.getstatic(cache).push_int(0).push_int(5).astore();
                m.getstatic(cache).push_int(0).aload().print(); // last use
                pc_of_last_use = m.pc() - 1;
                m.call(filler); // buffer drags across this via the static
                m.ret();
                m.finish();
            }
            b.set_entry(main);
            let mut p = b.finish().unwrap();
            if nulled {
                let entry = p.entry;
                null_static_after(&mut p, entry, pc_of_last_use, cache);
                p.link().unwrap();
            }
            p
        };

        let original = build(false);
        let revised = build(true);
        let out1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let out2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(out1.output, out2.output, "nulling the static is output-neutral");

        let run1 = profile(&original, &[], VmConfig::profiling()).unwrap();
        let run2 = profile(&revised, &[], VmConfig::profiling()).unwrap();
        let i1 = heapdrag_core::Integrals::from_records(&run1.records);
        let i2 = heapdrag_core::Integrals::from_records(&run2.records);
        assert!(
            i2.reachable < i1.reachable,
            "static-nulled reachable integral {} should undercut original {}",
            i2.reachable,
            i1.reachable
        );
    }

    #[test]
    #[should_panic(expected = "anchor pc")]
    fn null_static_after_rejects_out_of_range_pc() {
        let mut p = juru_like();
        let cache = heapdrag_vm::ids::StaticId(0);
        let entry = p.entry;
        let end = p.methods[entry.index()].code.len() as u32;
        null_static_after(&mut p, entry, end, cache);
    }

    #[test]
    fn program_wide_application_covers_helpers() {
        let mut p = juru_like();
        let total = assign_null_program(&mut p);
        assert!(total >= 1);
        p.link().unwrap();
        let out = Vm::new(&p, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(out.output, vec![7]);
    }
}
