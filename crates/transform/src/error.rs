//! Errors raised when a transformation's safety conditions fail.

use std::error::Error;
use std::fmt;

use heapdrag_vm::ids::MethodId;

/// Why a requested transformation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The allocation may be used; removal would change behaviour.
    AllocationMayBeUsed {
        /// Allocating method.
        method: MethodId,
        /// Allocation pc.
        pc: u32,
        /// Human-readable witness.
        witness: String,
    },
    /// A handler in the program could observe an exception of the removed
    /// code (Java's precise exception model, §5.5).
    ExceptionObservable {
        /// Method containing the code.
        method: MethodId,
        /// Offending pc.
        pc: u32,
    },
    /// The instruction at the given pc is not what the transformation
    /// expected (e.g. not an allocation).
    UnexpectedShape {
        /// Method inspected.
        method: MethodId,
        /// pc inspected.
        pc: u32,
        /// What was expected.
        expected: &'static str,
    },
    /// The constructor is not removable / not lazy-allocatable.
    ConstructorImpure {
        /// The constructor.
        ctor: MethodId,
    },
    /// A field read site could not be statically resolved, so guards
    /// cannot be placed soundly.
    UnresolvedFieldRead {
        /// Method with the unresolved read.
        method: MethodId,
        /// pc of the read.
        pc: u32,
    },
    /// Type inference failed on a method the transformation must edit.
    Analysis(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::AllocationMayBeUsed { method, pc, witness } => {
                write!(f, "allocation at {method}@{pc} may be used: {witness}")
            }
            TransformError::ExceptionObservable { method, pc } => {
                write!(f, "a handler could observe exceptions of {method}@{pc}")
            }
            TransformError::UnexpectedShape { method, pc, expected } => {
                write!(f, "expected {expected} at {method}@{pc}")
            }
            TransformError::ConstructorImpure { ctor } => {
                write!(f, "constructor {ctor} has side effects")
            }
            TransformError::UnresolvedFieldRead { method, pc } => {
                write!(f, "field read at {method}@{pc} has an unknown receiver")
            }
            TransformError::Analysis(msg) => write!(f, "analysis failed: {msg}"),
        }
    }
}

impl Error for TransformError {}

impl From<heapdrag_analysis::TypeError> for TransformError {
    fn from(e: heapdrag_analysis::TypeError) -> Self {
        TransformError::Analysis(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TransformError::ConstructorImpure { ctor: MethodId(3) };
        assert!(e.to_string().contains("side effects"));
        let e = TransformError::Analysis("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
