//! The *dead code removal* rewriting (§3.3.2), mechanized: an allocation
//! whose objects are provably never used (indirect-usage analysis) and
//! whose constructor has no observable effects is replaced by `pushnull`;
//! the constructor call is neutralised into stack pops.
//!
//! Exception safety follows §5.5: the removed `new` could only have thrown
//! `OutOfMemoryError`, so removal requires that no reachable handler could
//! observe it.
//!
//! ```
//! use heapdrag_transform::{check_equivalence, remove_all_dead_allocations, Equivalence};
//! use heapdrag_vm::class::Visibility;
//! use heapdrag_vm::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An object that is constructed, stored… and never read: the paper's
//! // "all never-used" pattern, eligible for removal outright.
//! let mut b = ProgramBuilder::new();
//! let shade = b.begin_class("Shade").field("v", Visibility::Private).finish();
//! let init = b.declare_method("init", Some(shade), false, 2, 2);
//! {
//!     let mut m = b.begin_body(init);
//!     m.load(0).load(1).putfield(0);
//!     m.ret();
//!     m.finish();
//! }
//! let main = b.declare_method("main", None, true, 1, 2);
//! {
//!     let mut m = b.begin_body(main);
//!     m.new_obj(shade).dup().store(1).push_int(5).call(init); // never used
//!     m.push_int(99).print();
//!     m.ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let original = b.finish()?;
//!
//! let mut revised = original.clone();
//! let removed = remove_all_dead_allocations(&mut revised);
//! assert_eq!(removed.len(), 1, "the dead Shade allocation is removed");
//! revised.link()?;
//! assert_eq!(check_equivalence(&original, &revised, &[vec![]])?, Equivalence::Same);
//! # Ok(())
//! # }
//! ```

use heapdrag_analysis::callgraph::CallGraph;
use heapdrag_analysis::exceptions::{may_throw, HandlerSet};
use heapdrag_analysis::indirect_usage::{analyze_allocation, IndirectUsage};
use heapdrag_analysis::provenance::{infer_provenance, Prov};
use heapdrag_analysis::purity::Purity;
use heapdrag_analysis::usage::UsageAnalysis;
use heapdrag_vm::code_edit::{insert_at, replace_at};
use heapdrag_vm::ids::MethodId;
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::error::TransformError;

/// The analyses dead-code removal consults, built once per program.
#[derive(Debug)]
pub struct DeadCodeContext {
    /// CHA call graph.
    pub callgraph: CallGraph,
    /// Static/field read-write usage.
    pub usage: UsageAnalysis,
    /// Constructor effect summaries.
    pub purity: Purity,
    /// Handlers that could observe removed exceptions.
    pub handlers: HandlerSet,
}

impl DeadCodeContext {
    /// Builds all analyses for `program`.
    pub fn build(program: &Program) -> Self {
        let callgraph = CallGraph::build(program);
        let usage = UsageAnalysis::build(program, &callgraph);
        let purity = Purity::build(program, &callgraph);
        let handlers = HandlerSet::build(program, &callgraph);
        DeadCodeContext {
            callgraph,
            usage,
            purity,
            handlers,
        }
    }
}

/// A performed removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemovedAllocation {
    /// Method that contained the allocation.
    pub method: MethodId,
    /// pc of the (former) allocation.
    pub pc: u32,
    /// Constructor call that was neutralised, if any.
    pub ctor_call: Option<u32>,
}

/// Checks safety and removes the allocation at `(method, pc)`.
///
/// The `new` becomes `pushnull` (stack shape preserved; downstream stores
/// now store null). A constructor `call` whose receiver was this object is
/// turned into pops. `newarray` additionally has its length operand
/// consumed by the replacement `pop; pushnull` pair.
///
/// # Errors
///
/// * [`TransformError::UnexpectedShape`] — `pc` is not an allocation.
/// * [`TransformError::AllocationMayBeUsed`] — the indirect-usage analysis
///   found a (possible) use.
/// * [`TransformError::ExceptionObservable`] — a handler could observe the
///   allocation's `OutOfMemoryError`.
pub fn remove_dead_allocation(
    program: &mut Program,
    ctx: &DeadCodeContext,
    method: MethodId,
    pc: u32,
) -> Result<RemovedAllocation, TransformError> {
    let insn = *program.methods[method.index()]
        .code
        .get(pc as usize)
        .ok_or(TransformError::UnexpectedShape {
            method,
            pc,
            expected: "an allocation",
        })?;
    if !insn.is_alloc() {
        return Err(TransformError::UnexpectedShape {
            method,
            pc,
            expected: "an allocation",
        });
    }
    match analyze_allocation(program, &ctx.usage, &ctx.purity, method, pc) {
        IndirectUsage::NeverUsed => {}
        IndirectUsage::PossiblyUsed(w) => {
            return Err(TransformError::AllocationMayBeUsed {
                method,
                pc,
                witness: format!("{w:?}"),
            })
        }
    }
    if ctx.handlers.observes(program, &may_throw(program, &insn)) {
        return Err(TransformError::ExceptionObservable { method, pc });
    }

    // Locate the constructor call and all inline initialisation writes on
    // this allocation (receiver provenance). They all consume the (soon to
    // be null) reference and must be neutralised into stack pops.
    let prov = infer_provenance(program, method)
        .ok_or_else(|| TransformError::Analysis("provenance failed".into()))?;
    let mut ctor_call = None;
    // (pc, operands to pop) for each instruction to neutralise.
    let mut neutralise: Vec<(u32, usize)> = Vec::new();
    for (cpc, cinsn) in program.methods[method.index()].code.iter().enumerate() {
        let cpc = cpc as u32;
        if !prov.analyzed(cpc) {
            continue;
        }
        match cinsn {
            Insn::Call(target) => {
                let callee = &program.methods[target.index()];
                let p = callee.num_params as usize;
                if !callee.is_static && p >= 1 && prov.stack(cpc, p - 1) == Prov::Alloc(pc) {
                    ctor_call = Some(cpc);
                    neutralise.push((cpc, p));
                }
            }
            // Inline initialisation: `obj.f = v` / `obj[i] = v` with the
            // dead object as receiver (e.g. implicit zero-initialisation
            // emitted by the front end).
            Insn::PutField(_) if prov.stack(cpc, 1) == Prov::Alloc(pc) => {
                neutralise.push((cpc, 2));
            }
            Insn::AStore if prov.stack(cpc, 2) == Prov::Alloc(pc) => {
                neutralise.push((cpc, 3));
            }
            _ => {}
        }
    }

    // Patch, higher pcs first so earlier pcs stay valid.
    let m = &mut program.methods[method.index()];
    neutralise.sort_by_key(|(pc, _)| std::cmp::Reverse(*pc));
    for (cpc, operands) in neutralise {
        debug_assert!(cpc > pc, "initialisation runs after the allocation");
        replace_at(m, cpc, Insn::Pop);
        if operands > 1 {
            insert_at(m, cpc, &vec![Insn::Pop; operands - 1]);
        }
    }
    match insn {
        Insn::New(_) => replace_at(m, pc, Insn::PushNull),
        Insn::NewArray => {
            // Consume the length, then push null.
            replace_at(m, pc, Insn::PushNull);
            insert_at(m, pc, &[Insn::Pop]);
        }
        _ => unreachable!("checked is_alloc above"),
    }
    Ok(RemovedAllocation {
        method,
        pc,
        ctor_call,
    })
}

/// Scans every reachable method and removes every allocation that passes
/// the safety checks. Returns the removals performed.
pub fn remove_all_dead_allocations(program: &mut Program) -> Vec<RemovedAllocation> {
    let mut removed = Vec::new();
    let ctx = DeadCodeContext::build(program);
    let methods: Vec<MethodId> = (0..program.methods.len() as u32)
        .map(MethodId)
        .filter(|m| ctx.callgraph.is_reachable(*m))
        .collect();
    for mid in methods {
        // Collect allocation pcs up front; removing one can shift later
        // pcs (newarray inserts a pop), so re-scan after each removal.
        loop {
            let next = program.methods[mid.index()]
                .code
                .iter()
                .enumerate()
                .filter(|(_, i)| i.is_alloc())
                .map(|(pc, _)| pc as u32)
                .find(|pc| {
                    analyze_allocation(program, &ctx.usage, &ctx.purity, mid, *pc)
                        == IndirectUsage::NeverUsed
                });
            let Some(pc) = next else { break };
            match remove_dead_allocation(program, &ctx, mid, pc) {
                Ok(r) => removed.push(r),
                Err(_) => break,
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, VmConfig};
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::interp::Vm;

    /// The raytrace shape: objects allocated and initialised into an
    /// array… except here the element values are never read, so the whole
    /// site is dead.
    fn raytrace_like() -> Program {
        let mut b = ProgramBuilder::new();
        let c = b
            .begin_class("Shade")
            .field("v", Visibility::Private)
            .finish();
        let init = b.declare_method("init", Some(c), false, 2, 2);
        {
            let mut m = b.begin_body(init);
            m.load(0).load(1).putfield(0);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            m.push_int(0).store(2);
            m.label("loop");
            m.load(2).push_int(50).cmpge().branch("done");
            m.mark("never-used Shade").new_obj(c).dup().store(1).push_int(5).call(init);
            m.push_null().store(1);
            m.load(2).push_int(1).add().store(2);
            m.jump("loop");
            m.label("done");
            m.push_int(99).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn removes_ctor_initialised_dead_allocation() {
        let original = raytrace_like();
        let mut revised = original.clone();
        let removed = remove_all_dead_allocations(&mut revised);
        assert_eq!(removed.len(), 1);
        assert!(removed[0].ctor_call.is_some());
        revised.link().unwrap();
        let out1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let out2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(out1.output, out2.output);
        // Revised allocates nothing but the input array.
        assert!(out2.heap.allocated_objects < out1.heap.allocated_objects);
    }

    #[test]
    fn removal_eliminates_the_drag() {
        let original = raytrace_like();
        let mut revised = original.clone();
        remove_all_dead_allocations(&mut revised);
        revised.link().unwrap();
        let r1 = profile(&original, &[], VmConfig::profiling()).unwrap();
        let r2 = profile(&revised, &[], VmConfig::profiling()).unwrap();
        let i1 = Integrals::from_records(&r1.records);
        let i2 = Integrals::from_records(&r2.records);
        assert!(i2.reachable < i1.reachable);
        assert_eq!(i2.drag(), 0, "nothing left to drag");
    }

    #[test]
    fn used_allocation_is_refused() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.load(1).getfield(0).print(); // really used
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let mut p = b.finish().unwrap();
        let ctx = DeadCodeContext::build(&p);
        let entry = p.entry;
        let err = remove_dead_allocation(&mut p, &ctx, entry, 0).unwrap_err();
        assert!(matches!(err, TransformError::AllocationMayBeUsed { .. }));
        assert!(remove_all_dead_allocations(&mut p.clone()).is_empty());
    }

    #[test]
    fn oom_handler_blocks_removal() {
        let mut b = ProgramBuilder::new();
        let oom = b.builtins().out_of_memory;
        let c = b.begin_class("C").finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.label("try");
            m.new_obj(c).store(1);
            m.push_null().store(1);
            m.label("end");
            m.jump("out");
            m.label("catch");
            m.pop().push_int(-1).print();
            m.label("out");
            m.ret();
            m.handler("try", "end", "catch", Some(oom));
            m.finish();
        }
        b.set_entry(main);
        let mut p = b.finish().unwrap();
        let ctx = DeadCodeContext::build(&p);
        let entry = p.entry;
        let err = remove_dead_allocation(&mut p, &ctx, entry, 0).unwrap_err();
        assert!(
            matches!(err, TransformError::ExceptionObservable { .. }),
            "the paper's §5.5 check: an OutOfMemory handler exists, got {err:?}"
        );
    }

    #[test]
    fn dead_newarray_is_removed() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.push_int(100).new_array().store(1);
            m.push_null().store(1);
            m.push_int(1).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let original = b.finish().unwrap();
        let mut revised = original.clone();
        let removed = remove_all_dead_allocations(&mut revised);
        assert_eq!(removed.len(), 1);
        revised.link().unwrap();
        let out = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(out.output, vec![1]);
        assert_eq!(
            out.heap.allocated_objects, 1,
            "only the input array remains"
        );
    }

    #[test]
    fn not_an_allocation_is_refused() {
        let mut p = raytrace_like();
        let ctx = DeadCodeContext::build(&p);
        let entry = p.entry;
        let err = remove_dead_allocation(&mut p, &ctx, entry, 0).unwrap_err();
        assert!(matches!(err, TransformError::UnexpectedShape { .. }));
    }
}
