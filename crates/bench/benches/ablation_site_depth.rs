//! Ablation C (ours) — the site-nesting depth: §2.1.1 says "the level of
//! nesting can be set in order to tradeoff more accurate information and
//! speed", and §2.2 observes that "sometimes an allocation site is used in
//! many contexts and a large drag may be distributed among several smaller
//! drag groups".
//!
//! Sweeping the depth on benchmarks that allocate through the mini-JDK
//! shows both effects: depth 1 merges contexts (few groups, blurred
//! attribution), larger depths split them (the jack constructor's three
//! table sites only separate once the chain reaches the application
//! frame).

use heapdrag_core::{profile, DragAnalyzer, VmConfig};
use heapdrag_workloads::workload_by_name;

fn main() {
    println!("=== Ablation C: site-nesting depth vs drag attribution ===");
    for name in ["jack", "jess"] {
        let w = workload_by_name(name).expect("workload exists");
        let input = (w.default_input)();
        let program = w.original();
        println!("\n--- {name} ---");
        println!(
            "{:>6} {:>14} {:>16} {:>20}",
            "depth", "nested sites", "chains interned", "sites for 90% drag"
        );
        for depth in [1usize, 2, 3, 4, 6] {
            let mut config = VmConfig::profiling();
            config.site_depth = depth;
            let run = profile(&program, &input, config).expect("runs");
            let report =
                DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
            let total = report.total_drag().max(1);
            // How many (drag-sorted) groups does a programmer visit to
            // cover 90 % of the drag?
            let mut covered = 0u128;
            let mut needed = 0usize;
            for e in &report.by_nested_site {
                if covered * 10 >= total * 9 {
                    break;
                }
                covered += e.stats.drag;
                needed += 1;
            }
            println!(
                "{:>6} {:>14} {:>16} {:>20}",
                depth,
                report.by_nested_site.len(),
                run.sites.num_chains(),
                needed
            );
        }
    }
    println!("\n(deeper nesting separates contexts: more, finer groups; the paper's\n default depth suffices to reach the application anchor frames)");
}
