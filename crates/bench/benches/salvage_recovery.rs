//! Corrupted-trace recovery: how much of each workload's drag analysis
//! survives log truncation, for the EXPERIMENTS.md "corrupted-trace
//! recovery" table.
//!
//! For jess, jack, and juru this profiles the workload once, truncates the
//! trailer log at 25/50/75/90% of its bytes, ingests each prefix with the
//! salvage parser, and reports the share of object records and of total
//! drag (the space-time product of §3.1) recovered relative to the clean
//! log. Strict parsing is also run at every cut to confirm it fails with a
//! stable error code — the behaviour salvage mode exists to avoid.
//!
//! Everything here is deterministic (the VM clock is allocation-driven),
//! so the printed table is stable across runs and machines.

use heapdrag_core::{profile, Pipeline, VmConfig};
use heapdrag_workloads::workload_by_name;

const WORKLOADS: [&str; 3] = ["jess", "jack", "juru"];
const CUTS: [usize; 4] = [25, 50, 75, 90];

fn total_drag(records: &[heapdrag_core::ObjectRecord]) -> u128 {
    records.iter().map(|r| r.drag()).sum()
}

fn main() {
    println!("## Corrupted-trace recovery (salvage mode)\n");
    println!("% of log kept -> % of records / % of total drag recovered\n");
    println!(
        "| workload | {} |",
        CUTS.map(|c| format!("{c}% kept")).join(" | ")
    );
    println!("|----------|{}", "----------|".repeat(CUTS.len()));

    let strict = Pipeline::options().shards(4);
    let salvage = strict.salvage(None);
    for name in WORKLOADS {
        let w = workload_by_name(name).expect("workload exists");
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling())
            .expect("workload profiles");
        let clean_text = {
            let mut buf = Vec::new();
            strict.write_to(&run, &program, &mut buf).expect("writes");
            String::from_utf8(buf).expect("text log is utf-8")
        };
        let clean = strict
            .ingest_bytes(&clean_text)
            .expect("clean log parses strictly");
        let clean_records = clean.log.records.len() as f64;
        let clean_drag = total_drag(&clean.log.records) as f64;

        let mut cells = Vec::new();
        for cut in CUTS {
            let mut end = clean_text.len() * cut / 100;
            while !clean_text.is_char_boundary(end) {
                end -= 1;
            }
            let text = &clean_text[..end];
            let strict_err = strict
                .ingest_bytes(text)
                .expect_err("a truncated log must fail strict parsing");
            let strict_err = strict_err.as_log().expect("log error");
            let salvaged = salvage
                .ingest_bytes(text)
                .expect("salvage always succeeds on a truncated log");
            assert!(
                salvaged.salvage.synthesized_end,
                "{name}@{cut}%: truncation loses the end marker"
            );
            let records = salvaged.log.records.len() as f64 / clean_records * 100.0;
            let drag = total_drag(&salvaged.log.records) as f64 / clean_drag * 100.0;
            cells.push(format!(
                "{records:.1}% / {drag:.1}% ({})",
                strict_err.code
            ));
        }
        println!("| {name} | {} |", cells.join(" | "));
    }
    println!(
        "\nEach cell: records recovered / drag recovered (strict-mode error \
         code at that cut). Salvage synthesizes the exit time at every cut."
    );
}
