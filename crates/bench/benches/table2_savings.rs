//! Table 2 — drag and space savings for original inputs.
//!
//! For every benchmark, profile the original and revised variants on the
//! default input and report the four space-time integrals plus the drag-
//! and space-saving ratios. Expected shape (paper values in parentheses):
//! jack (70 %) and euler (76 %) lead, mc exceeds 100 % (169 %), db saves
//! nothing, the average drag saving is around 51 %.

use heapdrag_bench::{measure_pair, savings_header, savings_row};
use heapdrag_core::VmConfig;
use heapdrag_workloads::all_workloads;

fn main() {
    println!("=== Table 2: drag and space savings, original inputs ===");
    println!("(integrals in MByte^2, as in the paper)");
    println!("{}", savings_header());
    let mut drag_sum = 0.0;
    let mut space_sum = 0.0;
    let mut n = 0.0;
    for w in all_workloads() {
        let input = (w.default_input)();
        let pair = measure_pair(&w, &input, VmConfig::profiling()).expect("workload runs");
        assert_eq!(
            pair.original.outcome.output, pair.revised.outcome.output,
            "{}: variants must agree",
            w.name
        );
        println!("{}", savings_row(&pair));
        let s = pair.savings();
        drag_sum += s.drag_saving_pct();
        space_sum += s.space_saving_pct();
        n += 1.0;
    }
    println!("{}", "-".repeat(82));
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>9.2} {:>9.2}",
        "average",
        "",
        "",
        "",
        "",
        drag_sum / n,
        space_sum / n
    );
    println!("(paper averages: 51% drag, 14-18% space)");
}
