//! Serve-layer throughput for the EXPERIMENTS.md "multi-session serve"
//! table: sessions/sec and pool utilization when N sessions share one
//! host-sized decode pool under the fleet in-flight-chunk budget.
//!
//! Synthesizes one trace (text and binary variants), then pushes a batch
//! of sessions — all carrying the same bytes — through a [`ServeManager`]
//! at several (drivers, budget) points, measuring:
//!
//! * wall-clock sessions/sec for the whole batch,
//! * aggregate record throughput,
//! * pool utilization — busy-peak over pool size — and the fleet
//!   in-flight-chunk peak against its budget.
//!
//! The fleet report of every configuration is asserted byte-identical to
//! the first (the merge is order- and concurrency-invariant), so the
//! table cannot compare configurations that disagree on the analysis.

use std::time::{Duration, Instant};

use heapdrag_core::serve::WorkerPool;
use heapdrag_core::{
    BinarySink, LogFormat, Pipeline, ServeConfig, ServeManager, SessionSource, SessionSpec,
    SessionState, TextSink, TraceSink,
};
use heapdrag_core::record::{GcSample, ObjectRecord};
use heapdrag_obs::Registry;
use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

const RECORDS: u64 = 40_000;
const CHAINS: u32 = 24;
const SESSIONS: usize = 48;
const CHUNK_RECORDS: usize = 2048;
const POOL: usize = 4;

fn synthesize(format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    let write = |sink: &mut dyn TraceSink| {
        sink.begin().unwrap();
        for c in 0..CHAINS {
            sink.chain(ChainId(c), &format!("Gen.site{c}@{c}")).unwrap();
        }
        for i in 0..RECORDS {
            let created = i * 13;
            sink.record(&ObjectRecord {
                object: ObjectId(i),
                class: ClassId((i % 5) as u32),
                size: 8 + (i % 31) * 16,
                created,
                freed: created + 400 + (i % 11) * 50,
                last_use: (i % 5 != 0).then_some(created + 100),
                alloc_site: ChainId((i % u64::from(CHAINS)) as u32),
                last_use_site: (i % 5 != 0)
                    .then_some(ChainId(((i * 3) % u64::from(CHAINS)) as u32)),
                at_exit: i.is_multiple_of(97),
            })
            .unwrap();
            if i.is_multiple_of(512) {
                sink.sample(&GcSample {
                    time: created,
                    reachable_bytes: i * 9 + 4096,
                    reachable_count: i + 1,
                })
                .unwrap();
            }
        }
        sink.end(RECORDS * 13 + 10_000).unwrap();
    };
    match format {
        LogFormat::Text => write(&mut TextSink::new(&mut buf)),
        LogFormat::Binary => write(&mut BinarySink::new(&mut buf)),
    }
    buf
}

struct Run {
    elapsed: Duration,
    busy_peak: usize,
    inflight_peak: i64,
    fleet: String,
}

fn run_batch(bytes: &[u8], shards: usize, drivers: usize, budget: u64) -> Run {
    let registry = Registry::new();
    let mut manager = ServeManager::new(ServeConfig {
        pool_workers: POOL,
        drivers,
        budget_chunks: budget,
        max_queue: SESSIONS + 1,
        pipeline: Pipeline::options().shards(shards).chunk_records(CHUNK_RECORDS),
        registry: registry.clone(),
    });
    let start = Instant::now();
    let ids: Vec<_> = (0..SESSIONS)
        .map(|i| {
            manager.submit(SessionSpec::new(
                format!("bench-{i}"),
                SessionSource::Bytes(bytes.to_vec()),
            ))
        })
        .collect();
    manager.wait_idle();
    let elapsed = start.elapsed();
    for id in ids {
        assert_eq!(manager.state(id), Some(SessionState::Completed), "{id}");
    }
    let snap = registry.snapshot();
    let inflight_peak = snap.gauges["heapdrag_serve_inflight_chunks_peak"];
    assert!(inflight_peak <= i64::try_from(budget).unwrap());
    let fleet = manager.fleet_report(5);
    let busy_peak = manager.pool().busy_peak();
    manager.shutdown();
    Run {
        elapsed,
        busy_peak,
        inflight_peak,
        fleet,
    }
}

fn main() {
    let host_pool = WorkerPool::shared().workers();
    println!("## Multi-session serve: shared-pool throughput\n");
    println!(
        "{SESSIONS} sessions x {RECORDS} records each, pool {POOL} workers \
         (process-wide shared pool: {host_pool}), chunk-records {CHUNK_RECORDS}\n"
    );
    println!(
        "| format | shards | drivers | budget | sessions/s | records/s | pool util (busy-peak/size) | in-flight peak/budget |"
    );
    println!(
        "|--------|-------:|--------:|-------:|-----------:|----------:|---------------------------:|----------------------:|"
    );

    let mut baseline: Option<String> = None;
    for format in [LogFormat::Text, LogFormat::Binary] {
        let bytes = synthesize(format);
        for (shards, drivers, budget) in [(1, 1, 8u64), (2, 4, 8), (2, 8, 16), (4, 8, 32)] {
            let run = run_batch(&bytes, shards, drivers, budget);
            match &baseline {
                // Fleet reports across formats differ only via identical
                // content — the merge sees the same records either way.
                Some(first) => assert_eq!(
                    &run.fleet, first,
                    "fleet report diverged at {format}/{shards}/{drivers}/{budget}"
                ),
                None => baseline = Some(run.fleet.clone()),
            }
            let secs = run.elapsed.as_secs_f64();
            println!(
                "| {format} | {shards} | {drivers} | {budget} | {:.1} | {:.2} M | {}/{POOL} | {}/{budget} |",
                SESSIONS as f64 / secs,
                (SESSIONS as u64 * RECORDS) as f64 / secs / 1e6,
                run.busy_peak,
                run.inflight_peak,
            );
        }
    }
    println!(
        "\nEach row drains the same {SESSIONS}-session batch through a fresh \
         manager; the fleet report is asserted byte-identical across every \
         row. `drivers` bounds concurrently *running* sessions, `budget` the \
         fleet's in-flight decoded chunks (admission control), so the last \
         two columns show how far each configuration actually loaded the \
         shared pool."
    );
}
