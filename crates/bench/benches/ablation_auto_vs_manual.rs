//! Ablation A (ours) — §5 automated: how much of each benchmark's
//! manually-achieved drag saving does the profile-guided optimizer
//! (static analyses + mechanical rewriting) recover on its own?
//!
//! For each benchmark: profile the original, let the optimizer rewrite it
//! (profile → transform → re-profile cycles), verify behaviour, and
//! compare the automatic saving against the manual revision's.

use heapdrag_bench::measure_pair;
use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
use heapdrag_transform::optimizer::{optimize_iteratively, OptimizerOptions};
use heapdrag_workloads::all_workloads;

fn main() {
    println!("=== Ablation A: automatic (§5 analyses) vs manual rewriting ===");
    println!(
        "{:<10} {:>12} {:>12} {:>10}  verified",
        "benchmark", "manual drag%", "auto drag%", "#applied"
    );
    println!("{}", "-".repeat(70));
    for w in all_workloads() {
        let input = (w.default_input)();
        let manual = measure_pair(&w, &input, VmConfig::profiling()).expect("workload runs");

        let original = w.original();
        let mut auto = original.clone();
        let outcome = optimize_iteratively(
            &mut auto,
            &input,
            VmConfig::profiling(),
            OptimizerOptions::default(),
            3,
        )
        .expect("optimizer runs");

        let base = profile(&original, &input, VmConfig::profiling()).expect("runs");
        let after = profile(&auto, &input, VmConfig::profiling()).expect("runs");
        let auto_savings = SavingsReport::new(
            Integrals::from_records(&base.records),
            Integrals::from_records(&after.records),
        );
        let verified = base.outcome.output == after.outcome.output;
        assert!(verified, "{}: optimizer must preserve behaviour", w.name);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>10}  {}",
            w.name,
            manual.savings().drag_saving_pct(),
            auto_savings.drag_saving_pct(),
            outcome.applied.len(),
            verified
        );
    }
    println!("\n(the paper performs these rewrites by hand and sketches the analyses in §5;\n the optimizer mechanises them — parity is not expected everywhere, e.g. the\n paper's lazy allocation requires knowing all first-use points)");
}
