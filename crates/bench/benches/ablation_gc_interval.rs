//! Ablation B (ours) — the deep-GC interval: §2.1.1 notes the tool forces
//! a deep GC every 100 KB and that "a larger interval yields less precise
//! results". A larger interval postpones the observed collection time of
//! every object, inflating the measured drag; this sweep quantifies that.

use heapdrag_core::{profile, Integrals, VmConfig};
use heapdrag_workloads::workload_by_name;

fn main() {
    println!("=== Ablation B: deep-GC interval vs measured drag ===");
    let intervals_kb = [25u64, 50, 100, 200, 400];
    for name in ["juru", "jack"] {
        let w = workload_by_name(name).expect("workload exists");
        let input = (w.default_input)();
        let program = w.original();
        println!("\n--- {name} ---");
        println!("{:>10} {:>14} {:>12} {:>8}", "interval", "drag (MB^2)", "deep GCs", "objs");
        let mut last_drag = None;
        for kb in intervals_kb {
            let mut config = VmConfig::profiling();
            config.deep_gc_interval = Some(kb * 1024);
            let run = profile(&program, &input, config).expect("runs");
            let i = Integrals::from_records(&run.records);
            let drag = i.drag() as f64 / (1024.0 * 1024.0);
            println!(
                "{:>8}KB {:>14.2} {:>12} {:>8}",
                kb,
                drag,
                run.outcome.deep_gcs,
                run.records.len()
            );
            if let Some(prev) = last_drag {
                assert!(
                    drag >= prev * 0.98,
                    "drag should not shrink as sampling coarsens: {prev} -> {drag}"
                );
            }
            last_drag = Some(drag);
        }
    }
    println!("\n(collection time approximates unreachability time from above; coarser\n sampling overestimates drag — hence the paper's 100 KB default)");
}
