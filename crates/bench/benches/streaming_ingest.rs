//! Streaming bounded-memory ingestion versus the in-memory path, for the
//! EXPERIMENTS.md "streaming ingestion" table.
//!
//! Synthesizes one large trace (big enough that per-record work dominates
//! and backpressure engages), encodes it in both formats, and measures at
//! shard counts 1, 4, and 8:
//!
//! * in-memory throughput — `Pipeline::ingest_bytes` followed by
//!   `analyze_records`, the whole trace materialised;
//! * streaming throughput — `Pipeline::analyze_reader` over the same
//!   bytes, records folded into per-site aggregates as chunks decode;
//! * the streaming buffer high-water mark (`peak_buffered_bytes`), its
//!   bound (4 × shards × the largest chunk), and the backpressure stall
//!   count.
//!
//! Report parity between the two paths is asserted while measuring, so
//! the table cannot compare pipelines that disagree on the analysis.
//! Sizes are deterministic; the timings vary with the host.

use std::time::{Duration, Instant};

use heapdrag_core::record::{GcSample, ObjectRecord};
use heapdrag_core::{BinarySink, LogFormat, Pipeline, TextSink, TraceSink};
use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};
use heapdrag_vm::SiteId;

const RECORDS: u64 = 300_000;
const CHAINS: u32 = 24;
const REPS: usize = 3;
const CHUNK_RECORDS: usize = 4096;

fn synthesize(format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    let write = |sink: &mut dyn TraceSink| {
        sink.begin().unwrap();
        for c in 0..CHAINS {
            sink.chain(ChainId(c), &format!("Gen.site{c}@{c}")).unwrap();
        }
        for i in 0..RECORDS {
            let created = i * 13;
            sink.record(&ObjectRecord {
                object: ObjectId(i),
                class: ClassId((i % 5) as u32),
                size: 8 + (i % 31) * 16,
                created,
                freed: created + 400 + (i % 11) * 50,
                last_use: (i % 5 != 0).then_some(created + 100),
                alloc_site: ChainId((i % u64::from(CHAINS)) as u32),
                last_use_site: (i % 5 != 0)
                    .then_some(ChainId(((i * 3) % u64::from(CHAINS)) as u32)),
                at_exit: i.is_multiple_of(97),
            })
            .unwrap();
            if i.is_multiple_of(512) {
                sink.sample(&GcSample {
                    time: created,
                    reachable_bytes: i * 9 + 4096,
                    reachable_count: i + 1,
                })
                .unwrap();
            }
        }
        sink.end(RECORDS * 13 + 10_000).unwrap();
    };
    match format {
        LogFormat::Text => write(&mut TextSink::new(&mut buf)),
        LogFormat::Binary => write(&mut BinarySink::new(&mut buf)),
    }
    buf
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best: Option<(T, Duration)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        match &best {
            Some((_, d)) if *d <= elapsed => {}
            _ => best = Some((out, elapsed)),
        }
    }
    best.expect("reps >= 1")
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn mib_per_s(bytes: usize, d: Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

fn main() {
    println!("## Streaming ingestion: bounded memory vs materialised\n");
    println!(
        "{RECORDS} records, chunk-records {CHUNK_RECORDS}, best of {REPS} runs per cell\n"
    );
    println!(
        "| format | shards | in-memory | streaming | peak buffered | bound (4 x shards x chunk) | stalls |"
    );
    println!(
        "|--------|-------:|----------:|----------:|--------------:|---------------------------:|-------:|"
    );

    for format in [LogFormat::Text, LogFormat::Binary] {
        let bytes = synthesize(format);
        for shards in [1usize, 4, 8] {
            let pipe = Pipeline::options().shards(shards).chunk_records(CHUNK_RECORDS);

            let (mem_report, mem_time) = best_of(REPS, || {
                let ingested = pipe.ingest_bytes(&bytes).expect("clean trace ingests");
                let (report, _) =
                    pipe.analyze_records(&ingested.log.records, |c| Some(SiteId(c.0)));
                report
            });
            let (streamed, stream_time) = best_of(REPS, || {
                pipe.analyze_reader(&bytes[..]).expect("clean trace streams")
            });
            assert_eq!(
                streamed.report, mem_report,
                "{format} at {shards} shards: the two paths must agree"
            );
            let bound = 4 * shards as u64 * streamed.stats.max_chunk_bytes;
            assert!(
                streamed.stats.peak_buffered_bytes < bound,
                "{format} at {shards} shards: peak {} exceeds the bound {bound}",
                streamed.stats.peak_buffered_bytes
            );
            println!(
                "| {format} | {shards} | {:.0} MiB/s | {:.0} MiB/s | {:.2} MiB | {:.2} MiB | {} |",
                mib_per_s(bytes.len(), mem_time),
                mib_per_s(bytes.len(), stream_time),
                mib(streamed.stats.peak_buffered_bytes),
                mib(bound),
                streamed.stats.backpressure_stalls,
            );
        }
    }
    println!(
        "\nIn-memory is `ingest_bytes` + `analyze_records` (records \
         materialised); streaming is `analyze_reader` over the same bytes \
         (records folded as chunks decode, peak transit memory = \"peak \
         buffered\"). The bound column is what `tests/streaming_parity.rs` \
         asserts on a 64 MiB trace."
    );
}
