//! Fleet optimization (ours) — the paper's loop closed mechanically:
//! profile → rank → rewrite → verify → re-profile over all nine
//! workloads × both inputs, on the worker pool. Prints the markdown
//! table for EXPERIMENTS.md ("Fleet optimization") plus the plain-text
//! scoreboard `heapdrag optimize-fleet` would show.

use heapdrag::fleet::{optimize_fleet, FleetOptions, InputSelection};
use heapdrag::transform::RewriteOutcome;
use heapdrag_core::pattern::TransformKind;

fn mb2(v: u128) -> f64 {
    v as f64 / (1024.0 * 1024.0)
}

fn main() {
    let options = FleetOptions {
        inputs: InputSelection::Both,
        shards: 4,
        pool_workers: 4,
        ..FleetOptions::default()
    };
    let board = optimize_fleet(&options, None).expect("fleet runs");
    assert!(
        board.jobs.iter().all(|j| j.error.is_none()),
        "fleet jobs failed:\n{}",
        board.render_text()
    );

    println!("=== Fleet optimization: drag reclaimed per workload ===\n");
    println!(
        "| workload | input | drag before (MB²) | drag after (MB²) | reclaimed | applied (an/dc/la) | rej-analysis | rej-verify | no-op |"
    );
    println!(
        "|----------|-------|------------------:|-----------------:|----------:|-------------------:|-------------:|-----------:|------:|"
    );
    for j in &board.jobs {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.1}% | {} ({}/{}/{}) | {} | {} | {} |",
            j.workload,
            j.input,
            mb2(j.drag_before()),
            mb2(j.drag_after()),
            j.reduction_pct(),
            j.applied.len(),
            j.applied_of_kind(TransformKind::AssignNull),
            j.applied_of_kind(TransformKind::DeadCodeRemoval),
            j.applied_of_kind(TransformKind::LazyAllocation),
            j.outcome_count(RewriteOutcome::RejectedByAnalysis),
            j.outcome_count(RewriteOutcome::RejectedByVerify),
            j.outcome_count(RewriteOutcome::NoOp),
        );
    }

    println!("\n--- raw scoreboard ---\n");
    print!("{}", board.render_text());
}
