//! Trace codec comparison: text "heapdrag-log v1" versus binary HDLOG v2,
//! for the EXPERIMENTS.md "log codec" table.
//!
//! For jess, jack, and juru this profiles the workload once, encodes the
//! trailer log in both formats, and measures for each format the on-disk
//! size, the encode throughput, and the strict-ingest throughput (best of
//! `REPS` timed runs, single-shard so the numbers reflect the codec and
//! not the thread pool). Byte-identical reports from both formats are
//! asserted while measuring, so the table cannot silently compare logs
//! that decode to different analyses.
//!
//! The profiled runs are deterministic (the VM clock is allocation-driven),
//! so sizes and ratios are stable across runs and machines; only the
//! timings vary with the host.

use std::time::{Duration, Instant};

use heapdrag_core::{profile, DragAnalyzer, LogFormat, Pipeline, VmConfig};
use heapdrag_workloads::workload_by_name;

const WORKLOADS: [&str; 3] = ["jess", "jack", "juru"];
const REPS: usize = 5;

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best: Option<(T, Duration)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        match &best {
            Some((_, d)) if *d <= elapsed => {}
            _ => best = Some((out, elapsed)),
        }
    }
    best.expect("reps >= 1")
}

fn mib_per_s(bytes: usize, d: Duration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / d.as_secs_f64()
}

fn main() {
    println!("## Log codec: text v1 vs binary HDLOG v2\n");
    println!(
        "| workload | text bytes | binary bytes | size ratio | text encode | \
         binary encode | text ingest | binary ingest | ingest speedup |"
    );
    println!("|----------|-----------:|-------------:|-----------:|------------:|--------------:|------------:|--------------:|---------------:|");

    let pipe = Pipeline::options();
    for name in WORKLOADS {
        let w = workload_by_name(name).expect("workload exists");
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling())
            .expect("workload profiles");

        let encode = |format: LogFormat| {
            let mut buf = Vec::new();
            pipe.format(format)
                .write_to(&run, &program, &mut buf)
                .expect("Vec sink cannot fail");
            buf
        };
        let (text, text_enc) = best_of(REPS, || encode(LogFormat::Text));
        let (binary, bin_enc) = best_of(REPS, || encode(LogFormat::Binary));

        let ingest = |bytes: &[u8]| pipe.ingest_bytes(bytes).expect("clean log parses strictly");
        let (from_text, text_dec) = best_of(REPS, || ingest(&text));
        let (from_binary, bin_dec) = best_of(REPS, || ingest(&binary));

        // The whole comparison is meaningless unless both logs decode to
        // the same analysis, so assert report parity while measuring.
        let report = |log: &heapdrag_core::ParsedLog| {
            let analysis = DragAnalyzer::new()
                .analyze(&log.records, |c| Some(heapdrag_vm::SiteId(c.0)));
            heapdrag_core::ReportSections::standard(&analysis, log).render()
        };
        assert_eq!(
            report(&from_text.log),
            report(&from_binary.log),
            "{name}: text and binary logs must produce byte-identical reports"
        );

        let ratio = text.len() as f64 / binary.len() as f64;
        println!(
            "| {name} | {} | {} | {ratio:.2}x | {:.0} MiB/s | {:.0} MiB/s | \
             {:.0} MiB/s | {:.0} MiB/s | {:.2}x |",
            text.len(),
            binary.len(),
            mib_per_s(text.len(), text_enc),
            mib_per_s(binary.len(), bin_enc),
            mib_per_s(text.len(), text_dec),
            mib_per_s(binary.len(), bin_dec),
            text_dec.as_secs_f64() / bin_dec.as_secs_f64(),
        );
    }
    println!(
        "\nEncode/ingest rates are each format's own bytes over the best of \
         {REPS} timed runs (single shard). \"Ingest speedup\" is wall-clock \
         text-ingest time over binary-ingest time for the same trace."
    );
}
