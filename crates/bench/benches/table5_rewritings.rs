//! Table 5 — summary of rewritings: per benchmark, the strategy applied,
//! the reference kinds rewritten, the measured drag saving, and the static
//! analysis expected to automate it.

use heapdrag_bench::measure_pair;
use heapdrag_core::VmConfig;
use heapdrag_workloads::all_workloads;

fn main() {
    println!("=== Table 5: summary of rewritings ===");
    println!(
        "{:<10} {:<45} {:<40} {:>8}  expected analysis",
        "benchmark", "rewriting strategy", "reference kinds", "drag%"
    );
    println!("{}", "-".repeat(130));
    for w in all_workloads() {
        if w.name == "db" {
            println!(
                "{:<10} {:<45} {:<40} {:>8}  {}",
                w.name, w.rewriting, w.reference_kinds, "0.00", w.expected_analysis
            );
            continue;
        }
        let input = (w.default_input)();
        let pair = measure_pair(&w, &input, VmConfig::profiling()).expect("workload runs");
        println!(
            "{:<10} {:<45} {:<40} {:>8.2}  {}",
            w.name,
            w.rewriting,
            w.reference_kinds,
            pair.savings().drag_saving_pct(),
            w.expected_analysis
        );
    }
    println!(
        "\n(paper: javac 21.8, jack 70.34, raytrace 45+6.27, jess 2.7+1.68+11.09,\n euler 76.46, mc 119.95+48.87, juru 33.68, analyzer 25.34)"
    );
}
