//! Interpreter dispatch micro-benchmarks: steps/second per opcode class,
//! fast (pre-decoded, superinstructions, inline caches) versus the
//! reference `step()` loop, each under the free-running `NullObserver`
//! and under the full drag profiler.
//!
//! Each program is a counted loop whose body is dominated by one opcode
//! class, so the per-row speedup isolates what pre-decoding buys for that
//! dispatch family. The PR's acceptance bar is a >= 2x aggregate speedup
//! with the NullObserver; the table footer prints the geometric mean.

use std::time::Instant;

use heapdrag_core::DragProfiler;
use heapdrag_vm::builder::{MethodBuilder, ProgramBuilder};
use heapdrag_vm::class::Visibility;
use heapdrag_vm::interp::{InterpreterKind, Vm, VmConfig};
use heapdrag_vm::program::Program;

const SAMPLES: usize = 5;

// Loop-counter local; benchmark bodies may use locals 2..6 freely.
const L_I: u16 = 1;

/// Builds `main` as a `trips`-iteration counted loop around `body`.
fn counted_loop(trips: i64, body: impl Fn(&mut MethodBuilder)) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.declare_method("main", None, true, 1, 8);
    {
        let mut m = b.begin_body(main);
        m.push_int(0).store(L_I);
        m.label("loop");
        m.load(L_I).push_int(trips).cmpge().branch("end");
        body(&mut m);
        m.load(L_I).push_int(1).add().store(L_I);
        m.jump("loop");
        m.label("end");
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("benchmark program links")
}

/// Median steps/second over `SAMPLES` runs (after one warm-up).
fn steps_per_sec(program: &Program, kind: InterpreterKind, profiled: bool) -> f64 {
    let config = VmConfig {
        interpreter: kind,
        ..VmConfig::default()
    };
    let run = |cfg: &VmConfig| -> (u64, f64) {
        let mut vm = Vm::new(program, cfg.clone());
        let start = Instant::now();
        let outcome = if profiled {
            let mut profiler = DragProfiler::new();
            vm.run_observed(std::hint::black_box(&[]), &mut profiler)
                .expect("benchmark runs")
        } else {
            vm.run(std::hint::black_box(&[])).expect("benchmark runs")
        };
        (outcome.steps, start.elapsed().as_secs_f64())
    };
    run(&config); // warm-up
    let mut rates: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let (steps, secs) = run(&config);
            steps as f64 / secs
        })
        .collect();
    rates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

fn arith_program(trips: i64) -> Program {
    counted_loop(trips, |m| {
            m.push_int(1).store(2);
            m.load(2).push_int(3).add().push_int(5).add().push_int(2).mul().store(2);
            m.load(2).neg().push_int(7).sub().store(3);
        },
    )
}

fn stack_program(trips: i64) -> Program {
    counted_loop(
        trips,
        |m| {
            m.push_int(9).store(2);
            m.load(2).store(3);
            m.load(3).load(2).swap().pop().store(4);
            m.load(4).dup().pop().store(2);
        },
    )
}

fn branch_program(trips: i64) -> Program {
    counted_loop(
        trips,
        |m| {
            for j in 0..4 {
                let next = format!("b{j}");
                m.load(L_I).push_int(j).cmplt().branch(&next);
                m.label(&next);
            }
        },
    )
}

fn field_program(trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let c = b
        .begin_class("bench.C")
        .field("x", Visibility::Public)
        .field("y", Visibility::Public)
        .finish();
    let x = b.field_slot(c, "x");
    let y = b.field_slot(c, "y");
    let main = b.declare_method("main", None, true, 1, 8);
    {
        let mut m = b.begin_body(main);
        m.push_int(0).store(L_I);
        m.new_obj(c).store(2);
        m.load(2).push_int(0).putfield(x);
        m.load(2).push_int(0).putfield(y);
        m.label("loop");
        m.load(L_I).push_int(trips).cmpge().branch("end");
        m.load(2).getfield(x).push_int(1).add().store(3);
        m.load(2).load(3).putfield(x);
        m.load(2).getfield(y).store(4);
        m.load(2).load(4).putfield(y);
        m.load(L_I).push_int(1).add().store(L_I);
        m.jump("loop");
        m.label("end").ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("links")
}

fn call_program(trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let f = b.declare_method("f", None, true, 1, 2);
    {
        let mut m = b.begin_body(f);
        m.load(0).push_int(1).add().ret_val();
        m.finish();
    }
    let main = b.declare_method("main", None, true, 1, 8);
    {
        let mut m = b.begin_body(main);
        m.push_int(0).store(L_I);
        m.label("loop");
        m.load(L_I).push_int(trips).cmpge().branch("end");
        m.load(L_I).call(f).store(2);
        m.load(2).call(f).pop();
        m.load(L_I).push_int(1).add().store(L_I);
        m.jump("loop");
        m.label("end").ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("links")
}

fn vcall_program(trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let c = b
        .begin_class("bench.D")
        .field("x", Visibility::Public)
        .finish();
    let x = b.field_slot(c, "x");
    let step = b.declare_method("step", Some(c), false, 2, 3);
    {
        let mut m = b.begin_body(step);
        m.load(0).getfield(x).load(1).add().ret_val();
        m.finish();
    }
    let main = b.declare_method("main", None, true, 1, 8);
    {
        let mut m = b.begin_body(main);
        m.push_int(0).store(L_I);
        m.new_obj(c).store(2);
        m.load(2).push_int(0).putfield(x);
        m.label("loop");
        m.load(L_I).push_int(trips).cmpge().branch("end");
        m.load(2).load(L_I).call_virtual("step", 1).store(3);
        m.load(2).load(3).call_virtual("step", 1).pop();
        m.load(L_I).push_int(1).add().store(L_I);
        m.jump("loop");
        m.label("end").ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("links")
}

fn alloc_program(trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let c = b
        .begin_class("bench.Cell")
        .field("v", Visibility::Public)
        .finish();
    let main = b.declare_method("main", None, true, 1, 8);
    {
        let mut m = b.begin_body(main);
        m.push_int(0).store(L_I);
        m.label("loop");
        m.load(L_I).push_int(trips).cmpge().branch("end");
        m.new_obj(c).pop();
        m.push_int(4).new_array().pop();
        m.load(L_I).push_int(1).add().store(L_I);
        m.jump("loop");
        m.label("end").ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("links")
}

fn array_program(trips: i64) -> Program {
    counted_loop(
        trips,
        |m| {
            m.push_int(8).new_array().store(2);
            m.load(2).push_int(3).load(L_I).astore();
            m.load(2).push_int(3).aload().store(3);
            m.load(2).array_len().store(4);
        },
    )
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let trips = 150_000;
    let programs: Vec<(&str, Program)> = vec![
        ("arith", arith_program(trips)),
        ("stack", stack_program(trips)),
        ("branch", branch_program(trips)),
        ("field", field_program(trips)),
        ("call", call_program(trips / 4)),
        ("vcall", vcall_program(trips / 4)),
        ("alloc", alloc_program(trips / 4)),
        ("array", array_program(trips / 2)),
    ];

    println!("=== Interpreter dispatch (median steps/sec of {SAMPLES} runs) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>8}   {:>12} {:>12} {:>8}",
        "class", "fast-null", "ref-null", "speedup", "fast-prof", "ref-prof", "speedup"
    );
    println!("{}", "-".repeat(80));
    let mut null_speedups = Vec::new();
    let mut prof_speedups = Vec::new();
    for (name, program) in &programs {
        let fast_null = steps_per_sec(program, InterpreterKind::Fast, false);
        let ref_null = steps_per_sec(program, InterpreterKind::Reference, false);
        let fast_prof = steps_per_sec(program, InterpreterKind::Fast, true);
        let ref_prof = steps_per_sec(program, InterpreterKind::Reference, true);
        let sn = fast_null / ref_null;
        let sp = fast_prof / ref_prof;
        null_speedups.push(sn);
        prof_speedups.push(sp);
        println!(
            "{:<8} {:>12.3e} {:>12.3e} {:>7.2}x   {:>12.3e} {:>12.3e} {:>7.2}x",
            name, fast_null, ref_null, sn, fast_prof, ref_prof, sp
        );
    }
    println!("{}", "-".repeat(80));
    let gn = geomean(&null_speedups);
    let gp = geomean(&prof_speedups);
    println!("geomean speedup: {gn:.2}x (NullObserver), {gp:.2}x (drag profiler)");
    println!(
        "acceptance (>= 2x with NullObserver): {}",
        if gn >= 2.0 { "PASS" } else { "FAIL" }
    );
}
