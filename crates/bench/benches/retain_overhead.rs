//! `retain_overhead` — wall-clock of a fully drag-profiled run with and
//! without retaining-path sampling, per workload. Regenerates the
//! EXPERIMENTS.md "retain-sampling overhead" table.
//!
//! Two variants, each median-of-N after a warm-up, both including the
//! text log encode (sampling adds `retain` lines, so the encode cost is
//! part of the honest bill):
//!
//! * **off** — `VmConfig::profiling()` as shipped (no sampler);
//! * **on** — the same config with the default 1/16 sampling rate: the
//!   mark loop records discovery edges, draws once per newly marked
//!   object, and resolves each hit into a bounded access path.
//!
//! The acceptance target is sampling within 5% of the plain profiled run
//! (ratio ≤ 1.05 on average): the paper's tool already pays a deep GC
//! every 100 KB, and the sampler must stay in that budget's noise.

use std::time::{Duration, Instant};

use heapdrag_core::{profile, LogFormat, VmConfig};
use heapdrag_vm::retain::RetainConfig;
use heapdrag_workloads::all_workloads;

/// Median of `samples` timings of `f`, after one warm-up call.
fn median(samples: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    const SAMPLES: usize = 10;

    println!(
        "=== retain-sampling overhead: median of {SAMPLES} runs, rate 1/16, deep GC every 100 KB ==="
    );
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8}",
        "benchmark", "off µs", "on µs", "samples", "on/off"
    );
    println!("{}", "-".repeat(55));
    let mut ratios = Vec::new();
    for w in all_workloads() {
        let input = (w.default_input)();
        let program = w.original();
        let off = median(SAMPLES, || {
            let run =
                profile(&program, std::hint::black_box(&input), VmConfig::profiling())
                    .expect("profiles");
            run.write_log_to(&program, LogFormat::Text, &mut std::io::sink())
                .expect("encodes");
        });
        let mut sampling = VmConfig::profiling();
        sampling.retain = RetainConfig::from_rate(RetainConfig::DEFAULT_RATE);
        let mut drawn = 0usize;
        let on = median(SAMPLES, || {
            let run = profile(&program, std::hint::black_box(&input), sampling.clone())
                .expect("profiles");
            drawn = run.retains.len();
            run.write_log_to(&program, LogFormat::Text, &mut std::io::sink())
                .expect("encodes");
        });
        let ratio = on.as_secs_f64() / off.as_secs_f64();
        ratios.push(ratio);
        println!(
            "{:<10} {:>12} {:>12} {:>8} {:>8.2}",
            w.name,
            off.as_micros(),
            on.as_micros(),
            drawn,
            ratio
        );
    }
    println!("{}", "-".repeat(55));
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("average on/off ratio: {avg:.2} (target: <= 1.05)");
}
