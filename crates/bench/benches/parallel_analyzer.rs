//! Throughput of the sharded off-line pipeline (parse + aggregate) versus
//! the sequential `shards = 1` baseline.
//!
//! Generates a synthetic trailer log large enough that per-record work
//! dominates, then runs both off-line stages at shard counts 1, 2, 4 and 8,
//! asserting at every count that the report is identical to the sequential
//! one (the determinism contract of `heapdrag_core::parallel`) before
//! printing records/second and speedup.

use std::time::{Duration, Instant};

use heapdrag_core::log::ParsedLog;
use heapdrag_core::{DragReport, ParallelConfig, Pipeline};
use heapdrag_obs::Registry;
use heapdrag_vm::SiteId;

const RECORDS: usize = 200_000;
const CHAINS: usize = 24;
const SAMPLES: usize = 5;

/// A synthetic log with `RECORDS` object records spread over `CHAINS`
/// allocation chains, mixing used/never-used and live-at-exit objects so the
/// aggregation exercises every counter.
fn synthetic_log() -> String {
    let mut text = String::from("heapdrag-log v1\nend 10000000\n");
    for c in 0..CHAINS {
        text.push_str(&format!("chain {c} Main.site{c}@{c}\n"));
    }
    for i in 0..RECORDS {
        let chain = (i * 7) % CHAINS;
        let created = i * 3;
        let freed = created + 200 + (i % 17) * 90;
        let (last_use, use_chain) = if i % 5 == 0 {
            ("-".to_string(), "-".to_string())
        } else {
            ((created + 50 + (i % 11) * 10).to_string(), ((i * 3) % CHAINS).to_string())
        };
        text.push_str(&format!(
            "obj {i} {} {} {created} {freed} {last_use} {chain} {use_chain} {}\n",
            i % 5,
            8 + (i % 29) * 8,
            i % 2,
        ));
        if i % 200 == 0 {
            text.push_str(&format!("gc {created} {} {}\n", i * 12, i / 3));
        }
    }
    text
}

/// Median wall-clock of `SAMPLES` full pipeline runs (after one warm-up),
/// returning the last run's output for the equality check. Each timed run
/// publishes its stage metrics into `registry`, exactly as the CLI does
/// under `--metrics-out` — so the timing here includes (and bounds) the
/// observability overhead.
fn time_pipeline(
    text: &str,
    par: &ParallelConfig,
    registry: &Registry,
) -> (Duration, ParsedLog, DragReport) {
    let pipe = Pipeline::options()
        .shards(par.shards)
        .chunk_records(par.chunk_records);
    let run = || {
        let ingested = pipe.ingest_bytes(text).expect("parses");
        let (parsed, parse_metrics) = (ingested.log, ingested.metrics);
        let (report, analyze_metrics) =
            pipe.analyze_records(&parsed.records, |c| Some(SiteId(c.0)));
        parse_metrics.publish("parse", registry);
        analyze_metrics.publish("analyze", registry);
        (parsed, report)
    };
    run();
    let mut times = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let out = run();
        times.push(start.elapsed());
        last = Some(out);
    }
    times.sort_unstable();
    let (parsed, report) = last.unwrap();
    (times[times.len() / 2], parsed, report)
}

fn main() {
    let text = synthetic_log();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "=== Parallel off-line pipeline: {RECORDS} records, {CHAINS} chains, \
         median of {SAMPLES} runs, {cores} core(s) ==="
    );
    if cores == 1 {
        println!("(single-core host: expect speedup <= 1.00x; this run checks determinism)");
    }
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "shards", "median (ms)", "records/s", "speedup"
    );
    println!("{}", "-".repeat(48));

    let registry = Registry::new();
    let (base_time, base_parsed, base_report) =
        time_pipeline(&text, &ParallelConfig::sequential(), &registry);
    let mut rows = vec![(1usize, base_time)];
    for shards in [2usize, 4, 8] {
        let par = ParallelConfig::with_shards(shards);
        let (t, parsed, report) = time_pipeline(&text, &par, &registry);
        assert_eq!(parsed, base_parsed, "parse diverged at shards = {shards}");
        assert_eq!(report, base_report, "report diverged at shards = {shards}");
        rows.push((shards, t));
    }
    for (shards, t) in rows {
        println!(
            "{:<8} {:>12.2} {:>14.0} {:>9.2}x",
            shards,
            t.as_secs_f64() * 1e3,
            RECORDS as f64 / t.as_secs_f64(),
            base_time.as_secs_f64() / t.as_secs_f64(),
        );
    }
    println!(
        "\n(top site: {} entries; reports byte-identical across all shard counts)",
        base_report.by_nested_site.len()
    );
    let snap = registry.snapshot();
    println!(
        "(metrics: {} parse + {} analyze records published across {} shard timings)",
        snap.counters["offline_parse_records_total"],
        snap.counters["offline_analyze_records_total"],
        snap.histograms["offline_parse_shard_us"].count
            + snap.histograms["offline_analyze_shard_us"].count,
    );
}
