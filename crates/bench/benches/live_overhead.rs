//! `live_overhead` — wall-clock of a fully drag-profiled run, file-logging
//! path vs the in-process live path, per workload. Regenerates the
//! EXPERIMENTS.md "live-mode overhead" table.
//!
//! Three variants, each median-of-N after a warm-up:
//!
//! * **plain** — the uninstrumented run (no observer), the baseline cost
//!   of the program itself;
//! * **file-log** — the paper's pipeline: `DragProfiler` buffers trailer
//!   records, then the text log is encoded (to an in-memory sink, so disk
//!   variance is excluded);
//! * **live** — `run_live` with an unbounded window and the snapshot
//!   cadence pushed past the run length: the VM feeds the SPSC ring while
//!   the consumer thread folds the same trailers into the engine.
//!
//! The acceptance target is live within 10% of file-logging profiling
//! (ratio ≤ 1.10): the ring hand-off and the second thread must not cost
//! more than the record buffering + log encode they replace.

use std::time::{Duration, Instant};

use heapdrag_core::{profile, run_live, LiveOptions, LogFormat, VmConfig};
use heapdrag_vm::interp::Vm;
use heapdrag_workloads::all_workloads;

/// Median of `samples` timings of `f`, after one warm-up call.
fn median(samples: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    const SAMPLES: usize = 10;

    println!("=== live-mode overhead: median of {SAMPLES} runs, deep GC every 100 KB ===");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10}",
        "benchmark", "plain µs", "file-log µs", "live µs", "live/file"
    );
    println!("{}", "-".repeat(58));
    let live_options = LiveOptions {
        // No snapshots: measure the steady-state feed, not rendering.
        every: u64::MAX,
        ..LiveOptions::default()
    };
    let mut ratios = Vec::new();
    for w in all_workloads() {
        let input = (w.default_input)();
        let program = w.original();
        let plain = median(SAMPLES, || {
            Vm::new(&program, VmConfig::default())
                .run(std::hint::black_box(&input))
                .expect("runs");
        });
        let file = median(SAMPLES, || {
            let run =
                profile(&program, std::hint::black_box(&input), VmConfig::profiling())
                    .expect("profiles");
            run.write_log_to(&program, LogFormat::Text, &mut std::io::sink())
                .expect("encodes");
        });
        let live = median(SAMPLES, || {
            let run = run_live(
                &program,
                std::hint::black_box(&input),
                VmConfig::profiling(),
                &live_options,
                None,
                |_: &str| {},
            )
            .expect("live runs");
            assert_eq!(run.dropped, 0, "{}: ring overflowed", w.name);
        });
        let ratio = live.as_secs_f64() / file.as_secs_f64();
        ratios.push(ratio);
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>10.2}",
            w.name,
            plain.as_micros(),
            file.as_micros(),
            live.as_micros(),
            ratio
        );
    }
    println!("{}", "-".repeat(58));
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("average live/file-log ratio: {avg:.2} (target: <= 1.10)");
}
