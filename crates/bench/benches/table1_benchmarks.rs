//! Table 1 — the benchmark programs: class counts, code size, description.
//!
//! The paper counts application classes and source statements; our
//! stand-ins are class count (excluding the six builtins) and static
//! instruction count.

use heapdrag_workloads::all_workloads;

fn main() {
    println!("=== Table 1: the benchmark programs ===");
    println!(
        "{:<10} {:>8} {:>8}  description",
        "benchmark", "classes", "insns"
    );
    println!("{}", "-".repeat(60));
    for w in all_workloads() {
        println!(
            "{:<10} {:>8} {:>8}  {}",
            w.name,
            w.class_count(),
            w.code_stmts(),
            w.description
        );
    }
}
