//! Figure 2 — reachable and in-use heap size vs. allocation time,
//! original vs. revised, for the eight benchmarks with savings (db is
//! omitted, as in the paper).
//!
//! Emits one CSV per benchmark under `target/paper-artefacts/` with the
//! four series, and prints a terminal chart of the original run per
//! benchmark. The areas between the curves are the integrals of Table 2.

use std::fmt::Write as _;

use heapdrag_bench::{artefact_dir, measure_pair};
use heapdrag_core::{Timeline, VmConfig};
use heapdrag_workloads::all_workloads;

fn main() {
    println!("=== Figure 2: reachable/in-use heap curves ===");
    let dir = artefact_dir();
    // Sample more finely than the default 100 KB so each panel has a
    // usable number of points at our (scaled-down) heap sizes.
    let mut config = VmConfig::profiling();
    config.deep_gc_interval = Some(16 * 1024);

    for w in all_workloads() {
        if w.name == "db" {
            continue; // "The graph for db is not shown." (§4.1)
        }
        let input = (w.default_input)();
        let pair = measure_pair(&w, &input, config.clone()).expect("workload runs");
        let to = Timeline::from_run(&pair.original);
        let tr = Timeline::from_run(&pair.revised);

        // CSV: time_orig,reachable_orig,inuse_orig and the revised curves
        // (the revised run has its own, shorter time axis).
        let mut csv = String::from("series,time,reachable,in_use\n");
        for p in &to.points {
            let _ = writeln!(csv, "original,{},{},{}", p.time, p.reachable, p.in_use);
        }
        for p in &tr.points {
            let _ = writeln!(csv, "revised,{},{},{}", p.time, p.reachable, p.in_use);
        }
        let path = dir.join(format!("figure2_{}.csv", w.name));
        std::fs::write(&path, csv).expect("write figure CSV");

        println!("\n--- {} (original run; '#' reachable, '.' in use) ---", w.name);
        print!("{}", to.ascii_chart(10));
        println!(
            "revised peak reachable: {} KB (original {} KB); CSV: {}",
            tr.peak_reachable() / 1024,
            to.peak_reachable() / 1024,
            path.display()
        );
    }
}
