//! Table 3 — drag and space savings for *alternate* inputs.
//!
//! The paper re-ran every rewritten benchmark on an input other than the
//! one the tool analyzed, to check the transformations generalise:
//! "for raytrace, euler, mc, juru and analyzer space saving results were
//! similar … for javac, jack and jess some space is saved, although less
//! than … for the initial input."

use heapdrag_bench::{measure_pair, savings_header, savings_row};
use heapdrag_core::VmConfig;
use heapdrag_workloads::all_workloads;

fn main() {
    println!("=== Table 3: drag and space savings, alternate inputs ===");
    println!("{}", savings_header());
    for w in all_workloads() {
        let input = (w.alternate_input)();
        let pair = measure_pair(&w, &input, VmConfig::profiling()).expect("workload runs");
        assert_eq!(
            pair.original.outcome.output, pair.revised.outcome.output,
            "{}: variants must agree on the alternate input too",
            w.name
        );
        println!("{}", savings_row(&pair));
    }
    println!("(rewritings were chosen on the default input; savings persisting here\n show the transformations generalise across inputs, §4.1)");
}
