//! Table 4 — runtime savings of the revised benchmarks.
//!
//! The paper measures wall-clock time under Sun HotSpot 1.3 Client, chosen
//! because its *generational* collector delays reclamation and therefore
//! shrinks the benefit of drag removal; savings remain small but mostly
//! positive (average ~1 %), driven by (i) avoided allocation and
//! initialisation and (ii) fewer GC invocations.
//!
//! We reproduce both effects with the VM's generational mode: Criterion
//! measures wall-clock per variant, and a deterministic cost model
//! (instructions + allocation + GC tracing work) reports the
//! platform-independent saving.

use criterion::{criterion_group, criterion_main, Criterion};
use heapdrag_vm::interp::{Vm, VmConfig};
use heapdrag_workloads::all_workloads;

fn runtime_config() -> VmConfig {
    VmConfig {
        generational: true,
        nursery_bytes: 64 * 1024,
        // A soft heap bound (the paper's fixed 32/48 MB heaps, scaled).
        gc_trigger: Some(768 * 1024),
        ..VmConfig::default()
    }
}

fn bench_runtimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for w in all_workloads() {
        let input = (w.default_input)();
        let original = w.original();
        let revised = w.revised();
        group.bench_function(format!("{}/original", w.name), |b| {
            b.iter(|| {
                Vm::new(&original, runtime_config())
                    .run(std::hint::black_box(&input))
                    .expect("runs")
            })
        });
        group.bench_function(format!("{}/revised", w.name), |b| {
            b.iter(|| {
                Vm::new(&revised, runtime_config())
                    .run(std::hint::black_box(&input))
                    .expect("runs")
            })
        });
    }
    group.finish();

    // Deterministic cost model — the Table 4 "runtime saving" column
    // without measurement noise.
    println!("\n=== Table 4 (cost model): runtime savings under generational GC ===");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "benchmark", "orig cost", "revised cost", "saving %"
    );
    println!("{}", "-".repeat(52));
    let mut sum = 0.0;
    let mut n = 0.0;
    for w in all_workloads() {
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), runtime_config())
            .run(&input)
            .expect("runs");
        let r = Vm::new(&w.revised(), runtime_config())
            .run(&input)
            .expect("runs");
        let saving = (1.0 - r.cost_units() as f64 / o.cost_units() as f64) * 100.0;
        println!(
            "{:<10} {:>14} {:>14} {:>10.2}",
            w.name,
            o.cost_units(),
            r.cost_units(),
            saving
        );
        sum += saving;
        n += 1.0;
    }
    println!("{}", "-".repeat(52));
    println!("{:<10} {:>40.2}", "average", sum / n);
    println!("(paper: between -0.38% and 2.32%, average ~1.07%)");
}

criterion_group!(benches, bench_runtimes);
criterion_main!(benches);
