//! Table 4 — runtime savings of the revised benchmarks.
//!
//! The paper measures wall-clock time under Sun HotSpot 1.3 Client, chosen
//! because its *generational* collector delays reclamation and therefore
//! shrinks the benefit of drag removal; savings remain small but mostly
//! positive (average ~1 %), driven by (i) avoided allocation and
//! initialisation and (ii) fewer GC invocations.
//!
//! We reproduce both effects with the VM's generational mode: a plain
//! `std::time::Instant` harness measures wall-clock per variant, and a
//! deterministic cost model (instructions + allocation + GC tracing work)
//! reports the platform-independent saving.

use std::time::{Duration, Instant};

use heapdrag_core::profile;
use heapdrag_vm::interp::{InterpreterKind, Vm, VmConfig};
use heapdrag_workloads::all_workloads;

fn runtime_config() -> VmConfig {
    VmConfig {
        generational: true,
        nursery_bytes: 64 * 1024,
        // A soft heap bound (the paper's fixed 32/48 MB heaps, scaled).
        gc_trigger: Some(768 * 1024),
        ..VmConfig::default()
    }
}

/// Median wall-clock of `samples` runs (after one warm-up run).
fn time_variant(program: &heapdrag_vm::program::Program, input: &[i64], samples: usize) -> Duration {
    Vm::new(program, runtime_config())
        .run(std::hint::black_box(input))
        .expect("runs");
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            Vm::new(program, runtime_config())
                .run(std::hint::black_box(input))
                .expect("runs");
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    const SAMPLES: usize = 10;

    println!("=== Table 4 (wall-clock): median of {SAMPLES} runs, generational GC ===");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "benchmark", "orig (µs)", "revised (µs)", "saving %"
    );
    println!("{}", "-".repeat(52));
    for w in all_workloads() {
        let input = (w.default_input)();
        let original = w.original();
        let revised = w.revised();
        let to = time_variant(&original, &input, SAMPLES);
        let tr = time_variant(&revised, &input, SAMPLES);
        let saving = (1.0 - tr.as_secs_f64() / to.as_secs_f64()) * 100.0;
        println!(
            "{:<10} {:>14} {:>14} {:>10.2}",
            w.name,
            to.as_micros(),
            tr.as_micros(),
            saving
        );
    }

    // Deterministic cost model — the Table 4 "runtime saving" column
    // without measurement noise.
    println!("\n=== Table 4 (cost model): runtime savings under generational GC ===");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "benchmark", "orig cost", "revised cost", "saving %"
    );
    println!("{}", "-".repeat(52));
    let mut sum = 0.0;
    let mut n = 0.0;
    for w in all_workloads() {
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), runtime_config())
            .run(&input)
            .expect("runs");
        let r = Vm::new(&w.revised(), runtime_config())
            .run(&input)
            .expect("runs");
        let saving = (1.0 - r.cost_units() as f64 / o.cost_units() as f64) * 100.0;
        println!(
            "{:<10} {:>14} {:>14} {:>10.2}",
            w.name,
            o.cost_units(),
            r.cost_units(),
            saving
        );
        sum += saving;
        n += 1.0;
    }
    println!("{}", "-".repeat(52));
    println!("{:<10} {:>40.2}", "average", sum / n);
    println!("(paper: between -0.38% and 2.32%, average ~1.07%)");

    // Instrumentation overhead, before/after the pre-decoded interpreter:
    // wall-clock of a full drag-profiled run (deep GC every 100 KB)
    // against the plain run, per interpreter. "speedup" is the end-to-end
    // profiled-run improvement the fast interpreter delivers.
    println!("\n=== Profiling overhead: reference (before) vs fast (after) ===");
    println!(
        "{:<10} {:>9} {:>9} {:>6} {:>9} {:>9} {:>6} {:>8}",
        "benchmark", "ref µs", "ref-prof", "ovh", "fast µs", "fast-prof", "ovh", "speedup"
    );
    println!("{}", "-".repeat(74));
    let mut speedups = Vec::new();
    for w in all_workloads() {
        let input = (w.default_input)();
        let program = w.original();
        let timed = |kind: InterpreterKind, profiled: bool| -> Duration {
            let plain = VmConfig {
                interpreter: kind,
                ..VmConfig::default()
            };
            let prof = VmConfig {
                interpreter: kind,
                ..VmConfig::profiling()
            };
            let once = || {
                let start = Instant::now();
                if profiled {
                    profile(&program, std::hint::black_box(&input), prof.clone()).expect("runs");
                } else {
                    Vm::new(&program, plain.clone())
                        .run(std::hint::black_box(&input))
                        .expect("runs");
                }
                start.elapsed()
            };
            once(); // warm-up
            let mut times: Vec<Duration> = (0..SAMPLES).map(|_| once()).collect();
            times.sort_unstable();
            times[times.len() / 2]
        };
        let ref_plain = timed(InterpreterKind::Reference, false);
        let ref_prof = timed(InterpreterKind::Reference, true);
        let fast_plain = timed(InterpreterKind::Fast, false);
        let fast_prof = timed(InterpreterKind::Fast, true);
        let speedup = ref_prof.as_secs_f64() / fast_prof.as_secs_f64();
        speedups.push(speedup);
        println!(
            "{:<10} {:>9} {:>9} {:>5.2}x {:>9} {:>9} {:>5.2}x {:>7.2}x",
            w.name,
            ref_plain.as_micros(),
            ref_prof.as_micros(),
            ref_prof.as_secs_f64() / ref_plain.as_secs_f64(),
            fast_plain.as_micros(),
            fast_prof.as_micros(),
            fast_prof.as_secs_f64() / fast_plain.as_secs_f64(),
            speedup,
        );
    }
    println!("{}", "-".repeat(74));
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("average profiled-run speedup from the fast interpreter: {avg:.2}x");
}
