//! # heapdrag-bench
//!
//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§4). Each `benches/` target prints one artefact:
//!
//! | target | paper artefact |
//! |---|---|
//! | `table1_benchmarks` | Table 1 — the benchmark programs |
//! | `figure2_timelines` | Figure 2 — reachable/in-use curves |
//! | `table2_savings` | Table 2 — drag & space savings, original inputs |
//! | `table3_alternate_inputs` | Table 3 — savings on alternate inputs |
//! | `table4_runtime` | Table 4 — runtime savings |
//! | `table5_rewritings` | Table 5 — summary of rewritings |
//! | `ablation_auto_vs_manual` | (ours) §5 automation vs manual rewrites |
//! | `ablation_gc_interval` | (ours) §2.1.1 deep-GC interval precision |
//! | `optimize_fleet` | (ours) fleet-wide drag reclaimed by the closed loop |

#![warn(missing_docs)]

use heapdrag_core::{profile, Integrals, ProfileRun, SavingsReport, VmConfig};
use heapdrag_vm::error::VmError;
use heapdrag_workloads::Workload;

/// A profiled original/revised pair for one workload and input.
#[derive(Debug)]
pub struct MeasuredPair {
    /// Workload name.
    pub name: &'static str,
    /// Profile of the original variant.
    pub original: ProfileRun,
    /// Profile of the revised variant.
    pub revised: ProfileRun,
}

impl MeasuredPair {
    /// Integrals of the original run.
    pub fn original_integrals(&self) -> Integrals {
        Integrals::from_records(&self.original.records)
    }

    /// Integrals of the revised run.
    pub fn revised_integrals(&self) -> Integrals {
        Integrals::from_records(&self.revised.records)
    }

    /// The savings report for the pair.
    pub fn savings(&self) -> SavingsReport {
        SavingsReport::new(self.original_integrals(), self.revised_integrals())
    }
}

/// Profiles both variants of `workload` on `input`.
///
/// # Errors
///
/// Propagates VM errors from either run (both programs are expected to be
/// correct; an error here is a harness bug).
pub fn measure_pair(
    workload: &Workload,
    input: &[i64],
    config: VmConfig,
) -> Result<MeasuredPair, VmError> {
    let original = profile(&workload.original(), input, config.clone())?;
    let revised = profile(&workload.revised(), input, config)?;
    Ok(MeasuredPair {
        name: workload.name,
        original,
        revised,
    })
}

/// Renders one row of the Table 2/3 layout.
pub fn savings_row(pair: &MeasuredPair) -> String {
    let o = pair.original_integrals();
    let r = pair.revised_integrals();
    let s = pair.savings();
    format!(
        "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>9.2} {:>9.2}",
        pair.name,
        r.reachable_mb2(),
        r.in_use_mb2(),
        o.reachable_mb2(),
        o.in_use_mb2(),
        s.drag_saving_pct(),
        s.space_saving_pct(),
    )
}

/// The Table 2/3 header matching [`savings_row`].
pub fn savings_header() -> String {
    format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}\n{}",
        "benchmark",
        "red.reach",
        "red.inuse",
        "orig.reach",
        "orig.inuse",
        "drag%",
        "space%",
        "-".repeat(82)
    )
}

/// Directory where figure CSVs and other artefacts land.
pub fn artefact_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("paper-artefacts");
    std::fs::create_dir_all(&dir).expect("create artefact dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_workloads::workload_by_name;

    #[test]
    fn measure_pair_produces_consistent_savings() {
        let w = workload_by_name("juru").expect("juru exists");
        let input = (w.default_input)();
        let pair = measure_pair(&w, &input, VmConfig::profiling()).unwrap();
        let s = pair.savings();
        assert!(s.drag_saving_pct() > 0.0);
        assert_eq!(
            pair.original.outcome.output, pair.revised.outcome.output,
            "behaviour preserved"
        );
        let row = savings_row(&pair);
        assert!(row.starts_with("juru"));
        assert!(savings_header().contains("drag%"));
    }
}
