//! Golden snapshot tests: both render formats are pinned byte-for-byte.
//!
//! These strings are load-bearing — CI diffs metric dumps, so any change
//! to the layout is a breaking change and must be made here deliberately.

use heapdrag_obs::Registry;

/// One registry exercising every metric type, labels, and negatives.
fn golden_registry() -> Registry {
    let registry = Registry::new();
    registry.counter("alpha_total").add(3);
    registry.counter("vm_dispatch_total{class=\"arith\"}").add(7);
    registry.gauge("beta_bytes").set(-2);
    let span_us = registry.histogram("span_us");
    span_us.observe(0); // bucket bound 0
    span_us.observe(1); // bucket bound 1
    span_us.observe(5); // bucket bound 7
    span_us.observe(1_000_000); // bucket bound 2^20 - 1
    registry
}

#[test]
fn golden_json() {
    let expected = r#"{
  "counters": {
    "alpha_total": 3,
    "vm_dispatch_total{class=\"arith\"}": 7
  },
  "gauges": {
    "beta_bytes": -2
  },
  "histograms": {
    "span_us": {"count": 4, "sum": 1000006, "buckets": [[0, 1], [1, 1], [7, 1], [1048575, 1]]}
  }
}
"#;
    assert_eq!(golden_registry().render_json(), expected);
}

#[test]
fn golden_prometheus() {
    let expected = "\
# TYPE alpha_total counter
alpha_total 3
# TYPE vm_dispatch_total counter
vm_dispatch_total{class=\"arith\"} 7
# TYPE beta_bytes gauge
beta_bytes -2
# TYPE span_us histogram
span_us_bucket{le=\"0\"} 1
span_us_bucket{le=\"1\"} 2
span_us_bucket{le=\"7\"} 3
span_us_bucket{le=\"1048575\"} 4
span_us_bucket{le=\"+Inf\"} 4
span_us_sum 1000006
span_us_count 4
";
    assert_eq!(golden_registry().render_prometheus(), expected);
}

#[test]
fn empty_registry_renders_fixed_skeleton() {
    let registry = Registry::new();
    assert_eq!(
        registry.render_json(),
        "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
    );
    assert_eq!(registry.render_prometheus(), "");
}

#[test]
fn renders_are_reproducible() {
    // Two registries populated identically render identical bytes,
    // regardless of registration order.
    let a = golden_registry();
    let b = Registry::new();
    let span_us = b.histogram("span_us");
    b.gauge("beta_bytes").set(-2);
    b.counter("vm_dispatch_total{class=\"arith\"}").add(7);
    for v in [1_000_000, 5, 1, 0] {
        span_us.observe(v);
    }
    b.counter("alpha_total").add(3);
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_prometheus(), b.render_prometheus());
}
