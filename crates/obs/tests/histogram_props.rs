//! Property tests for the log2 histogram, driven by `heapdrag-testkit`.
//!
//! Replay any failure with the printed `TESTKIT_SEED` / `TESTKIT_CASES`.

use heapdrag_obs::histogram::{bucket_bound, bucket_index};
use heapdrag_obs::{Histogram, NUM_BUCKETS};
use heapdrag_testkit::{check, Rng};

/// Samples spanning many bucket magnitudes, bounded below `2^32` so test
/// sums never overflow `u64` even over thousands of observations.
fn sample(rng: &mut Rng) -> u64 {
    let bits = rng.range_u32(0, 33);
    if bits == 0 {
        0
    } else {
        rng.next_u64() >> (64 - bits)
    }
}

#[test]
fn bucket_counts_sum_to_sample_count_and_sum_is_exact() {
    check("histogram-totals", 200, |rng| {
        let samples = rng.vec(0, 64, sample);
        let h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(
            counts.iter().sum::<u64>(),
            samples.len() as u64,
            "bucket counts must sum to the observation count"
        );
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.sum(), samples.iter().sum::<u64>(), "sum is exact");
        // Every sample landed in the bucket whose bound covers it.
        for &v in &samples {
            let i = bucket_index(v);
            assert!(counts[i] > 0, "sample {v} missing from bucket {i}");
            assert!(v <= bucket_bound(i), "{v} exceeds its bucket bound");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "{v} fits a lower bucket");
            }
        }
    });
}

#[test]
fn bucket_bounds_are_strictly_monotone() {
    for i in 1..NUM_BUCKETS {
        assert!(
            bucket_bound(i - 1) < bucket_bound(i),
            "bounds must strictly increase at {i}"
        );
    }
    check("snapshot-bounds-monotone", 100, |rng| {
        let h = Histogram::new();
        for v in rng.vec(0, 64, sample) {
            h.observe(v);
        }
        let snap = h.snapshot();
        for pair in snap.buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "snapshot bounds out of order");
        }
        assert!(
            snap.buckets.iter().all(|&(_, n)| n > 0),
            "snapshot lists only non-empty buckets"
        );
    });
}

#[test]
fn merge_is_commutative() {
    check("merge-commutes", 200, |rng| {
        let xs = rng.vec(0, 48, sample);
        let ys = rng.vec(0, 48, sample);
        let build = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let ab = build(&xs);
        ab.merge_from(&build(&ys));
        let ba = build(&ys);
        ba.merge_from(&build(&xs));
        assert_eq!(
            ab.snapshot(),
            ba.snapshot(),
            "merge(a, b) must equal merge(b, a)"
        );
        assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
    });
}

#[test]
fn identical_seeds_replay_identical_histograms() {
    // The TESTKIT_SEED replay contract: the same seed drives the same
    // sample stream, hence byte-identical snapshots.
    let run = |seed: u64| {
        let mut rng = Rng::new(seed);
        let h = Histogram::new();
        for v in rng.vec(32, 33, sample) {
            h.observe(v);
        }
        h.snapshot()
    };
    assert_eq!(run(0xFEED), run(0xFEED));
    assert_ne!(run(1), run(2), "distinct seeds should diverge");
}
