//! Point-in-time metric snapshots and their two render formats.
//!
//! Both renders are **byte-stable**: keys come from `BTreeMap`s (sorted),
//! every value is an integer, and the layout below is fixed. Golden tests
//! in `tests/golden_render.rs` pin the exact bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// A point-in-time copy of every metric in a [`crate::Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by full metric name (labels embedded).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by full metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by full metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Escapes a metric name for use as a JSON string literal body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a full metric name into `(base, labels)` where `labels` is the
/// text between the braces, e.g. `a{x="1"}` → `("a", Some("x=\"1\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) => {
            let rest = &name[open..];
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or("");
            (&name[..open], Some(inner))
        }
        None => (name, None),
    }
}

impl Snapshot {
    /// Renders the snapshot as pretty-printed JSON with sorted keys.
    ///
    /// Layout (fixed, diffable): one key per line under `"counters"` /
    /// `"gauges"`, histogram objects on a single line as
    /// `{"count": N, "sum": S, "buckets": [[bound, count], ...]}` where
    /// `buckets` lists only non-empty buckets by ascending inclusive
    /// upper bound. Ends with a newline.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(out, "    \"{}\": {v}", json_escape(name));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        let mut first = true;
        for (name, v) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(out, "    \"{}\": {v}", json_escape(name));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(name),
                h.count,
                h.sum
            );
            for (i, (bound, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bound}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });

        out.push_str("}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Series whose names embed labels (`base{key="v"}`) are grouped under
    /// a single `# TYPE base ...` line. Histograms emit cumulative
    /// `base_bucket{le="bound"}` lines at each non-empty inclusive bound
    /// plus the conventional `le="+Inf"`, then `base_sum` and
    /// `base_count`; embedded labels are merged ahead of `le`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let mut last_base: Option<String> = None;
        for (name, v) in &self.counters {
            let (base, _) = split_labels(name);
            if last_base.as_deref() != Some(base) {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_base = Some(base.to_string());
            }
            let _ = writeln!(out, "{name} {v}");
        }

        let mut last_base: Option<String> = None;
        for (name, v) in &self.gauges {
            let (base, _) = split_labels(name);
            if last_base.as_deref() != Some(base) {
                let _ = writeln!(out, "# TYPE {base} gauge");
                last_base = Some(base.to_string());
            }
            let _ = writeln!(out, "{name} {v}");
        }

        let mut last_base: Option<String> = None;
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            if last_base.as_deref() != Some(base) {
                let _ = writeln!(out, "# TYPE {base} histogram");
                last_base = Some(base.to_string());
            }
            let prefix = match labels {
                Some(l) if !l.is_empty() => format!("{l},"),
                _ => String::new(),
            };
            let mut cumulative = 0u64;
            for (bound, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"+Inf\"}} {}", h.count);
            match labels {
                Some(l) if !l.is_empty() => {
                    let _ = writeln!(out, "{base}_sum{{{l}}} {}", h.sum);
                    let _ = writeln!(out, "{base}_count{{{l}}} {}", h.count);
                }
                _ => {
                    let _ = writeln!(out, "{base}_sum {}", h.sum);
                    let _ = writeln!(out, "{base}_count {}", h.count);
                }
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_labels_handles_both_forms() {
        assert_eq!(split_labels("plain_total"), ("plain_total", None));
        assert_eq!(
            split_labels("vm_dispatch_total{class=\"arith\"}"),
            ("vm_dispatch_total", Some("class=\"arith\""))
        );
    }

    #[test]
    fn empty_snapshot_renders_empty_sections() {
        let s = Snapshot::default();
        assert_eq!(
            s.render_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
        assert_eq!(s.render_prometheus(), "");
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let mut s = Snapshot::default();
        s.counters.insert("d{class=\"a\"}".to_string(), 1);
        s.counters.insert("d{class=\"b\"}".to_string(), 2);
        let prom = s.render_prometheus();
        assert_eq!(prom.matches("# TYPE d counter").count(), 1);
        assert!(prom.contains("d{class=\"a\"} 1\n"));
        assert!(prom.contains("d{class=\"b\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut s = Snapshot::default();
        s.histograms.insert(
            "lat_us".to_string(),
            HistogramSnapshot {
                count: 3,
                sum: 12,
                buckets: vec![(1, 2), (7, 1)],
            },
        );
        let prom = s.render_prometheus();
        assert!(prom.contains("lat_us_bucket{le=\"1\"} 2\n"));
        assert!(prom.contains("lat_us_bucket{le=\"7\"} 3\n"));
        assert!(prom.contains("lat_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(prom.contains("lat_us_sum 12\n"));
        assert!(prom.contains("lat_us_count 3\n"));
    }

    #[test]
    fn json_escapes_quotes_in_names() {
        let mut s = Snapshot::default();
        s.counters.insert("d{class=\"a\"}".to_string(), 1);
        assert!(s.render_json().contains("\"d{class=\\\"a\\\"}\": 1"));
    }
}
