//! Monotone counters and set-or-add gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
///
/// Cloning yields another handle to the same underlying value; increments
/// are single relaxed atomic adds, safe on any hot path.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a standalone counter (registry-less; mostly for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can be set or adjusted.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a standalone gauge (registry-less; mostly for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is greater, leaving it unchanged
    /// otherwise — a monotone high-water mark, safe to publish from
    /// several threads at once.
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new();
        g.set_max(5);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }
}
