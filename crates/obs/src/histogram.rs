//! Fixed-log2-bucket histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values whose bit
//! width is `i`, i.e. the half-open magnitude range `(2^(i-1) - 1, 2^i - 1]`
//! expressed as inclusive upper bounds `2^i - 1`. With 65 buckets the full
//! `u64` domain is covered exactly and the bounds are strictly monotone —
//! `0, 1, 3, 7, …, 2^63 - 1, u64::MAX` — so no `+Inf` overflow bucket is
//! needed at the storage level (the Prometheus renderer still emits the
//! conventional `le="+Inf"` line).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::span::Span;

/// Number of buckets: the value 0, plus one per `u64` bit width.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, otherwise the value's bit width.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`. Strictly monotone in `i`.
///
/// # Panics
///
/// Panics if `i >= NUM_BUCKETS`.
pub fn bucket_bound(i: usize) -> u64 {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i == 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` samples with fixed log2 buckets.
///
/// Cloning yields another handle to the same underlying buckets; an
/// observation is three relaxed atomic adds.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<Inner>,
}

/// A point-in-time copy of a histogram: count, exact sum, and the
/// non-empty buckets as `(inclusive upper bound, count)` pairs in bound
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl Histogram {
    /// Creates a standalone histogram (registry-less; mostly for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration as integer microseconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Starts a span timer; the elapsed time is recorded (as microseconds)
    /// when the returned [`Span`] drops.
    pub fn start_span(&self) -> Span {
        Span::new(self.clone())
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, indexed by [`bucket_index`].
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }

    /// Adds every observation of `other` into `self`. Addition is
    /// commutative and associative, so `a.merge_from(b)` and
    /// `b.merge_from(a)` produce identical snapshots from identical inputs.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..NUM_BUCKETS {
            let n = other.inner.buckets[i].load(Ordering::Relaxed);
            if n != 0 {
                self.inner.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner
            .count
            .fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = self.bucket_counts();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(i, &n)| (bucket_bound(i), n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bound is the largest value of its own bucket.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound {i}");
        }
    }

    #[test]
    fn observations_land_and_sum() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(5);
        h.observe(5);
        h.observe(1 << 40);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + (1 << 40));
        let snap = h.snapshot();
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (7, 2), ((1u64 << 41) - 1, 1)]
        );
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(1);
        b.observe(1);
        b.observe(100);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 102);
        assert_eq!(a.snapshot().buckets, vec![(1, 2), (127, 1)]);
    }

    #[test]
    fn duration_is_recorded_in_micros() {
        let h = Histogram::new();
        h.observe_duration(Duration::from_millis(3));
        assert_eq!(h.sum(), 3000);
    }
}
