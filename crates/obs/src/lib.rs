//! # heapdrag-obs
//!
//! Zero-dependency observability for the heapdrag pipeline: [`Counter`]s,
//! [`Gauge`]s, fixed-log2-bucket [`Histogram`]s, and lightweight [`Span`]
//! timers, all behind a cheaply-cloneable [`Registry`] that renders both
//! Prometheus text format and a stable sorted-key JSON snapshot.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths touch no locks.** Every metric handle is an `Arc` around
//!    plain atomics updated with `Ordering::Relaxed`; the registry's mutex
//!    is taken only at registration and snapshot time.
//! 2. **Output is byte-stable.** Snapshots iterate `BTreeMap`s (sorted
//!    keys) and every value is an integer (histogram sums are exact `u64`
//!    totals, timings are integer microseconds), so renders are diffable
//!    in CI with no float-formatting variance.
//! 3. **Zero dependencies.** Standard library only, like the rest of the
//!    workspace.
//!
//! Metric names may embed Prometheus-style labels directly, e.g.
//! `vm_dispatch_total{class="arith"}`; the Prometheus renderer groups such
//! series under one `# TYPE` line and merges histogram labels with `le`.
//!
//! The pipeline registers its families by subsystem prefix: `heapdrag_*`
//! for the profiler/analyzer core, `heapdrag_serve_*` for the
//! multi-session service, `heapdrag_optimize_*` for the fleet optimizer,
//! and `heapdrag_live_*` for in-process live mode (events fed, ring
//! drops, snapshots emitted, unmatched events, ring capacity).
//!
//! ```
//! use heapdrag_obs::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("requests_total").inc();
//! registry.gauge("queue_depth").set(3);
//! let lat = registry.histogram("latency_us");
//! lat.observe(180);
//! {
//!     let _span = lat.start_span(); // records elapsed µs on drop
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["requests_total"], 1);
//! assert!(snapshot.render_prometheus().contains("# TYPE latency_us histogram"));
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::Registry;
pub use snapshot::Snapshot;
pub use span::Span;
