//! The metric registry: named handles, get-or-register semantics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::snapshot::Snapshot;

#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A collection of named metrics.
///
/// Cloning a `Registry` yields another handle to the same collection, so
/// it can be passed by value across layers without lifetimes.
///
/// # Invariants
///
/// * **The lock is cold.** The internal mutex guards only registration
///   and snapshotting; the returned [`Counter`]/[`Gauge`]/[`Histogram`]
///   handles update their values through lock-free relaxed atomics, so
///   instrumented hot paths never contend.
/// * **A name has one type, forever.** Re-requesting a name returns a
///   handle to the same metric; requesting it as a different type panics
///   (always a programming error, never data-dependent).
/// * **Renders are byte-stable.** Names may embed Prometheus-style
///   labels (`vm_dispatch_total{class="arith"}`); keys sort
///   lexicographically in every render, so identical contents produce
///   identical JSON and Prometheus text, byte for byte — the property
///   the golden-snapshot and shard-parity tests rely on.
/// * **Snapshots are self-consistent per metric**, not cross-metric:
///   each value is read atomically, but concurrent writers may land
///   between reads of different metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type —
    /// always a programming error, never data-dependent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time copy of every metric, with sorted keys.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Shorthand for `self.snapshot().render_json()`.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }

    /// Shorthand for `self.snapshot().render_prometheus()`.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("hits").inc();
        r.counter("hits").inc();
        assert_eq!(r.snapshot().counters["hits"], 2);
    }

    #[test]
    fn clones_share_the_collection() {
        let r = Registry::new();
        let r2 = r.clone();
        r.gauge("depth").set(5);
        assert_eq!(r2.snapshot().gauges["depth"], 5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x").inc();
        r.gauge("x");
    }

    #[test]
    fn snapshot_has_sorted_keys() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        let snap = r.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, ["alpha", "zeta"]);
    }
}
