//! Lightweight span timers: measure a scope, record into a histogram.

use std::time::Instant;

use crate::histogram::Histogram;

/// A running span timer. On drop (or [`Span::finish`]) the elapsed
/// wall-clock is recorded into its histogram as integer microseconds.
///
/// ```
/// use heapdrag_obs::Registry;
///
/// let registry = Registry::new();
/// let hist = registry.histogram("parse_us");
/// {
///     let _span = hist.start_span();
///     // ... timed work ...
/// } // recorded here
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Instant,
}

impl Span {
    pub(crate) fn new(histogram: Histogram) -> Self {
        Span {
            histogram,
            start: Instant::now(),
        }
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Ends the span now, recording the elapsed time. Equivalent to
    /// dropping it; provided so call sites can be explicit.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

/// Times `f`, recording its elapsed wall-clock into `histogram`.
pub fn time<R>(histogram: &Histogram, f: impl FnOnce() -> R) -> R {
    let _span = histogram.start_span();
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        h.start_span().finish();
        drop(h.start_span());
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn time_passes_the_result_through() {
        let h = Histogram::new();
        let v = time(&h, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }
}
