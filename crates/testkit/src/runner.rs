//! The property runner: per-case seed derivation, panic capture, and
//! failing-seed reporting.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng};

/// Base seed when neither `TESTKIT_SEED` nor an explicit config overrides
/// it. A fixed default keeps CI runs hermetic and reproducible.
pub const DEFAULT_BASE_SEED: u64 = 0x6865_6170_6472_6167; // "heapdrag"

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases to run.
    pub cases: u32,
    /// Base seed; case `i` runs with `splitmix64(base ^ i)`.
    pub base_seed: u64,
}

impl Config {
    /// `cases` cases from the default base seed, then overridden by the
    /// `TESTKIT_SEED` / `TESTKIT_CASES` environment variables if set.
    pub fn from_env(cases: u32) -> Config {
        let base_seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(DEFAULT_BASE_SEED);
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(cases);
        Config { cases, base_seed }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The seed of case `case` under `base_seed`.
///
/// When replaying a reported failure, `TESTKIT_SEED` is set to the *case*
/// seed and `TESTKIT_CASES=1`, so case 0 of the replay must reproduce it:
/// `case_seed(s, 0) == splitmix64(s)` for every `s`, and the failure
/// report prints the pre-mix value.
pub fn case_seed(base_seed: u64, case: u32) -> u64 {
    splitmix64(base_seed ^ u64::from(case))
}

/// Runs `property` for `config.cases` cases, each with a fresh [`Rng`]
/// seeded deterministically from the base seed. On panic, prints the case
/// number and the `TESTKIT_SEED` value that replays exactly that case,
/// then re-raises the panic so the test harness reports a failure.
pub fn check_with(name: &str, config: Config, property: impl Fn(&mut Rng)) {
    for case in 0..config.cases {
        let replay = config.base_seed ^ u64::from(case);
        let mut rng = Rng::new(case_seed(config.base_seed, case));
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "testkit: property `{name}` failed on case {case} of {cases}; \
                 replay with TESTKIT_SEED={replay:#x} TESTKIT_CASES=1",
                cases = config.cases,
            );
            resume_unwind(panic);
        }
    }
}

/// [`check_with`] under [`Config::from_env`] — the everyday entry point.
pub fn check(name: &str, cases: u32, property: impl Fn(&mut Rng)) {
    check_with(name, Config::from_env(cases), property);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let counter = std::cell::Cell::new(0u32);
        check_with(
            "counts",
            Config { cases: 17, base_seed: 1 },
            |_| counter.set(counter.get() + 1),
        );
        assert_eq!(counter.get(), 17);
    }

    #[test]
    fn cases_see_distinct_seeds() {
        let seeds = std::cell::RefCell::new(Vec::new());
        check_with(
            "seeds",
            Config { cases: 8, base_seed: 9 },
            |rng| seeds.borrow_mut().push(rng.next_u64()),
        );
        let mut v = seeds.borrow().clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 8, "every case starts from a distinct stream");
    }

    #[test]
    fn replay_seed_reproduces_the_case() {
        // The runner reports `base ^ case` as the replay seed; running one
        // case from that base must regenerate the same stream.
        let base = 0xDEAD_BEEF;
        let case = 5;
        let direct = Rng::new(case_seed(base, case)).next_u64();
        let replay = Rng::new(case_seed(base ^ case as u64, 0)).next_u64();
        assert_eq!(direct, replay);
    }

    #[test]
    fn failing_case_panics_through() {
        let result = std::panic::catch_unwind(|| {
            check_with(
                "fails",
                Config { cases: 4, base_seed: 2 },
                |rng| {
                    let v = rng.range_u64(0, 100);
                    assert!(v >= 200, "always fails");
                },
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("zz"), None);
    }
}
