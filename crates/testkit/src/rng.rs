//! A deterministic SplitMix64 generator plus the sampling helpers the
//! workspace's property tests need.

/// One SplitMix64 step: mixes `state + GOLDEN` into a well-distributed word.
///
/// Public so seed-derivation code (the runner, user fixtures) can reuse the
/// mixer without constructing an [`Rng`].
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random generator (SplitMix64 state advance with
/// an xorshift-style output mix). Identical seeds yield identical streams
/// on every platform.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next raw 32-bit word.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform-ish `u64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform-ish `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform-ish `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform-ish `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform-ish `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform-ish `u16` in `[lo, hi)`.
    pub fn range_u16(&mut self, lo: u16, hi: u16) -> u16 {
        self.range_u64(lo as u64, hi as u64) as u16
    }

    /// Uniform-ish `u8` in `[lo, hi)`.
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64(lo as u64, hi as u64) as u8
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0);
        self.next_u64() % den < num
    }

    /// A reference to a uniformly chosen element. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Builds a vector whose length is drawn from `[min_len, max_len)` and
    /// whose elements come from `f`.
    pub fn vec<T>(&mut self, min_len: usize, max_len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = if min_len + 1 >= max_len {
            min_len
        } else {
            self.range_usize(min_len, max_len)
        };
        (0..n).map(|_| f(self)).collect()
    }

    /// Forks an independent generator (for nested generators that must not
    /// disturb the parent's stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let w = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let v = rng.vec(2, 6, |r| r.bool());
            assert!((2..6).contains(&v.len()));
        }
        let fixed = rng.vec(4, 4, |r| r.next_u32());
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut rng = Rng::new(11);
        let hits = (0..10_000).filter(|_| rng.ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
