//! Seeded random-program generator for differential interpreter testing.
//!
//! [`random_program`] emits a complete, verifier-valid [`Program`] plus a
//! matching input vector, deterministically from a [`Rng`]. The programs
//! are deliberately shaped to exercise the corners the fixed workload
//! suite does not:
//!
//! * **megamorphic virtual call sites** — a pool of `Node` subclasses with
//!   same-named `visit` overrides is allocated on rotation, so a single
//!   `callvirt` site sees many receiver classes and defeats a monomorphic
//!   inline cache;
//! * **exception handlers** — statement-level try/catch around divisions,
//!   array accesses and explicit `throw`s, with both matching and
//!   catch-all clauses;
//! * **deep unwinds** — an acyclic static helper chain whose last link
//!   divides by a value that is periodically zero, so the thrown
//!   `ArithmeticException` unwinds through several frames (one of which
//!   carries a deliberately non-matching handler) before being caught in
//!   `main`;
//! * **finalizers** — a finalizable class allocated as immediate garbage,
//!   with the finalization count printed so GC/finalizer scheduling is
//!   part of the observable output;
//! * **stack-edge shapes** — straight-line pushes of 6–14 operands folded
//!   with adds, probing operand-stack sizing and overflow checks.
//!
//! Every generated statement has net-zero stack effect and every jump
//! label is placed at stack depth 0 (handler entries at depth 1, matching
//! the verifier's model), so the output always passes
//! [`verify_program`]. Runtime exceptions (divide-by-zero, null receiver,
//! index out of bounds) are intended and either caught by generated
//! handlers or surface as identical errors from both interpreters.
//!
//! Generation is total: any `Rng` yields a valid program, so a property
//! harness can drive this with [`crate::check`] and replay failures via
//! `TESTKIT_SEED`.

use heapdrag_vm::builder::{MethodBuilder, ProgramBuilder};
use heapdrag_vm::class::Visibility;
use heapdrag_vm::ids::{ClassId, MethodId, StaticId};
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;
use heapdrag_vm::verify::verify_program;

use crate::rng::Rng;

// `main` local slots (num_locals = 12).
const L_ARR: u16 = 0; // input array (parameter)
const L_I: u16 = 1; // loop counter
const L_N: u16 = 2; // trip count
const L_PREV: u16 = 3; // head of the node list (ref)
const L_ACC: u16 = 4; // running accumulator
const L_NODE: u16 = 5; // most recent node (ref)
const L_LEN: u16 = 6; // input length
const L_S0: u16 = 7; // int scratch pool: 7, 8, 9
const L_R0: u16 = 10; // ref scratch pool: 10, 11

/// Everything the statement emitters need that must be captured before a
/// `MethodBuilder` mutably borrows the `ProgramBuilder`.
struct Shape {
    /// `Node` subclass pool, allocated on rotation by `i % k`.
    classes: Vec<ClassId>,
    val_slot: u16,
    next_slot: u16,
    /// Custom exception class thrown/caught by generated statements.
    exc: ClassId,
    /// Finalizable class allocated as immediate garbage.
    fin: ClassId,
    /// Acyclic static helper chain; `helpers[0]` is the entry.
    helpers: Vec<MethodId>,
    arith: ClassId,
    index_oob: ClassId,
    g_static: StaticId,
    fin_count: StaticId,
}

/// Mutable generation state threaded through the statement emitters.
struct Gen<'a> {
    rng: &'a mut Rng,
    labels: u32,
}

impl Gen<'_> {
    fn lab(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}_{}", self.labels)
    }

    fn int_scratch(&mut self) -> u16 {
        L_S0 + self.rng.range_u16(0, 3)
    }
}

/// Emits an int expression with net stack effect +1, depth-bounded.
fn int_expr(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, depth: u32) {
    if depth == 0 || g.rng.ratio(2, 5) {
        match g.rng.range_u32(0, 5) {
            0 => {
                m.push_int(g.rng.range_i64(-9, 10));
            }
            1 => {
                m.load(L_I);
            }
            2 => {
                m.load(L_ACC);
            }
            3 => {
                let s = g.int_scratch();
                m.load(s);
            }
            // input[i % len] — len >= 1 is guaranteed by the input shape.
            _ => {
                m.load(L_ARR).load(L_I).load(L_LEN).rem().aload();
            }
        }
    } else {
        int_expr(m, g, depth - 1);
        int_expr(m, g, depth - 1);
        match g.rng.range_u32(0, 3) {
            0 => m.add(),
            1 => m.sub(),
            _ => m.mul(),
        };
    }
}

/// `acc = acc <op> expr` (or into an int scratch local).
fn s_arith(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>) {
    let dst = if g.rng.ratio(2, 3) {
        L_ACC
    } else {
        g.int_scratch()
    };
    let depth = g.rng.range_u32(1, 3);
    m.load(L_ACC);
    int_expr(m, g, depth);
    match g.rng.range_u32(0, 3) {
        0 => m.add(),
        1 => m.sub(),
        _ => m.mul(),
    };
    m.store(dst);
}

/// `scratch = acc / (i % m)` with a handler — throws every m-th iteration.
fn s_guarded_div(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    let (ts, hh, done) = (g.lab("div_try"), g.lab("div_catch"), g.lab("div_done"));
    let s = g.int_scratch();
    let mdiv = g.rng.range_i64(2, 6);
    let catch = if g.rng.ratio(2, 3) {
        Some(shape.arith)
    } else {
        None
    };
    m.label(&ts);
    m.load(L_ACC).load(L_I).push_int(mdiv).rem().div().store(s);
    m.jump(&done);
    m.label(&hh).pop().push_int(7).store(s);
    m.label(&done);
    m.handler(&ts, &hh, &hh, catch);
}

/// Call into the helper chain; a divide-by-zero several frames deep
/// unwinds back to the handler here (past a non-matching handler on the
/// way), exercising multi-frame handler search.
fn s_helper_call(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    let (ts, hh, done) = (g.lab("h_try"), g.lab("h_catch"), g.lab("h_done"));
    let s = g.int_scratch();
    let catch = if g.rng.ratio(3, 4) {
        Some(shape.arith)
    } else {
        None
    };
    m.label(&ts);
    m.load(L_I).call(shape.helpers[0]).store(s);
    m.jump(&done);
    m.label(&hh).pop().push_int(-3).store(s);
    m.label(&done);
    m.handler(&ts, &hh, &hh, catch);
}

/// Allocates a `Node` whose class rotates with `i % k` (the megamorphic
/// receiver pool), links it onto the list and wires its fields.
fn s_alloc_node(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    let k = shape.classes.len();
    let set = g.lab("mk_done");
    let arms: Vec<String> = (0..k - 1).map(|j| g.lab(&format!("mk{j}"))).collect();
    for (j, arm) in arms.iter().enumerate() {
        m.load(L_I)
            .push_int(k as i64)
            .rem()
            .push_int(j as i64)
            .cmpeq()
            .branch(arm);
    }
    m.new_obj(shape.classes[k - 1]).store(L_NODE).jump(&set);
    for (j, arm) in arms.iter().enumerate() {
        m.label(arm).new_obj(shape.classes[j]).store(L_NODE).jump(&set);
    }
    m.label(&set);
    m.load(L_NODE).load(L_ACC).putfield(shape.val_slot);
    m.load(L_NODE).load(L_PREV).putfield(shape.next_slot);
    m.load(L_NODE).store(L_PREV);
}

/// `scratch = node.visit(i % 3)` — the megamorphic virtual call site.
fn s_vcall(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>) {
    let skip = g.lab("vc_skip");
    let s = g.int_scratch();
    m.load(L_NODE).branch_if_null(&skip);
    m.load(L_NODE)
        .load(L_I)
        .push_int(3)
        .rem()
        .call_virtual("visit", 1)
        .store(s);
    m.label(&skip);
}

/// Immediate garbage: finalizable objects and a throwaway array, churning
/// the allocation clock toward the next deep GC.
fn s_garbage(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    for _ in 0..g.rng.range_u32(1, 3) {
        m.new_obj(shape.fin).pop();
    }
    if g.rng.ratio(1, 2) {
        m.push_int(g.rng.range_i64(1, 32)).new_array().pop();
    }
}

/// Round-trips `acc` through a fresh array (in-bounds).
fn s_array_rw(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>) {
    let size = g.rng.range_i64(1, 8);
    let idx = g.rng.range_i64(0, size);
    let r = L_R0 + g.rng.range_u16(0, 2);
    m.push_int(size).new_array().store(r);
    m.load(r).push_int(idx).load(L_ACC).astore();
    m.load(r).push_int(idx).aload().load(L_ACC).add().store(L_ACC);
}

/// A deliberately out-of-bounds read, caught locally.
fn s_oob(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    let (ts, hh, done) = (g.lab("oob_try"), g.lab("oob_catch"), g.lab("oob_done"));
    let s = g.int_scratch();
    let catch = if g.rng.ratio(1, 2) {
        Some(shape.index_oob)
    } else {
        None
    };
    m.label(&ts);
    m.push_int(2).new_array().push_int(5).aload().store(s);
    m.jump(&done);
    m.label(&hh).pop();
    m.label(&done);
    m.handler(&ts, &hh, &hh, catch);
}

/// A balanced monitor enter/exit pair on the current node.
fn s_monitor(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>) {
    let skip = g.lab("mon_skip");
    m.load(L_NODE).branch_if_null(&skip);
    m.load(L_NODE).monitor_enter();
    m.load(L_ACC).push_int(1).add().store(L_ACC);
    m.load(L_NODE).monitor_exit();
    m.label(&skip);
}

/// Throws a custom exception object every p-th iteration, caught locally.
fn s_throw_exc(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    let (thr, hh, done) = (g.lab("exc_thr"), g.lab("exc_catch"), g.lab("exc_done"));
    let p = g.rng.range_i64(2, 5);
    let catch = if g.rng.ratio(3, 4) {
        Some(shape.exc)
    } else {
        None
    };
    m.load(L_I)
        .push_int(p)
        .rem()
        .push_int(0)
        .cmpeq()
        .branch(&thr);
    m.jump(&done);
    m.label(&thr).new_obj(shape.exc).throw();
    m.label(&hh).pop().load(L_ACC).push_int(13).add().store(L_ACC);
    m.label(&done);
    m.handler(&thr, &hh, &hh, catch);
}

/// `acc += prev instanceof C_j` — `instance_of` tolerates null.
fn s_instance_of(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    let class = *g.rng.choose(&shape.classes);
    m.load(L_PREV)
        .instance_of(class)
        .load(L_ACC)
        .add()
        .store(L_ACC);
}

/// Pushes 6–14 operands and folds them — probes operand-stack sizing.
fn s_stack_edge(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>) {
    let d = g.rng.range_u32(6, 15);
    let s = g.int_scratch();
    for _ in 0..d {
        m.push_int(g.rng.range_i64(-4, 5));
    }
    for _ in 0..d - 1 {
        m.add();
    }
    m.store(s);
}

/// Folds an expression into the global static accumulator.
fn s_static_bump(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    m.getstatic(shape.g_static);
    int_expr(m, g, 1);
    m.add().putstatic(shape.g_static);
}

/// Emits one randomly chosen loop-body statement.
fn random_statement(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    match g.rng.range_u32(0, 12) {
        0 => s_arith(m, g),
        1 => s_guarded_div(m, g, shape),
        2 => s_helper_call(m, g, shape),
        3 => s_alloc_node(m, g, shape),
        4 => s_vcall(m, g),
        5 => s_garbage(m, g, shape),
        6 => s_array_rw(m, g),
        7 => s_oob(m, g, shape),
        8 => s_monitor(m, g),
        9 => s_throw_exc(m, g, shape),
        10 => s_instance_of(m, g, shape),
        11 => s_stack_edge(m, g),
        _ => s_static_bump(m, g, shape),
    }
}

/// Generates a `visit` override body. Locals: 0 = self, 1 = depth,
/// 2 = int scratch. Recurses down the `next` chain while depth > 0.
fn visit_body(m: &mut MethodBuilder<'_>, g: &mut Gen<'_>, shape: &Shape) {
    // val = val <op> (d + c)
    let c = g.rng.range_i64(-5, 6);
    m.load(0)
        .load(0)
        .getfield(shape.val_slot)
        .load(1)
        .push_int(c)
        .add();
    match g.rng.range_u32(0, 3) {
        0 => m.add(),
        1 => m.sub(),
        _ => m.mul(),
    };
    m.putfield(shape.val_slot);
    if g.rng.ratio(1, 2) {
        // Allocation inside a virtual method: a context-sensitive site.
        let class = if g.rng.ratio(1, 3) {
            shape.fin
        } else {
            *g.rng.choose(&shape.classes)
        };
        m.new_obj(class).pop();
    }
    if g.rng.ratio(2, 3) {
        // if d > 0 && next != null { next.visit(d - 1) } — recursion down
        // the list keeps the call site megamorphic at every depth.
        let isnull = g.lab("v_null");
        let done = g.lab("v_done");
        m.load(1).push_int(0).cmple().branch(&done);
        m.load(0)
            .getfield(shape.next_slot)
            .dup()
            .branch_if_null(&isnull);
        m.load(1)
            .push_int(1)
            .sub()
            .call_virtual("visit", 1)
            .pop()
            .jump(&done);
        m.label(&isnull).pop();
        m.label(&done);
    }
    m.load(0).getfield(shape.val_slot).ret_val();
}

/// Builds a program and a matching input vector from `rng`.
///
/// The program is checked against the bytecode verifier before being
/// returned, so a generator bug panics here (replayable via the property
/// runner's reported seed) instead of surfacing as a confusing
/// differential failure.
pub fn random_program(rng: &mut Rng) -> (Program, Vec<i64>) {
    let mut g = Gen { rng, labels: 0 };
    let mut b = ProgramBuilder::new();
    let builtins = b.builtins();

    let g_static = b.static_var("G.acc", Visibility::Public, Value::Int(0));
    let fin_count = b.static_var("G.finalized", Visibility::Public, Value::Int(0));

    // The Node hierarchy: base with the fields, subclasses overriding
    // `visit` (slot layout is inherited, so one slot id serves them all).
    let base = b
        .begin_class("gen.Node")
        .field("val", Visibility::Public)
        .field("next", Visibility::Private)
        .finish();
    let val_slot = b.field_slot(base, "val");
    let next_slot = b.field_slot(base, "next");
    let k = g.rng.range_usize(2, 6);
    let mut classes = Vec::with_capacity(k);
    for j in 0..k {
        classes.push(b.begin_class(format!("gen.Node{j}")).extends(base).finish());
    }

    let exc = b
        .begin_class("gen.Exc")
        .field("code", Visibility::Public)
        .finish();

    let fin = b.begin_class("gen.Fin").finish();
    let fin_m = b.declare_method("finalize", Some(fin), false, 1, 1);
    {
        let mut m = b.begin_body(fin_m);
        m.getstatic(fin_count).push_int(1).add().putstatic(fin_count);
        m.ret();
        m.finish();
    }
    b.set_finalizer(fin, fin_m);

    // Acyclic helper chain h0 -> h1 -> ... -> h_last; declared up front so
    // each body can call the next link.
    let nh = g.rng.range_usize(2, 5);
    let helpers: Vec<MethodId> = (0..nh)
        .map(|i| b.declare_method(format!("h{i}"), None, true, 1, 2))
        .collect();

    let shape = Shape {
        classes,
        val_slot,
        next_slot,
        exc,
        fin,
        helpers,
        arith: builtins.arithmetic,
        index_oob: builtins.index_oob,
        g_static,
        fin_count,
    };

    // Base `visit` plus overrides on most subclasses: the same selector
    // dispatches to many targets, which is what makes the pool
    // megamorphic rather than just polymorphic.
    let visit_base = b.declare_method("visit", Some(base), false, 2, 3);
    {
        let mut m = b.begin_body(visit_base);
        m.load(0).getfield(shape.val_slot).load(1).add().ret_val();
        m.finish();
    }
    for &class in &shape.classes {
        if g.rng.ratio(4, 5) {
            let vm = b.declare_method("visit", Some(class), false, 2, 3);
            let mut m = b.begin_body(vm);
            visit_body(&mut m, &mut g, &shape);
            m.finish();
        }
    }

    // Helper bodies. The middle of the chain gets a handler that can
    // never match the arithmetic throw, so unwinds must search past it.
    for i in 0..nh {
        let mut m = b.begin_body(shape.helpers[i]);
        if i + 1 < nh {
            let c = g.rng.range_i64(-3, 4);
            m.load(0).push_int(c).add();
            if i == nh / 2 && g.rng.ratio(2, 3) {
                m.label("hs");
                m.call(shape.helpers[i + 1]);
                m.label("he");
                m.push_int(1).add().ret_val();
                m.label("hh").pop().push_int(-1).ret_val();
                m.handler("hs", "he", "hh", Some(shape.exc));
            } else {
                m.call(shape.helpers[i + 1]);
                m.push_int(1).add().ret_val();
            }
        } else {
            // x / (x % m): throws ArithmeticException when x % m == 0.
            let mdiv = g.rng.range_i64(2, 6);
            m.load(0).load(0).push_int(mdiv).rem().div().ret_val();
        }
        m.finish();
    }

    // main(input): a counted loop of random statements, then a walk of
    // the node list (load+getfield pairs — superinstruction fodder) and
    // the observable prints.
    let main = b.declare_method("main", None, true, 1, 12);
    {
        let mut m = b.begin_body(main);
        let mult = g.rng.range_i64(1, 4);
        let base_trips = g.rng.range_i64(3, 9);
        m.load(L_ARR).array_len().store(L_LEN);
        m.load(L_LEN)
            .push_int(mult)
            .mul()
            .push_int(base_trips)
            .add()
            .store(L_N);
        m.load(L_ARR).push_int(0).aload().store(L_ACC);
        m.push_int(0).store(L_I);
        m.push_null().store(L_PREV);

        m.label("loop");
        m.load(L_I).load(L_N).cmpge().branch("after");
        s_alloc_node(&mut m, &mut g, &shape);
        s_vcall(&mut m, &mut g);
        for _ in 0..g.rng.range_u32(3, 8) {
            random_statement(&mut m, &mut g, &shape);
        }
        if g.rng.ratio(1, 4) {
            m.load(L_ACC).print();
        }
        m.load(L_I).push_int(1).add().store(L_I);
        m.jump("loop");

        m.label("after");
        // acc += sum of val over the list; prev = prev.next until null.
        m.label("walk");
        m.load(L_PREV).branch_if_null("walked");
        m.load(L_PREV)
            .getfield(shape.val_slot)
            .load(L_ACC)
            .add()
            .store(L_ACC);
        m.load(L_PREV).getfield(shape.next_slot).store(L_PREV);
        m.jump("walk");
        m.label("walked");
        m.load(L_ACC).print();
        m.getstatic(shape.g_static).print();
        m.getstatic(shape.fin_count).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);

    let program = b.finish().expect("generated program failed to link");
    verify_program(&program).expect("generated program failed verification");

    let len = g.rng.range_usize(1, 9);
    let input: Vec<i64> = (0..len).map(|_| g.rng.range_i64(-50, 51)).collect();
    (program, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::interp::{Vm, VmConfig};

    #[test]
    fn generated_programs_link_verify_and_run() {
        let mut rng = Rng::new(0x5eed);
        for _ in 0..16 {
            let (program, input) = random_program(&mut rng);
            // Must at least start executing; runtime errors are allowed
            // (they are part of the differential surface), panics not.
            let _ = Vm::new(&program, VmConfig::default()).run(&input);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (p1, i1) = random_program(&mut Rng::new(42));
        let (p2, i2) = random_program(&mut Rng::new(42));
        assert_eq!(i1, i2);
        assert_eq!(p1.methods.len(), p2.methods.len());
        for (a, b) in p1.methods.iter().zip(p2.methods.iter()) {
            assert_eq!(a.code, b.code, "method {} differs", a.name);
        }
    }
}
