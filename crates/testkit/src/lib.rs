//! # heapdrag-testkit
//!
//! A replacement for the slice of `rand` + `proptest` the workspace
//! actually uses (no external crates, so the test suite builds and runs
//! with the network disabled), plus a seeded generator of verifier-valid
//! VM programs for differential interpreter testing.
//!
//! Five pieces:
//!
//! * [`Rng`] — a deterministic SplitMix64 generator with the handful of
//!   sampling helpers the generators in `tests/` need (ranges, booleans,
//!   slice picks, sized vectors).
//! * [`check`] — a minimal property runner: it derives one seed per case
//!   from a base seed, hands a fresh [`Rng`] to the property closure, and
//!   on panic reports the case number and failing seed so the case can be
//!   replayed with `TESTKIT_SEED=<seed> TESTKIT_CASES=1`.
//! * [`fault`] — seeded log corruptors modelling what
//!   crashed/killed/out-of-disk runs do to trace files, for exercising
//!   the salvage parser: [`Fault`]/[`inject`] for line-oriented text
//!   logs, [`BinaryFault`]/[`inject_binary`] for HDLOG v2 frame streams.
//! * [`reader`] — pathological [`std::io::Read`] wrappers
//!   ([`TrickleReader`], [`StutterReader`]) that deliver input in
//!   adversarially small or misaligned pieces, for exercising streaming
//!   ingestion.
//! * [`genprog`] — a seeded random-program generator ([`random_program`])
//!   emitting verifier-valid bytecode with megamorphic virtual call
//!   sites, exception handlers, finalizers, and deep call chains, for
//!   pinning the fast interpreter against the reference one.
//!
//! ```
//! use heapdrag_testkit::{check, Rng};
//!
//! check("addition commutes", 64, |rng: &mut Rng| {
//!     let a = rng.range_i64(-1000, 1000);
//!     let b = rng.range_i64(-1000, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod genprog;
pub mod reader;
pub mod rng;
pub mod runner;

pub use fault::{
    complete_frames, inject, inject_binary, BinaryFault, BinaryFaultReport, Fault, FaultReport,
};
pub use genprog::random_program;
pub use reader::{StutterReader, TrickleReader};
pub use rng::Rng;
pub use runner::{check, check_with, Config};
