//! Seeded fault injection for trace logs, text and binary.
//!
//! Each mutator is deterministic: given the same input and the same
//! [`Rng`] state it produces the same corruption, so a failing property
//! case replays exactly from its seed. The faults model what crashed,
//! killed, and out-of-disk runs actually do to trace files.
//!
//! For line-oriented text logs ([`Fault`], [`inject`]):
//!
//! * [`Fault::TruncateAtByte`] — the file simply stops (kill -9, ENOSPC).
//! * [`Fault::FlipByte`] — a character is replaced (bit rot, bad copy).
//! * [`Fault::DeleteLine`] — a whole line is lost (dropped write buffer).
//! * [`Fault::DuplicateChunk`] — consecutive lines appear twice (replayed
//!   write buffer after a partial flush).
//! * [`Fault::TornTail`] — the final line is cut mid-write, leaving no
//!   terminator.
//!
//! For length-prefixed HDLOG v2 binary logs ([`BinaryFault`],
//! [`inject_binary`]), the same failure modes expressed at the frame
//! level: truncation at an arbitrary byte or strictly inside a frame, a
//! corrupted length prefix (framing lost), a flipped checksum or payload
//! byte, and whole frames deleted or replayed. The injector carries its
//! own minimal frame walker — tag byte, LEB128 length prefix, payload,
//! 2-byte checksum — so the testkit stays dependency-free and the walker
//! is an oracle of the frame grammar independent of the codec under test.
//!
//! All mutators are total: on inputs too small to corrupt meaningfully
//! they degrade gracefully (possibly to a no-op) instead of panicking, so
//! property loops never have to special-case tiny logs.

use crate::rng::Rng;

/// A kind of log corruption to inject. See the module docs for the
/// real-world failure each one models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Cut the log at a random byte (snapped to a char boundary).
    TruncateAtByte,
    /// Replace one character with a different printable ASCII character.
    FlipByte,
    /// Remove one whole line, terminator included.
    DeleteLine,
    /// Duplicate a run of 1–8 consecutive lines in place.
    DuplicateChunk,
    /// Cut within the final line so it loses its terminator.
    TornTail,
}

impl Fault {
    /// Every fault kind, for exhaustive property sweeps.
    pub const ALL: [Fault; 5] = [
        Fault::TruncateAtByte,
        Fault::FlipByte,
        Fault::DeleteLine,
        Fault::DuplicateChunk,
        Fault::TornTail,
    ];

    /// A short kebab-case name for case labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fault::TruncateAtByte => "truncate-at-byte",
            Fault::FlipByte => "flip-byte",
            Fault::DeleteLine => "delete-line",
            Fault::DuplicateChunk => "duplicate-chunk",
            Fault::TornTail => "torn-tail",
        }
    }

    /// True for the faults that only *remove or repeat* well-formed
    /// content, never alter it: any record surviving the fault is verbatim
    /// from the clean log, so salvaged analyses must be a subset of the
    /// clean analysis. [`Fault::FlipByte`] is the exception — a flip can
    /// yield a *different but valid* line, changing records rather than
    /// dropping them.
    pub fn is_structural(self) -> bool {
        !matches!(self, Fault::FlipByte)
    }
}

/// What [`inject`] actually did: the fault, where it struck, and how many
/// bytes it affected — enough to reconstruct the corruption in a failure
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// The fault that was injected.
    pub fault: Fault,
    /// Byte offset where the corruption starts.
    pub offset: usize,
    /// Bytes removed, replaced, or inserted (0 for a no-op degrade).
    pub len: usize,
}

/// Snaps `offset` down to the nearest char boundary of `text`.
fn snap(text: &str, mut offset: usize) -> usize {
    while offset > 0 && !text.is_char_boundary(offset) {
        offset -= 1;
    }
    offset
}

/// The byte ranges of `text`'s lines, terminators included.
fn line_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    while start < text.len() {
        let end = match text[start..].find('\n') {
            Some(i) => start + i + 1,
            None => text.len(),
        };
        spans.push((start, end));
        start = end;
    }
    spans
}

/// Applies one seeded `fault` to `text`, returning the corrupted log and
/// a [`FaultReport`] of what was done. Deterministic in `(text, fault,
/// rng state)`; total on every input including the empty string.
pub fn inject(text: &str, fault: Fault, rng: &mut Rng) -> (String, FaultReport) {
    let noop = FaultReport {
        fault,
        offset: 0,
        len: 0,
    };
    match fault {
        Fault::TruncateAtByte => {
            if text.len() < 2 {
                return (text.to_string(), noop);
            }
            let cut = snap(text, rng.range_usize(1, text.len()));
            if cut == 0 {
                return (text.to_string(), noop);
            }
            let report = FaultReport {
                fault,
                offset: cut,
                len: text.len() - cut,
            };
            (text[..cut].to_string(), report)
        }
        Fault::FlipByte => {
            if text.is_empty() {
                return (String::new(), noop);
            }
            let at = snap(text, rng.range_usize(0, text.len()));
            let original = text[at..].chars().next().expect("snapped to a char");
            // Pick a printable ASCII replacement that differs from the
            // original, so the flip is never a silent no-op.
            let mut replacement = rng.range_u8(0x20, 0x7f) as char;
            if replacement == original {
                replacement = if replacement == '~' { '!' } else { '~' };
            }
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..at]);
            out.push(replacement);
            out.push_str(&text[at + original.len_utf8()..]);
            let report = FaultReport {
                fault,
                offset: at,
                len: original.len_utf8(),
            };
            (out, report)
        }
        Fault::DeleteLine => {
            let spans = line_spans(text);
            if spans.is_empty() {
                return (text.to_string(), noop);
            }
            let (start, end) = spans[rng.range_usize(0, spans.len())];
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..start]);
            out.push_str(&text[end..]);
            let report = FaultReport {
                fault,
                offset: start,
                len: end - start,
            };
            (out, report)
        }
        Fault::DuplicateChunk => {
            let spans = line_spans(text);
            if spans.is_empty() {
                return (text.to_string(), noop);
            }
            let first = rng.range_usize(0, spans.len());
            let count = rng.range_usize(1, 9.min(spans.len() - first + 1));
            let start = spans[first].0;
            let end = spans[first + count - 1].1;
            let mut chunk = text[start..end].to_string();
            // Terminate an unterminated final line before repeating it, so
            // the duplicate is a parseable copy rather than a splice.
            if !chunk.ends_with('\n') {
                chunk.push('\n');
            }
            let mut out = String::with_capacity(text.len() + chunk.len());
            out.push_str(&text[..end]);
            out.push_str(&chunk);
            out.push_str(&text[end..]);
            let report = FaultReport {
                fault,
                offset: end,
                len: chunk.len(),
            };
            (out, report)
        }
        Fault::TornTail => {
            let spans = line_spans(text);
            let Some(&(start, end)) = spans.last() else {
                return (text.to_string(), noop);
            };
            // Cut strictly inside the last line: past its first byte,
            // before its terminator — leaving a torn, unterminated tail.
            if end - start < 2 {
                return (text.to_string(), noop);
            }
            let content_end = if text.ends_with('\n') { end - 1 } else { end };
            if content_end <= start + 1 {
                return (text.to_string(), noop);
            }
            let cut = snap(text, rng.range_usize(start + 1, content_end));
            if cut <= start {
                return (text.to_string(), noop);
            }
            let report = FaultReport {
                fault,
                offset: cut,
                len: text.len() - cut,
            };
            (text[..cut].to_string(), report)
        }
    }
}

/// A kind of corruption to inject into an HDLOG v2 binary log. Each one
/// is the frame-level expression of a real failure mode; see the module
/// docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryFault {
    /// Cut the log at a random byte — anywhere, including inside the
    /// magic (kill -9, ENOSPC).
    TruncateAtByte,
    /// Cut strictly inside a random frame, so every earlier frame stays
    /// intact (the torn final write).
    TruncateMidFrame,
    /// Overwrite the first byte of a frame's length prefix, destroying
    /// framing from that frame on.
    CorruptFrameLength,
    /// Flip one of the two stored checksum bytes of a frame — the payload
    /// is untouched, so the frame is dropped whole, never altered.
    FlipChecksumByte,
    /// Flip one payload byte of a frame (bit rot the checksum is there to
    /// catch).
    FlipPayloadByte,
    /// Remove one whole frame (dropped write buffer).
    DeleteFrame,
    /// Duplicate a run of 1–8 consecutive frames in place (replayed write
    /// buffer after a partial flush).
    DuplicateFrames,
}

impl BinaryFault {
    /// Every binary fault kind, for exhaustive property sweeps.
    pub const ALL: [BinaryFault; 7] = [
        BinaryFault::TruncateAtByte,
        BinaryFault::TruncateMidFrame,
        BinaryFault::CorruptFrameLength,
        BinaryFault::FlipChecksumByte,
        BinaryFault::FlipPayloadByte,
        BinaryFault::DeleteFrame,
        BinaryFault::DuplicateFrames,
    ];

    /// A short kebab-case name for case labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            BinaryFault::TruncateAtByte => "truncate-at-byte",
            BinaryFault::TruncateMidFrame => "truncate-mid-frame",
            BinaryFault::CorruptFrameLength => "corrupt-frame-length",
            BinaryFault::FlipChecksumByte => "flip-checksum-byte",
            BinaryFault::FlipPayloadByte => "flip-payload-byte",
            BinaryFault::DeleteFrame => "delete-frame",
            BinaryFault::DuplicateFrames => "duplicate-frames",
        }
    }

    /// True for the faults that only *remove or repeat* intact frames:
    /// any record surviving them is verbatim from the clean log.
    /// [`BinaryFault::FlipPayloadByte`] and
    /// [`BinaryFault::CorruptFrameLength`] are excluded — a flipped
    /// payload byte survives as a *different* record if the folded 16-bit
    /// checksum collides (once in 65536), and a corrupted length can
    /// splice arbitrary bytes into frame positions.
    pub fn is_structural(self) -> bool {
        !matches!(
            self,
            BinaryFault::FlipPayloadByte | BinaryFault::CorruptFrameLength
        )
    }
}

/// What [`inject_binary`] actually did; the binary analogue of
/// [`FaultReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryFaultReport {
    /// The fault that was injected.
    pub fault: BinaryFault,
    /// Byte offset where the corruption starts.
    pub offset: usize,
    /// Bytes removed, replaced, or inserted (0 for a no-op degrade).
    pub len: usize,
}

/// The eight magic bytes of an HDLOG v2 log. Kept in sync with the codec
/// by a cross-crate test; duplicated here so the testkit stays
/// dependency-free.
pub const HDLOG2_MAGIC: [u8; 8] = [0x89, b'H', b'D', b'L', b'G', b'2', 0x0D, 0x0A];

/// One well-formed frame located by [`frame_spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameSpan {
    /// Offset of the tag byte.
    start: usize,
    /// Offset of the first payload byte.
    payload_start: usize,
    /// Offset one past the last payload byte (= offset of the checksum).
    payload_end: usize,
    /// Offset one past the checksum — the next frame's start.
    end: usize,
}

/// Minimal LEB128 reader: value plus bytes consumed, `None` on overflow
/// or a varint that runs off the slice.
fn read_varint(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 || (shift == 63 && b & 0x7f > 1) {
            return None;
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Walks the frame stream, returning the spans of every structurally
/// complete frame (checksums are *not* verified — framing only). Stops at
/// the first byte that cannot be framed; an input without the magic has
/// no frames.
fn frame_spans(bytes: &[u8]) -> Vec<FrameSpan> {
    let mut spans = Vec::new();
    if !bytes.starts_with(&HDLOG2_MAGIC) {
        return spans;
    }
    let mut pos = HDLOG2_MAGIC.len();
    while pos < bytes.len() {
        let Some((payload_len, len_used)) = read_varint(&bytes[pos + 1..]) else {
            break;
        };
        let payload_start = pos + 1 + len_used;
        let Some(payload_end) = payload_start.checked_add(payload_len as usize) else {
            break;
        };
        let Some(end) = payload_end.checked_add(2) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        spans.push(FrameSpan {
            start: pos,
            payload_start,
            payload_end,
            end,
        });
        pos = end;
    }
    spans
}

/// The `(start, end, tag)` byte extents of every structurally complete
/// frame in `bytes` — the walker behind the binary injectors, exposed so
/// property tests can reason about which frames a corruption left intact
/// (e.g. "every complete `obj` frame before the cut must be salvaged").
/// Checksums are not verified; an input without the magic has no frames.
pub fn complete_frames(bytes: &[u8]) -> Vec<(usize, usize, u8)> {
    frame_spans(bytes)
        .into_iter()
        .map(|f| (f.start, f.end, bytes[f.start]))
        .collect()
}

/// Applies one seeded binary `fault` to `bytes`, returning the corrupted
/// log and a [`BinaryFaultReport`] of what was done. Deterministic in
/// `(bytes, fault, rng state)`; total on every input including streams
/// without the magic (frame-targeting faults degrade to a no-op there).
pub fn inject_binary(
    bytes: &[u8],
    fault: BinaryFault,
    rng: &mut Rng,
) -> (Vec<u8>, BinaryFaultReport) {
    let noop = |bytes: &[u8]| {
        (
            bytes.to_vec(),
            BinaryFaultReport {
                fault,
                offset: 0,
                len: 0,
            },
        )
    };
    let spans = frame_spans(bytes);
    match fault {
        BinaryFault::TruncateAtByte => {
            if bytes.len() < 2 {
                return noop(bytes);
            }
            let cut = rng.range_usize(1, bytes.len());
            let report = BinaryFaultReport {
                fault,
                offset: cut,
                len: bytes.len() - cut,
            };
            (bytes[..cut].to_vec(), report)
        }
        BinaryFault::TruncateMidFrame => {
            let Some(&f) = spans.as_slice().get(rng.range_usize(0, spans.len().max(1))) else {
                return noop(bytes);
            };
            let cut = rng.range_usize(f.start + 1, f.end);
            let report = BinaryFaultReport {
                fault,
                offset: cut,
                len: bytes.len() - cut,
            };
            (bytes[..cut].to_vec(), report)
        }
        BinaryFault::CorruptFrameLength => {
            let Some(&f) = spans.as_slice().get(rng.range_usize(0, spans.len().max(1))) else {
                return noop(bytes);
            };
            let mut out = bytes.to_vec();
            // Set the continuation bit and scramble the low bits: the
            // prefix now decodes to a different (usually huge) length or
            // to no varint at all.
            out[f.start + 1] = 0x80 | rng.range_u8(0, 0x80);
            if out[f.start + 1] == bytes[f.start + 1] {
                out[f.start + 1] ^= 0x41;
            }
            let report = BinaryFaultReport {
                fault,
                offset: f.start + 1,
                len: 1,
            };
            (out, report)
        }
        BinaryFault::FlipChecksumByte => {
            let Some(&f) = spans.as_slice().get(rng.range_usize(0, spans.len().max(1))) else {
                return noop(bytes);
            };
            let at = f.payload_end + rng.range_usize(0, 2);
            let mut out = bytes.to_vec();
            out[at] ^= rng.range_u8(1, 0xff);
            let report = BinaryFaultReport {
                fault,
                offset: at,
                len: 1,
            };
            (out, report)
        }
        BinaryFault::FlipPayloadByte => {
            // Only frames with a payload qualify; a log of empty payloads
            // degrades to a no-op.
            let with_payload: Vec<FrameSpan> = spans
                .into_iter()
                .filter(|f| f.payload_end > f.payload_start)
                .collect();
            let Some(&f) = with_payload
                .as_slice()
                .get(rng.range_usize(0, with_payload.len().max(1)))
            else {
                return noop(bytes);
            };
            let at = rng.range_usize(f.payload_start, f.payload_end);
            let mut out = bytes.to_vec();
            out[at] ^= rng.range_u8(1, 0xff);
            let report = BinaryFaultReport {
                fault,
                offset: at,
                len: 1,
            };
            (out, report)
        }
        BinaryFault::DeleteFrame => {
            let Some(&f) = spans.as_slice().get(rng.range_usize(0, spans.len().max(1))) else {
                return noop(bytes);
            };
            let mut out = Vec::with_capacity(bytes.len() - (f.end - f.start));
            out.extend_from_slice(&bytes[..f.start]);
            out.extend_from_slice(&bytes[f.end..]);
            let report = BinaryFaultReport {
                fault,
                offset: f.start,
                len: f.end - f.start,
            };
            (out, report)
        }
        BinaryFault::DuplicateFrames => {
            if spans.is_empty() {
                return noop(bytes);
            }
            let first = rng.range_usize(0, spans.len());
            let count = rng.range_usize(1, 9.min(spans.len() - first + 1));
            let start = spans[first].start;
            let end = spans[first + count - 1].end;
            let mut out = Vec::with_capacity(bytes.len() + (end - start));
            out.extend_from_slice(&bytes[..end]);
            out.extend_from_slice(&bytes[start..end]);
            out.extend_from_slice(&bytes[end..]);
            let report = BinaryFaultReport {
                fault,
                offset: end,
                len: end - start,
            };
            (out, report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\ngc 500 840 2\nend 1000\n";

    #[test]
    fn all_faults_are_total_on_tiny_inputs() {
        for fault in Fault::ALL {
            for input in ["", "x", "x\n", "\n"] {
                let mut rng = Rng::new(7);
                let (out, report) = inject(input, fault, &mut rng);
                assert_eq!(report.fault, fault);
                if report.len == 0 {
                    assert_eq!(out, input, "{}: no-op must return input", fault.name());
                }
            }
        }
    }

    #[test]
    fn truncate_shortens_and_keeps_a_prefix() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject(LOG, Fault::TruncateAtByte, &mut rng);
            assert!(out.len() < LOG.len());
            assert_eq!(out, &LOG[..report.offset]);
        }
    }

    #[test]
    fn flip_changes_exactly_one_char() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject(LOG, Fault::FlipByte, &mut rng);
            assert_ne!(out, LOG);
            assert_eq!(out.len(), LOG.len());
            assert_eq!(&out[..report.offset], &LOG[..report.offset]);
            assert_eq!(&out[report.offset + 1..], &LOG[report.offset + 1..]);
        }
    }

    #[test]
    fn delete_line_removes_one_whole_line() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, _) = inject(LOG, Fault::DeleteLine, &mut rng);
            assert_eq!(out.lines().count(), LOG.lines().count() - 1);
        }
    }

    #[test]
    fn duplicate_chunk_repeats_consecutive_lines() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject(LOG, Fault::DuplicateChunk, &mut rng);
            assert!(out.len() > LOG.len());
            assert!(report.len > 0);
            // Every line of the corrupted log already existed in the input.
            for line in out.lines() {
                assert!(LOG.lines().any(|l| l == line), "foreign line `{line}`");
            }
        }
    }

    #[test]
    fn torn_tail_leaves_an_unterminated_final_line() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, _) = inject(LOG, Fault::TornTail, &mut rng);
            assert!(!out.ends_with('\n'));
            assert!(out.len() < LOG.len());
            // Only the final line was affected.
            let kept = out.lines().count() - 1;
            assert!(LOG.lines().take(kept).eq(out.lines().take(kept)));
        }
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        for fault in Fault::ALL {
            let mut a = Rng::new(99);
            let mut b = Rng::new(99);
            assert_eq!(inject(LOG, fault, &mut a), inject(LOG, fault, &mut b));
        }
    }

    #[test]
    fn structural_classification_excludes_flip() {
        assert!(!Fault::FlipByte.is_structural());
        assert_eq!(
            Fault::ALL.iter().filter(|f| f.is_structural()).count(),
            4
        );
    }

    /// A structurally valid HDLOG v2 stream: magic plus four frames with
    /// 1-byte length prefixes. Checksums are dummies — the walker frames,
    /// it does not verify.
    fn binary_log() -> Vec<u8> {
        let mut buf = HDLOG2_MAGIC.to_vec();
        for (tag, payload) in [
            (0x01u8, &b"\x00Main.main"[..]),
            (0x02, &b"\x01\x02\x10\x05\x07\x00\x00\x00\x00"[..]),
            (0x03, &b"\x05\x20\x02"[..]),
            (0x04, &b"\x64"[..]),
        ] {
            buf.push(tag);
            buf.push(payload.len() as u8);
            buf.extend_from_slice(payload);
            buf.extend_from_slice(&[0xAA, 0xBB]); // dummy checksum
        }
        buf
    }

    #[test]
    fn walker_frames_the_sample_stream() {
        let log = binary_log();
        let spans = frame_spans(&log);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].start, HDLOG2_MAGIC.len());
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "frames are contiguous");
        }
        assert_eq!(spans.last().unwrap().end, log.len());
        // No magic, no frames; a torn final frame is not a span.
        assert!(frame_spans(b"not a log").is_empty());
        assert_eq!(frame_spans(&log[..log.len() - 1]).len(), 3);
    }

    #[test]
    fn all_binary_faults_are_total_on_degenerate_inputs() {
        for fault in BinaryFault::ALL {
            for input in [&b""[..], &b"\x89"[..], &HDLOG2_MAGIC[..], b"text log\n"] {
                let mut rng = Rng::new(7);
                let (out, report) = inject_binary(input, fault, &mut rng);
                assert_eq!(report.fault, fault);
                if report.len == 0 {
                    assert_eq!(out, input, "{}: no-op must return input", fault.name());
                }
            }
        }
    }

    #[test]
    fn mid_frame_truncation_keeps_earlier_frames_intact() {
        let log = binary_log();
        for seed in 0..64 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject_binary(&log, BinaryFault::TruncateMidFrame, &mut rng);
            assert!(out.len() < log.len());
            assert_eq!(out, &log[..report.offset]);
            // Every span of the truncated stream was a span of the clean one.
            let kept = frame_spans(&out);
            let clean = frame_spans(&log);
            assert_eq!(kept.as_slice(), &clean[..kept.len()]);
        }
    }

    #[test]
    fn checksum_and_payload_flips_change_exactly_one_byte() {
        let log = binary_log();
        let spans = frame_spans(&log);
        for fault in [BinaryFault::FlipChecksumByte, BinaryFault::FlipPayloadByte] {
            for seed in 0..64 {
                let mut rng = Rng::new(seed);
                let (out, report) = inject_binary(&log, fault, &mut rng);
                assert_eq!(out.len(), log.len());
                let diff: Vec<usize> = (0..log.len()).filter(|&i| out[i] != log[i]).collect();
                assert_eq!(diff, vec![report.offset], "{}", fault.name());
                let f = spans
                    .iter()
                    .find(|f| f.start <= report.offset && report.offset < f.end)
                    .expect("flip lands inside a frame");
                match fault {
                    BinaryFault::FlipChecksumByte => assert!(report.offset >= f.payload_end),
                    _ => assert!(
                        (f.payload_start..f.payload_end).contains(&report.offset),
                        "payload flip must land in the payload"
                    ),
                }
            }
        }
    }

    #[test]
    fn delete_frame_removes_one_whole_frame() {
        let log = binary_log();
        for seed in 0..64 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject_binary(&log, BinaryFault::DeleteFrame, &mut rng);
            assert_eq!(out.len(), log.len() - report.len);
            let clean = frame_spans(&log);
            assert!(clean
                .iter()
                .any(|f| f.start == report.offset && f.end - f.start == report.len));
            assert_eq!(frame_spans(&out).len(), clean.len() - 1);
        }
    }

    #[test]
    fn duplicate_frames_repeats_a_contiguous_run() {
        let log = binary_log();
        for seed in 0..64 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject_binary(&log, BinaryFault::DuplicateFrames, &mut rng);
            assert_eq!(out.len(), log.len() + report.len);
            assert_eq!(
                &out[report.offset..report.offset + report.len],
                &out[report.offset - report.len..report.offset],
                "the inserted run repeats the bytes just before it"
            );
            assert!(frame_spans(&out).len() > frame_spans(&log).len());
        }
    }

    #[test]
    fn corrupt_length_prefix_changes_the_length_byte() {
        let log = binary_log();
        for seed in 0..64 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject_binary(&log, BinaryFault::CorruptFrameLength, &mut rng);
            assert_eq!(out.len(), log.len());
            assert_ne!(out[report.offset], log[report.offset]);
            assert!(out[report.offset] & 0x80 != 0, "continuation bit is set");
            let spans = frame_spans(&log);
            assert!(spans.iter().any(|f| f.start + 1 == report.offset));
        }
    }

    #[test]
    fn binary_injection_is_deterministic_in_the_seed() {
        let log = binary_log();
        for fault in BinaryFault::ALL {
            let mut a = Rng::new(99);
            let mut b = Rng::new(99);
            assert_eq!(
                inject_binary(&log, fault, &mut a),
                inject_binary(&log, fault, &mut b)
            );
        }
    }

    #[test]
    fn binary_structural_classification() {
        assert!(!BinaryFault::FlipPayloadByte.is_structural());
        assert!(!BinaryFault::CorruptFrameLength.is_structural());
        assert_eq!(
            BinaryFault::ALL.iter().filter(|f| f.is_structural()).count(),
            5
        );
    }
}
