//! Seeded fault injection for text-based trace formats.
//!
//! Each [`Fault`] is a deterministic mutator over a log string: given the
//! same input and the same [`Rng`] state it produces the same corruption,
//! so a failing property case replays exactly from its seed. The faults
//! model what crashed, killed, and out-of-disk runs actually do to
//! line-oriented logs:
//!
//! * [`Fault::TruncateAtByte`] — the file simply stops (kill -9, ENOSPC).
//! * [`Fault::FlipByte`] — a character is replaced (bit rot, bad copy).
//! * [`Fault::DeleteLine`] — a whole line is lost (dropped write buffer).
//! * [`Fault::DuplicateChunk`] — consecutive lines appear twice (replayed
//!   write buffer after a partial flush).
//! * [`Fault::TornTail`] — the final line is cut mid-write, leaving no
//!   terminator.
//!
//! All mutators are total: on inputs too small to corrupt meaningfully
//! they degrade gracefully (possibly to a no-op) instead of panicking, so
//! property loops never have to special-case tiny logs.

use crate::rng::Rng;

/// A kind of log corruption to inject. See the module docs for the
/// real-world failure each one models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Cut the log at a random byte (snapped to a char boundary).
    TruncateAtByte,
    /// Replace one character with a different printable ASCII character.
    FlipByte,
    /// Remove one whole line, terminator included.
    DeleteLine,
    /// Duplicate a run of 1–8 consecutive lines in place.
    DuplicateChunk,
    /// Cut within the final line so it loses its terminator.
    TornTail,
}

impl Fault {
    /// Every fault kind, for exhaustive property sweeps.
    pub const ALL: [Fault; 5] = [
        Fault::TruncateAtByte,
        Fault::FlipByte,
        Fault::DeleteLine,
        Fault::DuplicateChunk,
        Fault::TornTail,
    ];

    /// A short kebab-case name for case labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fault::TruncateAtByte => "truncate-at-byte",
            Fault::FlipByte => "flip-byte",
            Fault::DeleteLine => "delete-line",
            Fault::DuplicateChunk => "duplicate-chunk",
            Fault::TornTail => "torn-tail",
        }
    }

    /// True for the faults that only *remove or repeat* well-formed
    /// content, never alter it: any record surviving the fault is verbatim
    /// from the clean log, so salvaged analyses must be a subset of the
    /// clean analysis. [`Fault::FlipByte`] is the exception — a flip can
    /// yield a *different but valid* line, changing records rather than
    /// dropping them.
    pub fn is_structural(self) -> bool {
        !matches!(self, Fault::FlipByte)
    }
}

/// What [`inject`] actually did: the fault, where it struck, and how many
/// bytes it affected — enough to reconstruct the corruption in a failure
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// The fault that was injected.
    pub fault: Fault,
    /// Byte offset where the corruption starts.
    pub offset: usize,
    /// Bytes removed, replaced, or inserted (0 for a no-op degrade).
    pub len: usize,
}

/// Snaps `offset` down to the nearest char boundary of `text`.
fn snap(text: &str, mut offset: usize) -> usize {
    while offset > 0 && !text.is_char_boundary(offset) {
        offset -= 1;
    }
    offset
}

/// The byte ranges of `text`'s lines, terminators included.
fn line_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    while start < text.len() {
        let end = match text[start..].find('\n') {
            Some(i) => start + i + 1,
            None => text.len(),
        };
        spans.push((start, end));
        start = end;
    }
    spans
}

/// Applies one seeded `fault` to `text`, returning the corrupted log and
/// a [`FaultReport`] of what was done. Deterministic in `(text, fault,
/// rng state)`; total on every input including the empty string.
pub fn inject(text: &str, fault: Fault, rng: &mut Rng) -> (String, FaultReport) {
    let noop = FaultReport {
        fault,
        offset: 0,
        len: 0,
    };
    match fault {
        Fault::TruncateAtByte => {
            if text.len() < 2 {
                return (text.to_string(), noop);
            }
            let cut = snap(text, rng.range_usize(1, text.len()));
            if cut == 0 {
                return (text.to_string(), noop);
            }
            let report = FaultReport {
                fault,
                offset: cut,
                len: text.len() - cut,
            };
            (text[..cut].to_string(), report)
        }
        Fault::FlipByte => {
            if text.is_empty() {
                return (String::new(), noop);
            }
            let at = snap(text, rng.range_usize(0, text.len()));
            let original = text[at..].chars().next().expect("snapped to a char");
            // Pick a printable ASCII replacement that differs from the
            // original, so the flip is never a silent no-op.
            let mut replacement = rng.range_u8(0x20, 0x7f) as char;
            if replacement == original {
                replacement = if replacement == '~' { '!' } else { '~' };
            }
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..at]);
            out.push(replacement);
            out.push_str(&text[at + original.len_utf8()..]);
            let report = FaultReport {
                fault,
                offset: at,
                len: original.len_utf8(),
            };
            (out, report)
        }
        Fault::DeleteLine => {
            let spans = line_spans(text);
            if spans.is_empty() {
                return (text.to_string(), noop);
            }
            let (start, end) = spans[rng.range_usize(0, spans.len())];
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..start]);
            out.push_str(&text[end..]);
            let report = FaultReport {
                fault,
                offset: start,
                len: end - start,
            };
            (out, report)
        }
        Fault::DuplicateChunk => {
            let spans = line_spans(text);
            if spans.is_empty() {
                return (text.to_string(), noop);
            }
            let first = rng.range_usize(0, spans.len());
            let count = rng.range_usize(1, 9.min(spans.len() - first + 1));
            let start = spans[first].0;
            let end = spans[first + count - 1].1;
            let mut chunk = text[start..end].to_string();
            // Terminate an unterminated final line before repeating it, so
            // the duplicate is a parseable copy rather than a splice.
            if !chunk.ends_with('\n') {
                chunk.push('\n');
            }
            let mut out = String::with_capacity(text.len() + chunk.len());
            out.push_str(&text[..end]);
            out.push_str(&chunk);
            out.push_str(&text[end..]);
            let report = FaultReport {
                fault,
                offset: end,
                len: chunk.len(),
            };
            (out, report)
        }
        Fault::TornTail => {
            let spans = line_spans(text);
            let Some(&(start, end)) = spans.last() else {
                return (text.to_string(), noop);
            };
            // Cut strictly inside the last line: past its first byte,
            // before its terminator — leaving a torn, unterminated tail.
            if end - start < 2 {
                return (text.to_string(), noop);
            }
            let content_end = if text.ends_with('\n') { end - 1 } else { end };
            if content_end <= start + 1 {
                return (text.to_string(), noop);
            }
            let cut = snap(text, rng.range_usize(start + 1, content_end));
            if cut <= start {
                return (text.to_string(), noop);
            }
            let report = FaultReport {
                fault,
                offset: cut,
                len: text.len() - cut,
            };
            (text[..cut].to_string(), report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\ngc 500 840 2\nend 1000\n";

    #[test]
    fn all_faults_are_total_on_tiny_inputs() {
        for fault in Fault::ALL {
            for input in ["", "x", "x\n", "\n"] {
                let mut rng = Rng::new(7);
                let (out, report) = inject(input, fault, &mut rng);
                assert_eq!(report.fault, fault);
                if report.len == 0 {
                    assert_eq!(out, input, "{}: no-op must return input", fault.name());
                }
            }
        }
    }

    #[test]
    fn truncate_shortens_and_keeps_a_prefix() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject(LOG, Fault::TruncateAtByte, &mut rng);
            assert!(out.len() < LOG.len());
            assert_eq!(out, &LOG[..report.offset]);
        }
    }

    #[test]
    fn flip_changes_exactly_one_char() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject(LOG, Fault::FlipByte, &mut rng);
            assert_ne!(out, LOG);
            assert_eq!(out.len(), LOG.len());
            assert_eq!(&out[..report.offset], &LOG[..report.offset]);
            assert_eq!(&out[report.offset + 1..], &LOG[report.offset + 1..]);
        }
    }

    #[test]
    fn delete_line_removes_one_whole_line() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, _) = inject(LOG, Fault::DeleteLine, &mut rng);
            assert_eq!(out.lines().count(), LOG.lines().count() - 1);
        }
    }

    #[test]
    fn duplicate_chunk_repeats_consecutive_lines() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, report) = inject(LOG, Fault::DuplicateChunk, &mut rng);
            assert!(out.len() > LOG.len());
            assert!(report.len > 0);
            // Every line of the corrupted log already existed in the input.
            for line in out.lines() {
                assert!(LOG.lines().any(|l| l == line), "foreign line `{line}`");
            }
        }
    }

    #[test]
    fn torn_tail_leaves_an_unterminated_final_line() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let (out, _) = inject(LOG, Fault::TornTail, &mut rng);
            assert!(!out.ends_with('\n'));
            assert!(out.len() < LOG.len());
            // Only the final line was affected.
            let kept = out.lines().count() - 1;
            assert!(LOG.lines().take(kept).eq(out.lines().take(kept)));
        }
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        for fault in Fault::ALL {
            let mut a = Rng::new(99);
            let mut b = Rng::new(99);
            assert_eq!(inject(LOG, fault, &mut a), inject(LOG, fault, &mut b));
        }
    }

    #[test]
    fn structural_classification_excludes_flip() {
        assert!(!Fault::FlipByte.is_structural());
        assert_eq!(
            Fault::ALL.iter().filter(|f| f.is_structural()).count(),
            4
        );
    }
}
