//! Pathological [`std::io::Read`] implementations for exercising
//! streaming ingestion: readers that return input in adversarially small
//! or misaligned pieces, so codec unit boundaries (text lines, binary
//! frames) land anywhere relative to `read` calls. A correct streaming
//! consumer must produce identical results whatever the read geometry —
//! these readers make "whatever" concrete.

use std::io::{self, Read};

/// Yields at most `max` bytes per `read` call, regardless of the buffer
/// offered. `TrickleReader::new(data, 1)` is the worst case: every
/// multi-byte token, frame header, and UTF-8 sequence arrives split.
#[derive(Debug)]
pub struct TrickleReader<R> {
    inner: R,
    max: usize,
}

impl<R: Read> TrickleReader<R> {
    /// Wraps `inner`, capping every read at `max` bytes (`max` is clamped
    /// to at least 1 so the reader cannot fake an EOF).
    pub fn new(inner: R, max: usize) -> Self {
        TrickleReader {
            inner,
            max: max.max(1),
        }
    }
}

impl<R: Read> Read for TrickleReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.max);
        self.inner.read(&mut buf[..n])
    }
}

/// Cycles through a fixed pattern of read sizes — primes by default — so
/// successive reads are never aligned with any power-of-two block size or
/// with the input's own record boundaries.
#[derive(Debug)]
pub struct StutterReader<R> {
    inner: R,
    sizes: Vec<usize>,
    next: usize,
}

/// The default size cycle of [`StutterReader::new`]: small primes plus a
/// 1, so a boundary eventually lands inside every multi-byte token.
pub const STUTTER_SIZES: [usize; 7] = [3, 7, 1, 13, 31, 2, 61];

impl<R: Read> StutterReader<R> {
    /// Wraps `inner` with the [`STUTTER_SIZES`] cycle.
    pub fn new(inner: R) -> Self {
        Self::with_sizes(inner, STUTTER_SIZES.to_vec())
    }

    /// Wraps `inner` with an explicit size cycle (zeros are bumped to 1 —
    /// a zero-length read would be indistinguishable from EOF).
    pub fn with_sizes(inner: R, sizes: Vec<usize>) -> Self {
        let mut sizes: Vec<usize> = sizes.into_iter().map(|s| s.max(1)).collect();
        if sizes.is_empty() {
            sizes.push(1);
        }
        StutterReader {
            inner,
            sizes,
            next: 0,
        }
    }
}

impl<R: Read> Read for StutterReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let want = self.sizes[self.next % self.sizes.len()];
        self.next = self.next.wrapping_add(1);
        let n = buf.len().min(want);
        self.inner.read(&mut buf[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trickle_reader_delivers_everything_one_byte_at_a_time() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut r = TrickleReader::new(&data[..], 1);
        let mut buf = [0u8; 64];
        let mut out = Vec::new();
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert_eq!(n, 1, "never more than the cap");
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn stutter_reader_is_lossless_and_misaligned() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut r = StutterReader::new(&data[..]);
        let mut buf = [0u8; 256];
        let mut out = Vec::new();
        let mut saw_small = false;
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            saw_small |= n == 1;
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, data);
        assert!(saw_small, "the cycle includes a 1-byte read");
    }
}
