//! Retaining-path sampling: *who holds the drag*.
//!
//! The drag report names the allocation site of every dragging object,
//! but the assign-null rewriting needs the opposite end of the story —
//! the reference path that keeps the object reachable. This module
//! samples that path during the full-heap mark the profiler's deep GC
//! already performs: every newly marked object draws from a seeded
//! generator, and a hit reconstructs the object's discovery path back
//! to a mutator root (a static, a frame local, an operand stack slot,
//! or a monitor).
//!
//! Paths are *bounded access paths* in the sense of the access-graph
//! literature: array indices collapse to `[*]`, and paths longer than
//! [`RetainConfig::max_depth`] are truncated at the leaf end (keeping
//! the root-anchored prefix, which is what the optimizer needs). This
//! keeps the path universe finite, so per-site summaries converge.
//!
//! Everything here is deterministic given the seed: the mark worklist
//! order is a pure function of the mutator state, the generator is
//! SplitMix64, and one draw happens per newly marked object.

use std::collections::HashMap;

use crate::heap::{Handle, Heap};
use crate::ids::{MethodId, ObjectId};
use crate::program::Program;

/// SplitMix64 step (same generator the test kit uses; reimplemented here
/// because the VM cannot depend on the test kit).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retain-sampling knobs. Stored as an integer threshold (not an `f64`
/// rate) so `VmConfig` stays `Eq` and the sampling decision is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetainConfig {
    /// A newly marked object is sampled when a SplitMix64 draw is
    /// strictly below this threshold. `0` disables sampling entirely;
    /// `u64::MAX` samples (almost) every object.
    pub threshold: u64,
    /// Seed of the per-run SplitMix64 stream.
    pub seed: u64,
    /// Maximum number of path steps kept (root side wins; longer paths
    /// are flagged truncated).
    pub max_depth: u32,
}

impl RetainConfig {
    /// The documented default sampling rate (1 object in 16).
    pub const DEFAULT_RATE: f64 = 1.0 / 16.0;
    /// The default seed: ASCII `heapdrag`.
    pub const DEFAULT_SEED: u64 = 0x6865_6170_6472_6167;
    /// The default path-depth bound.
    pub const DEFAULT_MAX_DEPTH: u32 = 8;

    /// Builds a config from a sampling rate in `[0, 1]`; returns `None`
    /// for a non-positive rate (sampling off). Rates above 1 clamp.
    pub fn from_rate(rate: f64) -> Option<Self> {
        if rate.is_nan() || rate <= 0.0 {
            return None;
        }
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        Some(RetainConfig {
            threshold,
            seed: Self::DEFAULT_SEED,
            max_depth: Self::DEFAULT_MAX_DEPTH,
        })
    }

    /// Same as [`RetainConfig::from_rate`] with an explicit seed.
    pub fn from_rate_seeded(rate: f64, seed: u64) -> Option<Self> {
        Self::from_rate(rate).map(|c| RetainConfig { seed, ..c })
    }
}

/// Where a retaining path is anchored: the mutator root that discovered
/// the sampled object during the mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootRef {
    /// A static variable, by index into [`Program::statics`].
    Static(u32),
    /// A frame local slot.
    Local {
        /// The frame's method.
        method: MethodId,
        /// The local slot index.
        slot: u32,
    },
    /// An operand-stack slot of a frame (transient).
    Stack {
        /// The frame's method.
        method: MethodId,
    },
    /// A held monitor.
    Monitor,
    /// An implicit GC root (pinned object or pending finalizer).
    Pinned,
}

impl RootRef {
    /// Stable textual rendering, e.g. `static jess.Engine.workingMemory`
    /// or `local Gen.main#2`. The first word is the root *kind*; the
    /// optimizer keys off it.
    pub fn render(&self, program: &Program) -> String {
        match self {
            RootRef::Static(i) => format!("static {}", program.statics[*i as usize].name),
            RootRef::Local { method, slot } => {
                format!("local {}#{}", program.method_name(*method), slot)
            }
            RootRef::Stack { method } => format!("stack {}", program.method_name(*method)),
            RootRef::Monitor => "monitor".to_string(),
            RootRef::Pinned => "pinned".to_string(),
        }
    }
}

/// A bounded access path, already rendered to its stable text form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct RetainPath {
    /// `<root> -> <Class.field> -> ... ` (arrays collapse to `[*]`).
    pub text: String,
    /// Number of edge steps between the root and the object (0 = the
    /// object is directly rooted).
    pub depth: u32,
    /// True when the real path was longer than the depth bound and the
    /// leaf end was cut.
    pub truncated: bool,
}

impl RetainPath {
    /// Builds a path value.
    pub fn new(text: impl Into<String>, depth: u32, truncated: bool) -> Self {
        RetainPath {
            text: text.into(),
            depth,
            truncated,
        }
    }
}

/// One resolved sample: a surviving object and the path that retains it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainSample {
    /// The sampled (marked, surviving) object.
    pub object: ObjectId,
    /// Its size in bytes — the sample's weight.
    pub size: u64,
    /// The retaining path.
    pub path: RetainPath,
}

/// Mark-time edge tracker and sampler, threaded through
/// [`collect_full_traced`](crate::gc::collect_full_traced).
///
/// The mark loop calls [`note_seed`](Self::note_seed) for every initial
/// worklist entry, [`note_edge`](Self::note_edge) for every traced
/// reference edge, and [`draw`](Self::draw) once per newly marked
/// object; [`resolve`](Self::resolve) then turns the hits into
/// [`RetainSample`]s while the marked heap is still intact.
#[derive(Debug)]
pub struct RetainSampler {
    config: RetainConfig,
    state: u64,
    /// Handles that terminate a path walk (mutator roots and implicit
    /// GC seeds), indexed by handle slot.
    terminal: Vec<bool>,
    /// Discovery-tree parent of each handle: `(parent, slot-in-parent)`,
    /// recorded at first push and never overwritten.
    parents: Vec<Option<(Handle, u32)>>,
    /// Root descriptors for terminal handles.
    roots: HashMap<Handle, RootRef>,
    hits: Vec<Handle>,
    samples: Vec<RetainSample>,
}

impl RetainSampler {
    /// Creates a sampler for one collection. `state` carries the
    /// SplitMix64 stream across collections; `roots` maps each mutator
    /// root handle to its descriptor (first-wins priority chosen by the
    /// caller).
    pub fn new(config: RetainConfig, state: u64, roots: HashMap<Handle, RootRef>) -> Self {
        RetainSampler {
            config,
            state,
            terminal: Vec::new(),
            parents: Vec::new(),
            roots,
            hits: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// The generator state after the collection, to be carried into the
    /// next one.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Marks `h` as a path terminator (initial worklist entry).
    #[inline]
    pub fn note_seed(&mut self, h: Handle) {
        let idx = h.index();
        if idx >= self.terminal.len() {
            self.terminal.resize(idx + 1, false);
        }
        self.terminal[idx] = true;
    }

    /// Records the discovery edge `parent --slot--> child`, unless the
    /// child is a terminal or already has a parent. Recording at *push*
    /// time (before the child is marked) guarantees the parent chain is
    /// acyclic: every recorded parent was marked strictly before its
    /// child.
    #[inline]
    pub fn note_edge(&mut self, child: Handle, parent: Handle, slot: u32) {
        let idx = child.index();
        if idx < self.terminal.len() && self.terminal[idx] {
            return;
        }
        if idx >= self.parents.len() {
            self.parents.resize(idx + 1, None);
        }
        if self.parents[idx].is_none() {
            self.parents[idx] = Some((parent, slot));
        }
    }

    /// One draw per newly marked object; a hit queues the object for
    /// path resolution.
    #[inline]
    pub fn draw(&mut self, h: Handle) {
        if splitmix64(&mut self.state) < self.config.threshold {
            self.hits.push(h);
        }
    }

    /// Resolves every hit into a [`RetainSample`] while the marked heap
    /// is still populated (called between mark and sweep).
    pub fn resolve(&mut self, heap: &Heap, program: &Program) {
        let hits = std::mem::take(&mut self.hits);
        for h in hits {
            let Some(obj) = heap.get(h) else { continue };
            if obj.pinned {
                continue;
            }
            let (root, steps, truncated) = self.walk(h);
            let root_text = self
                .roots
                .get(&root)
                .copied()
                .unwrap_or(RootRef::Pinned)
                .render(program);
            let mut text = root_text;
            for &(parent, slot) in &steps {
                text.push_str(" -> ");
                text.push_str(&edge_label(heap, program, parent, slot));
            }
            self.samples.push(RetainSample {
                object: obj.id,
                size: obj.size_bytes,
                path: RetainPath::new(text, steps.len() as u32, truncated),
            });
        }
    }

    /// Walks the discovery tree from `h` up to its terminal, returning
    /// the terminal handle, the root-to-leaf edge steps (bounded by
    /// `max_depth`, root side kept), and the truncation flag.
    fn walk(&self, h: Handle) -> (Handle, Vec<(Handle, u32)>, bool) {
        let mut up = Vec::new();
        let mut cur = h;
        while let Some(&(parent, slot)) = self.parents.get(cur.index()).and_then(|p| p.as_ref()) {
            up.push((parent, slot));
            cur = parent;
        }
        up.reverse();
        let truncated = up.len() > self.config.max_depth as usize;
        if truncated {
            up.truncate(self.config.max_depth as usize);
        }
        (cur, up, truncated)
    }

    /// The resolved samples, in deterministic (draw) order.
    pub fn into_samples(self) -> Vec<RetainSample> {
        self.samples
    }

    /// Drains the resolved samples, leaving the sampler reusable.
    pub fn take_samples(&mut self) -> Vec<RetainSample> {
        std::mem::take(&mut self.samples)
    }
}

/// Label of the edge out of `parent` at `slot`: `Class.field` for a
/// scalar field (resolved through the class layout, so inherited fields
/// name their declaring class), `[*]` for any array element (the
/// bounded-index abstraction).
fn edge_label(heap: &Heap, program: &Program, parent: Handle, slot: u32) -> String {
    let Some(po) = heap.get(parent) else {
        return "?".to_string();
    };
    if po.is_array {
        return "[*]".to_string();
    }
    let layout = &program.classes[po.class.index()].layout;
    match layout.get(slot as usize) {
        Some(&(declaring, field)) => {
            let class = &program.classes[declaring.index()];
            format!("{}.{}", class.name, class.fields[field as usize].name)
        }
        None => "?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rate_bounds() {
        assert!(RetainConfig::from_rate(0.0).is_none());
        assert!(RetainConfig::from_rate(-1.0).is_none());
        assert!(RetainConfig::from_rate(f64::NAN).is_none());
        assert_eq!(RetainConfig::from_rate(2.0).unwrap().threshold, u64::MAX);
        let half = RetainConfig::from_rate(0.5).unwrap();
        assert!(half.threshold > u64::MAX / 4 && half.threshold < 3 * (u64::MAX / 4));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..10 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn path_walk_is_bounded() {
        let config = RetainConfig {
            threshold: u64::MAX,
            seed: 1,
            max_depth: 2,
        };
        let mut s = RetainSampler::new(config, 1, HashMap::new());
        // Build a chain root(0) -> 1 -> 2 -> 3 -> 4 via fabricated handles.
        let h = |i: u32| Handle::from_parts(i, 0);
        s.note_seed(h(0));
        for i in 1..5u32 {
            s.note_edge(h(i), h(i - 1), 0);
        }
        let (root, steps, truncated) = s.walk(h(4));
        assert_eq!(root, h(0));
        assert_eq!(steps.len(), 2, "root-side prefix kept");
        assert!(truncated);
        assert_eq!(steps[0].0, h(0));
        let (_, steps1, trunc1) = s.walk(h(1));
        assert_eq!(steps1.len(), 1);
        assert!(!trunc1);
    }

    #[test]
    fn first_parent_wins_and_terminals_stay_parentless() {
        let config = RetainConfig {
            threshold: 0,
            seed: 1,
            max_depth: 8,
        };
        let mut s = RetainSampler::new(config, 1, HashMap::new());
        let h = |i: u32| Handle::from_parts(i, 0);
        s.note_seed(h(0));
        s.note_edge(h(0), h(1), 3); // terminal: ignored
        s.note_edge(h(2), h(0), 1);
        s.note_edge(h(2), h(1), 7); // second parent: ignored
        let (root, steps, _) = s.walk(h(2));
        assert_eq!(root, h(0));
        assert_eq!(steps, vec![(h(0), 1)]);
        let (root0, steps0, _) = s.walk(h(0));
        assert_eq!(root0, h(0));
        assert!(steps0.is_empty());
    }
}
