//! A linked bytecode program: classes, methods, statics, and selectors.

use std::collections::HashMap;

use crate::class::{ClassDef, Method, Visibility};
use crate::error::VmError;
use crate::ids::{ClassId, MethodId, StaticId, VSlot};
use crate::insn::Insn;
use crate::value::Value;

/// A static (global) variable.
#[derive(Debug, Clone)]
pub struct StaticDef {
    /// Qualified name, e.g. `"jdk.Locale.EN_US"`.
    pub name: String,
    /// Visibility, scoping the usage analyses.
    pub visibility: Visibility,
    /// Initial value (restored at the start of every run).
    pub init: Value,
}

/// Ids of the classes every program is born with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtins {
    /// Root of the class hierarchy.
    pub object: ClassId,
    /// Class of all arrays created by `newarray`.
    pub array: ClassId,
    /// Thrown by `div`/`rem` with a zero divisor.
    pub arithmetic: ClassId,
    /// Thrown by uses of a null receiver.
    pub null_pointer: ClassId,
    /// Thrown by out-of-range array access.
    pub index_oob: ClassId,
    /// Thrown when an allocation would exceed the heap limit.
    pub out_of_memory: ClassId,
}

/// A complete program.
///
/// Construct one with [`ProgramBuilder`](crate::builder::ProgramBuilder) (or
/// the [assembler](crate::asm)), which calls [`Program::link`] for you.
#[derive(Debug, Clone)]
pub struct Program {
    /// All classes, indexed by [`ClassId`].
    pub classes: Vec<ClassDef>,
    /// All methods, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// All static variables, indexed by [`StaticId`].
    pub statics: Vec<StaticDef>,
    /// Selector names, indexed by [`VSlot`].
    pub selectors: Vec<String>,
    /// The entry method; must be static.
    pub entry: MethodId,
    /// Ids of the builtin classes.
    pub builtins: Builtins,
}

impl Program {
    /// Creates an empty, unlinked program containing only the builtin
    /// classes and a placeholder entry.
    pub fn empty() -> Self {
        let mut classes = Vec::new();
        let mut add = |name: &str| {
            let id = ClassId(classes.len() as u32);
            let mut c = ClassDef::new(name);
            if name != "Object" {
                c.super_class = Some(ClassId(0));
            }
            classes.push(c);
            id
        };
        let object = add("Object");
        let array = add("Array");
        let arithmetic = add("ArithmeticException");
        let null_pointer = add("NullPointerException");
        let index_oob = add("IndexOutOfBoundsException");
        let out_of_memory = add("OutOfMemoryError");
        Program {
            classes,
            methods: Vec::new(),
            statics: Vec::new(),
            selectors: Vec::new(),
            entry: MethodId(0),
            builtins: Builtins {
                object,
                array,
                arithmetic,
                null_pointer,
                index_oob,
                out_of_memory,
            },
        }
    }

    /// Resolves field layouts, vtables, and validates bytecode.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::LinkError`] on cyclic inheritance, duplicate field
    /// names within a layout, or a non-static entry method, and
    /// [`VmError::InvalidBytecode`] for out-of-range ids, locals, or jump
    /// targets.
    pub fn link(&mut self) -> Result<(), VmError> {
        self.link_layouts()?;
        self.link_vtables()?;
        self.validate()?;
        Ok(())
    }

    fn link_layouts(&mut self) -> Result<(), VmError> {
        let n = self.classes.len();
        let mut done = vec![false; n];
        for id in 0..n {
            self.layout_of(ClassId(id as u32), &mut done, 0)?;
        }
        Ok(())
    }

    fn layout_of(&mut self, id: ClassId, done: &mut [bool], depth: usize) -> Result<(), VmError> {
        if done[id.index()] {
            return Ok(());
        }
        if depth > self.classes.len() {
            return Err(VmError::LinkError(format!(
                "inheritance cycle involving class {}",
                self.classes[id.index()].name
            )));
        }
        let mut layout = Vec::new();
        if let Some(sup) = self.classes[id.index()].super_class {
            self.layout_of(sup, done, depth + 1)?;
            layout.extend(self.classes[sup.index()].layout.iter().copied());
        }
        let own = self.classes[id.index()].fields.len() as u16;
        for i in 0..own {
            layout.push((id, i));
        }
        // Duplicate names within a class are rejected; shadowing a super
        // field is allowed (distinct slots), matching Java semantics.
        let names: Vec<&str> = self.classes[id.index()]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        for (i, a) in names.iter().enumerate() {
            if names[..i].contains(a) {
                return Err(VmError::LinkError(format!(
                    "duplicate field `{a}` in class {}",
                    self.classes[id.index()].name
                )));
            }
        }
        self.classes[id.index()].layout = layout;
        done[id.index()] = true;
        Ok(())
    }

    fn link_vtables(&mut self) -> Result<(), VmError> {
        // Every instance method name becomes a selector.
        let mut by_name: HashMap<String, VSlot> = self
            .selectors
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), VSlot(i as u32)))
            .collect();
        for m in &self.methods {
            if m.class.is_some() && !m.is_static && !by_name.contains_key(&m.name) {
                let slot = VSlot(self.selectors.len() as u32);
                self.selectors.push(m.name.clone());
                by_name.insert(m.name.clone(), slot);
            }
        }
        let nsel = self.selectors.len();
        // Fill vtables in superclass-first order (layouts already verified
        // the hierarchy is acyclic).
        let order = self.linearized_order();
        for id in order {
            let mut vtable = match self.classes[id.index()].super_class {
                Some(sup) => self.classes[sup.index()].vtable.clone(),
                None => Vec::new(),
            };
            vtable.resize(nsel, None);
            for (mid, m) in self.methods.iter().enumerate() {
                if m.class == Some(id) && !m.is_static {
                    let slot = by_name[&m.name];
                    vtable[slot.index()] = Some(MethodId(mid as u32));
                }
            }
            self.classes[id.index()].vtable = vtable;
        }
        Ok(())
    }

    fn linearized_order(&self) -> Vec<ClassId> {
        let n = self.classes.len();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Repeatedly emit classes whose super is already placed.
        while order.len() < n {
            let before = order.len();
            for i in 0..n {
                if placed[i] {
                    continue;
                }
                let ready = match self.classes[i].super_class {
                    Some(s) => placed[s.index()],
                    None => true,
                };
                if ready {
                    placed[i] = true;
                    order.push(ClassId(i as u32));
                }
            }
            if order.len() == before {
                break; // cycle; link_layouts already rejected it
            }
        }
        order
    }

    fn validate(&self) -> Result<(), VmError> {
        let entry = self
            .methods
            .get(self.entry.index())
            .ok_or_else(|| VmError::LinkError("entry method does not exist".into()))?;
        if !entry.is_static {
            return Err(VmError::LinkError("entry method must be static".into()));
        }
        for (mi, m) in self.methods.iter().enumerate() {
            let mid = MethodId(mi as u32);
            let len = m.code.len() as u32;
            for (pc, insn) in m.code.iter().enumerate() {
                let pc = pc as u32;
                let bad = |reason: String| VmError::InvalidBytecode {
                    method: mid,
                    pc,
                    reason,
                };
                if let Some(t) = insn.jump_target() {
                    if t >= len {
                        return Err(bad(format!("jump target {t} out of range (len {len})")));
                    }
                }
                match insn {
                    Insn::Load(n) | Insn::Store(n)
                        if *n >= m.num_locals => {
                            return Err(bad(format!(
                                "local {n} out of range ({} locals)",
                                m.num_locals
                            )));
                        }
                    Insn::New(c) | Insn::InstanceOf(c)
                        if c.index() >= self.classes.len() => {
                            return Err(bad(format!("unknown class {c}")));
                        }
                    Insn::Call(target)
                        if target.index() >= self.methods.len() => {
                            return Err(bad(format!("unknown method {target}")));
                        }
                    Insn::CallVirtual { vslot, .. }
                        if vslot.index() >= self.selectors.len() => {
                            return Err(bad(format!("unknown selector {vslot}")));
                        }
                    Insn::GetStatic(s) | Insn::PutStatic(s)
                        if s.index() >= self.statics.len() => {
                            return Err(bad(format!("unknown static {s}")));
                        }
                    _ => {}
                }
            }
            for h in &m.handlers {
                if h.start_pc > h.end_pc || h.end_pc > len || h.handler_pc >= len.max(1) {
                    return Err(VmError::InvalidBytecode {
                        method: mid,
                        pc: h.start_pc,
                        reason: "malformed exception handler range".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// True if `sub` equals `sup` or inherits from it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c.index()].super_class;
        }
        false
    }

    /// Resolves a field name to its layout slot in `class` (searching
    /// inherited fields too, innermost declaration first).
    pub fn field_slot(&self, class: ClassId, name: &str) -> Option<u16> {
        let layout = &self.classes[class.index()].layout;
        // Prefer the most-derived declaration (shadowing).
        for (slot, (decl, idx)) in layout.iter().enumerate().rev() {
            if self.classes[decl.index()].fields[*idx as usize].name == name {
                return Some(slot as u16);
            }
        }
        None
    }

    /// The declaring class and [`FieldDef`](crate::class::FieldDef) behind a
    /// layout slot of `class`.
    pub fn field_at(&self, class: ClassId, slot: u16) -> Option<(ClassId, &crate::class::FieldDef)> {
        let (decl, idx) = *self.classes[class.index()].layout.get(slot as usize)?;
        Some((decl, &self.classes[decl.index()].fields[idx as usize]))
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Looks up a method by `(class, name)`; pass `None` for free functions.
    pub fn method_by_name(&self, class: Option<ClassId>, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.class == class && m.name == name)
            .map(|i| MethodId(i as u32))
    }

    /// Looks up a static variable by qualified name.
    pub fn static_by_name(&self, name: &str) -> Option<StaticId> {
        self.statics
            .iter()
            .position(|s| s.name == name)
            .map(|i| StaticId(i as u32))
    }

    /// Looks up a selector slot by method name.
    pub fn selector(&self, name: &str) -> Option<VSlot> {
        self.selectors
            .iter()
            .position(|s| s == name)
            .map(|i| VSlot(i as u32))
    }

    /// The method a virtual call on an instance of `class` through `vslot`
    /// dispatches to.
    pub fn dispatch(&self, class: ClassId, vslot: VSlot) -> Option<MethodId> {
        self.classes[class.index()]
            .vtable
            .get(vslot.index())
            .copied()
            .flatten()
    }

    /// Human-readable name of a method, qualified by its class.
    pub fn method_name(&self, id: MethodId) -> String {
        let m = &self.methods[id.index()];
        m.qualified_name(m.class.map(|c| self.classes[c.index()].name.as_str()))
    }

    /// Total static count of instructions across all methods — the stand-in
    /// for the paper's "source code statements" column of Table 1.
    pub fn code_size(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FieldDef;

    fn two_class_program() -> Program {
        let mut p = Program::empty();
        let base = ClassId(p.classes.len() as u32);
        let mut c = ClassDef::new("Base");
        c.super_class = Some(p.builtins.object);
        c.fields.push(FieldDef::new("x", Visibility::Private));
        p.classes.push(c);
        let _derived = ClassId(p.classes.len() as u32);
        let mut c = ClassDef::new("Derived");
        c.super_class = Some(base);
        c.fields.push(FieldDef::new("y", Visibility::Public));
        p.classes.push(c);
        let mut main = Method::new("main", 1, 1);
        main.code = vec![Insn::Ret];
        p.methods.push(main);
        p.entry = MethodId(0);
        p
    }

    #[test]
    fn layouts_inherit_fields() {
        let mut p = two_class_program();
        p.link().unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        assert_eq!(p.classes[derived.index()].num_slots(), 2);
        assert_eq!(p.field_slot(derived, "x"), Some(0));
        assert_eq!(p.field_slot(derived, "y"), Some(1));
        assert_eq!(p.field_slot(derived, "z"), None);
    }

    #[test]
    fn subclass_checks() {
        let mut p = two_class_program();
        p.link().unwrap();
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        assert!(p.is_subclass(derived, base));
        assert!(p.is_subclass(derived, p.builtins.object));
        assert!(!p.is_subclass(base, derived));
    }

    #[test]
    fn vtable_override() {
        let mut p = two_class_program();
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        let mut m1 = Method::new("describe", 1, 1);
        m1.class = Some(base);
        m1.is_static = false;
        m1.code = vec![Insn::Ret];
        let m1_id = MethodId(p.methods.len() as u32);
        p.methods.push(m1);
        let mut m2 = Method::new("describe", 1, 1);
        m2.class = Some(derived);
        m2.is_static = false;
        m2.code = vec![Insn::Ret];
        let m2_id = MethodId(p.methods.len() as u32);
        p.methods.push(m2);
        p.link().unwrap();
        let slot = p.selector("describe").unwrap();
        assert_eq!(p.dispatch(base, slot), Some(m1_id));
        assert_eq!(p.dispatch(derived, slot), Some(m2_id));
        assert_eq!(p.dispatch(p.builtins.object, slot), None);
    }

    #[test]
    fn link_rejects_cycles() {
        let mut p = Program::empty();
        let a = ClassId(p.classes.len() as u32);
        let b = ClassId(p.classes.len() as u32 + 1);
        let mut ca = ClassDef::new("A");
        ca.super_class = Some(b);
        let mut cb = ClassDef::new("B");
        cb.super_class = Some(a);
        p.classes.push(ca);
        p.classes.push(cb);
        let mut main = Method::new("main", 1, 1);
        main.code = vec![Insn::Ret];
        p.methods.push(main);
        assert!(matches!(p.link(), Err(VmError::LinkError(_))));
    }

    #[test]
    fn link_rejects_duplicate_fields() {
        let mut p = Program::empty();
        let mut c = ClassDef::new("C");
        c.super_class = Some(p.builtins.object);
        c.fields.push(FieldDef::new("f", Visibility::Private));
        c.fields.push(FieldDef::new("f", Visibility::Private));
        p.classes.push(c);
        let mut main = Method::new("main", 1, 1);
        main.code = vec![Insn::Ret];
        p.methods.push(main);
        assert!(matches!(p.link(), Err(VmError::LinkError(_))));
    }

    #[test]
    fn validate_rejects_bad_jump() {
        let mut p = Program::empty();
        let mut main = Method::new("main", 1, 1);
        main.code = vec![Insn::Jump(5), Insn::Ret];
        p.methods.push(main);
        assert!(matches!(p.link(), Err(VmError::InvalidBytecode { .. })));
    }

    #[test]
    fn validate_rejects_bad_local() {
        let mut p = Program::empty();
        let mut main = Method::new("main", 1, 2);
        main.code = vec![Insn::Load(7), Insn::Ret];
        p.methods.push(main);
        assert!(matches!(p.link(), Err(VmError::InvalidBytecode { .. })));
    }

    #[test]
    fn code_size_counts_all_methods() {
        let mut p = two_class_program();
        p.link().unwrap();
        assert_eq!(p.code_size(), 1);
    }
}
