//! A textual assembly front-end for VM programs.
//!
//! The format mirrors the builder API one declaration per line:
//!
//! ```text
//! ; a line comment
//! class Point {
//!   field x private
//!   field y private
//! }
//! class Point3 extends Point {
//!   field z public
//! }
//! static Counter.total public = 0
//!
//! method main static params=1 locals=2 {
//!   new Point
//!   store 1
//!   load 1
//!   push 3
//!   putfield Point.x
//!   load 1
//!   getfield Point.x
//!   print
//!   ret
//! }
//! entry main
//! ```
//!
//! Method bodies support labels (`name:`), `.site "text"` to attach a
//! site label to the next instruction, and
//! `.handler start end target ClassName` (or `*` to catch all) for
//! exception handlers. Instance methods are written `method Class.name
//! params=... locals=...` without `static`; parameter 0 is the receiver.

use std::error::Error;
use std::fmt;

use crate::builder::ProgramBuilder;
use crate::class::Visibility;
use crate::error::VmError;
use crate::ids::{ClassId, MethodId};
use crate::program::Program;
use crate::value::Value;

/// An assembly-time error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

impl From<VmError> for AsmError {
    fn from(e: VmError) -> Self {
        AsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Assembles `source` into a linked [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax or link problem.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new(source).assemble()
}

struct Line<'a> {
    number: usize,
    text: &'a str,
}

struct MethodDecl<'a> {
    name: String,
    class: Option<String>,
    is_static: bool,
    params: u16,
    locals: u16,
    body: Vec<Line<'a>>,
    decl_line: usize,
}

struct Assembler<'a> {
    lines: Vec<Line<'a>>,
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_visibility(word: &str, line: usize) -> Result<Visibility, AsmError> {
    match word {
        "private" => Ok(Visibility::Private),
        "package" => Ok(Visibility::Package),
        "protected" => Ok(Visibility::Protected),
        "public" => Ok(Visibility::Public),
        other => Err(err(line, format!("unknown visibility `{other}`"))),
    }
}

fn parse_kv(word: &str, key: &str, line: usize) -> Result<u16, AsmError> {
    let rest = word
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| err(line, format!("expected `{key}=N`, found `{word}`")))?;
    rest.parse()
        .map_err(|_| err(line, format!("bad number in `{word}`")))
}

impl<'a> Assembler<'a> {
    fn new(source: &'a str) -> Self {
        let lines = source
            .lines()
            .enumerate()
            .map(|(i, raw)| {
                let text = match raw.find(';') {
                    // Keep `;` inside quoted site labels.
                    Some(pos) if !raw[..pos].contains('"') => &raw[..pos],
                    _ => raw,
                };
                Line {
                    number: i + 1,
                    text: text.trim(),
                }
            })
            .filter(|l| !l.text.is_empty())
            .collect();
        Assembler { lines }
    }

    fn assemble(self) -> Result<Program, AsmError> {
        let mut b = ProgramBuilder::new();
        let mut methods: Vec<MethodDecl<'a>> = Vec::new();
        let mut entry_name: Option<(String, usize)> = None;
        let mut pending_finalizers: Vec<(ClassId, String, usize)> = Vec::new();

        let mut i = 0;
        while i < self.lines.len() {
            let line = &self.lines[i];
            let mut words = line.text.split_whitespace();
            match words.next() {
                Some("class") => {
                    i = self.parse_class(&mut b, i, &mut pending_finalizers)?;
                }
                Some("static") => {
                    self.parse_static(&mut b, line)?;
                    i += 1;
                }
                Some("method") => {
                    let (decl, next) = self.parse_method(i)?;
                    methods.push(decl);
                    i = next;
                }
                Some("entry") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err(line.number, "entry needs a method name"))?;
                    entry_name = Some((name.to_string(), line.number));
                    i += 1;
                }
                Some(other) => {
                    return Err(err(line.number, format!("unexpected `{other}`")));
                }
                None => i += 1,
            }
        }

        // Declare all methods, then assemble bodies (allows forward calls).
        let mut ids: Vec<MethodId> = Vec::new();
        for decl in &methods {
            let class = match &decl.class {
                Some(name) => Some(self.resolve_class(&b, name, decl.decl_line)?),
                None => None,
            };
            ids.push(b.declare_method(
                decl.name.clone(),
                class,
                decl.is_static,
                decl.params,
                decl.locals,
            ));
        }
        for (decl, id) in methods.iter().zip(&ids) {
            self.assemble_body(&mut b, decl, *id, &methods, &ids)?;
        }
        for (class_id, method_name, fline) in pending_finalizers {
            let class_name = b.program().classes[class_id.index()].name.clone();
            let mid = methods
                .iter()
                .position(|m| m.class.as_deref() == Some(class_name.as_str()) && m.name == method_name)
                .map(|i| ids[i])
                .ok_or_else(|| {
                    err(
                        fline,
                        format!("finalizer `{method_name}` is not a method of `{class_name}`"),
                    )
                })?;
            b.set_finalizer(class_id, mid);
        }

        let (entry, entry_line) =
            entry_name.ok_or_else(|| err(0, "missing `entry` declaration"))?;
        let entry_id = methods
            .iter()
            .position(|m| m.class.is_none() && m.name == entry)
            .map(|i| ids[i])
            .ok_or_else(|| err(entry_line, format!("entry method `{entry}` not found")))?;
        b.set_entry(entry_id);
        b.finish().map_err(AsmError::from)
    }

    fn resolve_class(
        &self,
        b: &ProgramBuilder,
        name: &str,
        line: usize,
    ) -> Result<ClassId, AsmError> {
        b.program()
            .class_by_name(name)
            .ok_or_else(|| err(line, format!("unknown class `{name}`")))
    }

    fn parse_class(
        &self,
        b: &mut ProgramBuilder,
        start: usize,
        pending_finalizers: &mut Vec<(ClassId, String, usize)>,
    ) -> Result<usize, AsmError> {
        let line = &self.lines[start];
        let words: Vec<&str> = line.text.split_whitespace().collect();
        // class NAME [extends SUPER] [pinned] {
        if words.last() != Some(&"{") {
            return Err(err(line.number, "class declaration must end with `{`"));
        }
        let name = *words
            .get(1)
            .ok_or_else(|| err(line.number, "class needs a name"))?;
        let mut cb = b.begin_class(name);
        let mut idx = 2;
        while idx + 1 < words.len() {
            match words[idx] {
                "extends" => {
                    let sup = words
                        .get(idx + 1)
                        .ok_or_else(|| err(line.number, "extends needs a class"))?;
                    // ClassBuilder borrows b; resolve through its program view.
                    let sup_id = {
                        // finish the resolution against the already-registered classes
                        let p = cb.builder_program();
                        p.class_by_name(sup)
                            .ok_or_else(|| err(line.number, format!("unknown class `{sup}`")))?
                    };
                    cb = cb.extends(sup_id);
                    idx += 2;
                }
                "pinned" => {
                    cb = cb.pinned();
                    idx += 1;
                }
                other => return Err(err(line.number, format!("unexpected `{other}`"))),
            }
        }

        let mut finalizer: Option<(String, usize)> = None;
        let mut i = start + 1;
        loop {
            let line = self
                .lines
                .get(i)
                .ok_or_else(|| err(0, "unterminated class block"))?;
            if line.text == "}" {
                let class_id = cb.finish();
                if let Some((method, fline)) = finalizer {
                    pending_finalizers.push((class_id, method, fline));
                }
                return Ok(i + 1);
            }
            let words: Vec<&str> = line.text.split_whitespace().collect();
            match words.as_slice() {
                ["field", name, vis] => {
                    cb = cb.field(*name, parse_visibility(vis, line.number)?);
                }
                ["field", name] => {
                    cb = cb.field(*name, Visibility::Private);
                }
                ["finalizer", method] => {
                    finalizer = Some((method.to_string(), line.number));
                }
                _ => {
                    return Err(err(
                        line.number,
                        "expected `field NAME [visibility]`, `finalizer NAME`, or `}`",
                    ))
                }
            }
            i += 1;
        }
    }

    fn parse_static(&self, b: &mut ProgramBuilder, line: &Line<'_>) -> Result<(), AsmError> {
        // static NAME VIS = INT | static NAME VIS = null
        let words: Vec<&str> = line.text.split_whitespace().collect();
        let (name, vis, init) = match words.as_slice() {
            ["static", name, vis, "=", init] => (name, parse_visibility(vis, line.number)?, init),
            _ => {
                return Err(err(
                    line.number,
                    "expected `static NAME VISIBILITY = INT|null`",
                ))
            }
        };
        let value = if *init == "null" {
            Value::Null
        } else {
            Value::Int(
                init.parse()
                    .map_err(|_| err(line.number, format!("bad initializer `{init}`")))?,
            )
        };
        b.static_var(*name, vis, value);
        Ok(())
    }

    fn parse_method(&self, start: usize) -> Result<(MethodDecl<'a>, usize), AsmError> {
        let line = &self.lines[start];
        let words: Vec<&str> = line.text.split_whitespace().collect();
        if words.last() != Some(&"{") {
            return Err(err(line.number, "method declaration must end with `{`"));
        }
        let full = *words
            .get(1)
            .ok_or_else(|| err(line.number, "method needs a name"))?;
        let (class, name) = match full.rsplit_once('.') {
            Some((c, n)) => (Some(c.to_string()), n.to_string()),
            None => (None, full.to_string()),
        };
        let mut is_static = class.is_none();
        let mut params = None;
        let mut locals = None;
        for w in &words[2..words.len() - 1] {
            if *w == "static" {
                is_static = true;
            } else if w.starts_with("params") {
                params = Some(parse_kv(w, "params", line.number)?);
            } else if w.starts_with("locals") {
                locals = Some(parse_kv(w, "locals", line.number)?);
            } else {
                return Err(err(line.number, format!("unexpected `{w}`")));
            }
        }
        let params = params.ok_or_else(|| err(line.number, "method needs params=N"))?;
        let locals = locals.unwrap_or(params);

        let mut body = Vec::new();
        let mut i = start + 1;
        loop {
            let l = self
                .lines
                .get(i)
                .ok_or_else(|| err(line.number, "unterminated method block"))?;
            if l.text == "}" {
                return Ok((
                    MethodDecl {
                        name,
                        class,
                        is_static,
                        params,
                        locals,
                        body,
                        decl_line: line.number,
                    },
                    i + 1,
                ));
            }
            body.push(Line {
                number: l.number,
                text: l.text,
            });
            i += 1;
        }
    }

    fn assemble_body(
        &self,
        b: &mut ProgramBuilder,
        decl: &MethodDecl<'a>,
        id: MethodId,
        all: &[MethodDecl<'a>],
        ids: &[MethodId],
    ) -> Result<(), AsmError> {
        // Resolve names against the fully-declared program first.
        let find_method = |spec: &str, line: usize| -> Result<MethodId, AsmError> {
            let (class, name) = match spec.rsplit_once('.') {
                Some((c, n)) => (Some(c.to_string()), n.to_string()),
                None => (None, spec.to_string()),
            };
            all.iter()
                .position(|m| m.class == class && m.name == name)
                .map(|i| ids[i])
                .ok_or_else(|| err(line, format!("unknown method `{spec}`")))
        };

        enum FieldRef {
            Slot(u16),
            Named(ClassId, String),
        }
        let parse_field = |b: &ProgramBuilder, spec: &str, line: usize| -> Result<FieldRef, AsmError> {
            if let Ok(n) = spec.parse::<u16>() {
                return Ok(FieldRef::Slot(n));
            }
            let (class, field) = spec
                .rsplit_once('.')
                .ok_or_else(|| err(line, format!("expected `Class.field` or slot, got `{spec}`")))?;
            let cid = b
                .program()
                .class_by_name(class)
                .ok_or_else(|| err(line, format!("unknown class `{class}`")))?;
            Ok(FieldRef::Named(cid, field.to_string()))
        };

        let mut m = b.begin_body(id);
        for line in &decl.body {
            let text = line.text;
            let n = line.number;
            if let Some(label) = text.strip_suffix(':') {
                if label.split_whitespace().count() == 1 {
                    m.label(label.trim());
                    continue;
                }
            }
            if let Some(rest) = text.strip_prefix(".site") {
                let label = rest.trim().trim_matches('"');
                m.mark(label);
                continue;
            }
            if let Some(rest) = text.strip_prefix(".handler") {
                let words: Vec<&str> = rest.split_whitespace().collect();
                let [start, end, target, class] = words.as_slice() else {
                    return Err(err(n, ".handler needs `start end target Class|*`"));
                };
                let catch = if *class == "*" {
                    None
                } else {
                    Some(
                        m.builder_program()
                            .class_by_name(class)
                            .ok_or_else(|| err(n, format!("unknown class `{class}`")))?,
                    )
                };
                m.handler(*start, *end, *target, catch);
                continue;
            }
            let mut words = text.split_whitespace();
            let op = words.next().expect("non-empty line");
            let operand = words.next();
            let extra = words.next();
            fn need<'s>(o: Option<&'s str>, op: &str, n: usize) -> Result<&'s str, AsmError> {
                o.ok_or_else(|| err(n, format!("`{op}` needs an operand")))
            }
            match op {
                "push" => {
                    let v: i64 = need(operand, op, n)?
                        .parse()
                        .map_err(|_| err(n, "bad integer"))?;
                    m.push_int(v);
                }
                "pushnull" => {
                    m.push_null();
                }
                "dup" => {
                    m.dup();
                }
                "pop" => {
                    m.pop();
                }
                "swap" => {
                    m.swap();
                }
                "load" => {
                    let v: u16 = need(operand, op, n)?.parse().map_err(|_| err(n, "bad local"))?;
                    m.load(v);
                }
                "store" => {
                    let v: u16 = need(operand, op, n)?.parse().map_err(|_| err(n, "bad local"))?;
                    m.store(v);
                }
                "add" => {
                    m.add();
                }
                "sub" => {
                    m.sub();
                }
                "mul" => {
                    m.mul();
                }
                "div" => {
                    m.div();
                }
                "rem" => {
                    m.rem();
                }
                "neg" => {
                    m.neg();
                }
                "cmpeq" => {
                    m.cmpeq();
                }
                "cmpne" => {
                    m.cmpne();
                }
                "cmplt" => {
                    m.cmplt();
                }
                "cmple" => {
                    m.cmple();
                }
                "cmpgt" => {
                    m.cmpgt();
                }
                "cmpge" => {
                    m.cmpge();
                }
                "jump" => {
                    m.jump(need(operand, op, n)?);
                }
                "branch" => {
                    m.branch(need(operand, op, n)?);
                }
                "brnull" => {
                    m.branch_if_null(need(operand, op, n)?);
                }
                "brnonnull" => {
                    m.branch_if_not_null(need(operand, op, n)?);
                }
                "new" => {
                    let class = need(operand, op, n)?;
                    let cid = m
                        .builder_program()
                        .class_by_name(class)
                        .ok_or_else(|| err(n, format!("unknown class `{class}`")))?;
                    m.new_obj(cid);
                }
                "newarray" => {
                    m.new_array();
                }
                "getfield" | "putfield" => {
                    let fref = parse_field(m.builder(), need(operand, op, n)?, n)?;
                    let slot = match fref {
                        FieldRef::Slot(s) => s,
                        FieldRef::Named(c, f) => m.builder().field_slot(c, &f),
                    };
                    if op == "getfield" {
                        m.getfield(slot);
                    } else {
                        m.putfield(slot);
                    }
                }
                "aload" => {
                    m.aload();
                }
                "astore" => {
                    m.astore();
                }
                "arraylen" => {
                    m.array_len();
                }
                "instanceof" => {
                    let class = need(operand, op, n)?;
                    let cid = m
                        .builder_program()
                        .class_by_name(class)
                        .ok_or_else(|| err(n, format!("unknown class `{class}`")))?;
                    m.instance_of(cid);
                }
                "getstatic" | "putstatic" => {
                    let name = need(operand, op, n)?;
                    let sid = m
                        .builder_program()
                        .static_by_name(name)
                        .ok_or_else(|| err(n, format!("unknown static `{name}`")))?;
                    if op == "getstatic" {
                        m.getstatic(sid);
                    } else {
                        m.putstatic(sid);
                    }
                }
                "call" => {
                    let target = find_method(need(operand, op, n)?, n)?;
                    m.call(target);
                }
                "callvirtual" => {
                    let selector = need(operand, op, n)?;
                    let argc: u8 = need(extra, op, n)?
                        .parse()
                        .map_err(|_| err(n, "bad argc"))?;
                    m.call_virtual(selector, argc);
                }
                "ret" => {
                    m.ret();
                }
                "retval" => {
                    m.ret_val();
                }
                "monitorenter" => {
                    m.monitor_enter();
                }
                "monitorexit" => {
                    m.monitor_exit();
                }
                "throw" => {
                    m.throw();
                }
                "print" => {
                    m.print();
                }
                "nop" => {
                    m.nop();
                }
                other => return Err(err(n, format!("unknown instruction `{other}`"))),
            }
        }
        m.finish();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Vm, VmConfig};

    #[test]
    fn assemble_hello_arithmetic() {
        let p = assemble(
            "method main static params=1 locals=1 {\n push 40\n push 2\n add\n print\n ret\n}\nentry main\n",
        )
        .unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![42]);
    }

    #[test]
    fn assemble_classes_fields_and_calls() {
        let src = r#"
; a small object program
class Point {
  field x private
  field y private
}
method Point.init params=3 locals=3 {
  load 0
  load 1
  putfield Point.x
  load 0
  load 2
  putfield Point.y
  ret
}
method main static params=1 locals=2 {
  new Point
  store 1
  load 1
  push 3
  push 4
  call Point.init
  load 1
  getfield Point.x
  load 1
  getfield Point.y
  add
  print
  ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![7]);
    }

    #[test]
    fn labels_and_loops() {
        let src = r#"
method main static params=1 locals=2 {
  push 0
  store 1
loop:
  load 1
  push 10
  cmpge
  branch done
  load 1
  push 1
  add
  store 1
  jump loop
done:
  load 1
  print
  ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![10]);
    }

    #[test]
    fn handler_syntax() {
        let src = r#"
method main static params=1 locals=1 {
try:
  push 1
  push 0
  div
  print
end:
  jump out
catch:
  pop
  push 99
  print
out:
  ret
  .handler try end catch ArithmeticException
}
entry main
"#;
        let p = assemble(src).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![99]);
    }

    #[test]
    fn site_directive_attaches_label() {
        let src = r#"
method main static params=1 locals=1 {
  .site "the answer"
  push 42
  print
  ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        assert_eq!(p.methods[0].site_label(0), Some("the answer"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("method main static params=1 {\n bogus\n ret\n}\nentry main\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("entry nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn statics_roundtrip() {
        let src = r#"
static G.counter public = 5
method main static params=1 locals=1 {
  getstatic G.counter
  print
  ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![5]);
    }
}

#[cfg(test)]
mod finalizer_tests {
    use super::*;
    use crate::interp::{Vm, VmConfig};

    #[test]
    fn finalizer_syntax_assembles_and_runs() {
        let src = r#"
static G.count public = 0
class Res {
  field x private
  finalizer finalize
}
method Res.finalize params=1 locals=1 {
  getstatic G.count
  push 1
  add
  putstatic G.count
  ret
}
method churn static params=0 locals=1 {
  push 0
  store 0
loop:
  load 0
  push 600
  cmpge
  branch done
  push 40
  newarray
  pop
  load 0
  push 1
  add
  store 0
  jump loop
done:
  ret
}
method main static params=1 locals=1 {
  new Res
  pop
  new Res
  pop
  call churn
  getstatic G.count
  print
  ret
}
entry main
"#;
        let p = assemble(src).unwrap();
        let out = Vm::new(&p, VmConfig::profiling()).run(&[]).unwrap();
        assert_eq!(out.output, vec![2], "both finalizers ran during deep GC");
        // Round-trips through the disassembler too.
        let p2 = assemble(&crate::disasm::disassemble(&p)).unwrap();
        let out2 = Vm::new(&p2, VmConfig::profiling()).run(&[]).unwrap();
        assert_eq!(out2.output, vec![2]);
    }

    #[test]
    fn unknown_finalizer_method_is_an_error() {
        let src = "class R {\n  finalizer nope\n}\nmethod main static params=1 locals=1 {\n  ret\n}\nentry main\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("finalizer"), "{e}");
    }
}
