//! The bytecode interpreter, GC policy, and deep-GC orchestration.

use std::collections::HashMap;

use crate::error::VmError;
use crate::gc::{collect_full, collect_full_traced, collect_minor};
use crate::heap::{Handle, Heap, HeapStats};
use crate::ids::{ChainId, ClassId, MethodId, ObjectId, SiteId};
use crate::insn::{Insn, OpcodeClass};
use crate::metrics::VmMetrics;
use crate::observer::{
    AllocEvent, FreeEvent, GcEvent, HeapObserver, NullObserver, RetainDelivery, RetainEvent,
    UseDelivery, UseEvent, UseKind,
};
use crate::predecode::{predecode, ChainIc, CtxIc, CtxTable, IcState, Op, PredecodedProgram, VtIc};
use crate::program::Program;
use crate::retain::{RetainConfig, RetainSampler, RootRef};
use crate::site::SiteTable;
use crate::value::Value;

/// Which dispatch loop executes bytecode.
///
/// Both interpreters are observably identical — same output, step counts,
/// per-class dispatch tallies, observer event streams, and errors; the
/// differential test harness pins this. The fast loop runs on a
/// pre-decoded instruction stream (see [`crate::predecode`]) with
/// superinstructions and inline caches; the reference loop executes
/// `Method.code` one [`Insn`] at a time and serves as the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpreterKind {
    /// Pre-decoded, superinstruction-fused, inline-cached dispatch (default).
    #[default]
    Fast,
    /// The original one-`Insn`-at-a-time loop.
    Reference,
}

/// Tuning knobs for a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmConfig {
    /// Trigger a *deep GC* (collect, run finalizers, collect, sample) every
    /// this many allocated bytes — the paper uses 100 KB. `None` disables
    /// periodic deep GCs (plain execution).
    pub deep_gc_interval: Option<u64>,
    /// Hard heap limit; exceeding it after a forced collection throws
    /// `OutOfMemoryError` into the program.
    pub heap_limit: Option<u64>,
    /// Run a full collection whenever live bytes exceed this soft threshold
    /// (models a fixed heap size, which determines GC frequency).
    pub gc_trigger: Option<u64>,
    /// Depth of nested allocation/use site chains (the paper's configurable
    /// "level of nesting").
    pub site_depth: usize,
    /// Enable the generational collector (nursery + tenured).
    pub generational: bool,
    /// Bytes of allocation between minor collections in generational mode.
    pub nursery_bytes: u64,
    /// Maximum interpreter call depth.
    pub max_frames: usize,
    /// Optional hard cap on executed instructions.
    pub max_steps: Option<u64>,
    /// Which dispatch loop to use (observably identical; see
    /// [`InterpreterKind`]).
    pub interpreter: InterpreterKind,
    /// Retaining-path sampling during deep-GC census marks (see
    /// [`crate::retain`]). `None` disables sampling; the observer must
    /// additionally opt in through
    /// [`HeapObserver::retain_delivery`].
    pub retain: Option<RetainConfig>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            deep_gc_interval: None,
            heap_limit: None,
            gc_trigger: None,
            site_depth: 4,
            generational: false,
            nursery_bytes: 64 * 1024,
            max_frames: 1024,
            max_steps: Some(2_000_000_000),
            interpreter: InterpreterKind::default(),
            retain: None,
        }
    }
}

impl VmConfig {
    /// The configuration the paper's tool uses: deep GC every 100 KB,
    /// nesting depth 4.
    pub fn profiling() -> Self {
        VmConfig {
            deep_gc_interval: Some(100 * 1024),
            ..Self::default()
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Values printed by the program, in order.
    pub output: Vec<i64>,
    /// Instructions executed.
    pub steps: u64,
    /// Final allocation-clock value (total bytes allocated).
    pub end_time: u64,
    /// Deep-GC cycles performed.
    pub deep_gcs: u64,
    /// Heap counters (allocations, frees, GC work).
    pub heap: HeapStats,
    /// Per-[`OpcodeClass`] dispatch tallies, in discriminant order. A fused
    /// superinstruction counts once per *original* instruction, so the
    /// tallies are interpreter-independent.
    pub dispatch: [u64; OpcodeClass::COUNT],
}

impl RunOutcome {
    /// A deterministic, platform-independent cost model for runtime
    /// comparisons: one unit per instruction, plus allocation and GC work.
    ///
    /// Allocation cost models both the allocation itself and object
    /// initialisation (the paper attributes part of its Table 4 speedups to
    /// "allocation and initialization \[being\] avoided").
    pub fn cost_units(&self) -> u64 {
        self.steps + self.heap.allocated_bytes / 8 + 4 * self.heap.traced_objects
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Normal,
    Entry,
    Finalizer,
}

#[derive(Debug)]
struct Frame {
    method: MethodId,
    pc: u32,
    locals: Vec<Value>,
    stack: Vec<Value>,
    /// Caller context: interned sites of the call chain, innermost first,
    /// already truncated to `site_depth - 1`. Reference-interpreter frames
    /// (and finalizer-lineage frames) carry it materialized; fast frames
    /// leave it empty and use `ctx` instead.
    context: Vec<SiteId>,
    /// The same caller context as an id into the VM's private
    /// [`CtxTable`]; only meaningful for frames the fast loop pushed.
    ctx: u32,
    kind: FrameKind,
}

/// One buffered use event under [`UseDelivery::Coalesced`]: the last use of
/// a live handle since the previous flush.
#[derive(Debug, Clone, Copy)]
struct PendingUse {
    /// The handle's slot index (key into `PendingUses::slots`).
    slot: u32,
    object: ObjectId,
    kind: UseKind,
    time: u64,
    site: ChainId,
}

/// Last-use-per-handle buffer for coalesced delivery. `slots[h]` holds
/// `position + 1` of the handle's entry in `entries` (0 = none). Handles
/// cannot be recycled within a window because frees happen only inside GC,
/// which flushes first.
#[derive(Debug, Default)]
struct PendingUses {
    entries: Vec<PendingUse>,
    slots: Vec<u32>,
}

impl PendingUses {
    fn note(&mut self, handle: Handle, object: ObjectId, kind: UseKind, time: u64, site: ChainId) {
        let idx = handle.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0);
        }
        let entry = PendingUse {
            slot: idx as u32,
            object,
            kind,
            time,
            site,
        };
        let pos = self.slots[idx];
        if pos == 0 {
            self.entries.push(entry);
            self.slots[idx] = self.entries.len() as u32;
        } else {
            self.entries[(pos - 1) as usize] = entry;
        }
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.slots.clear();
    }
}

struct Thrown {
    class: ClassId,
    value: Option<Handle>,
}

enum StepResult {
    Continue,
    ProgramExit,
}

/// The virtual machine: interprets a linked [`Program`] against a fresh heap.
///
/// A `Vm` can run the same program several times; the site table persists
/// across runs (so site ids are stable), while heap, statics, and output are
/// reset.
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    sites: SiteTable,
    heap: Heap,
    statics: Vec<Value>,
    frames: Vec<Frame>,
    output: Vec<i64>,
    monitors: HashMap<Handle, u32>,
    steps: u64,
    next_deep_gc: u64,
    next_minor_gc: u64,
    deep_gcs: u64,
    in_deep_gc: bool,
    /// Always-on per-class dispatch tallies (plain array increment on the
    /// hot path; flushed to registry counters at the end of a run).
    dispatch: [u64; OpcodeClass::COUNT],
    metrics: Option<VmMetrics>,
    /// Pre-decoded program for the fast loop (empty under
    /// [`InterpreterKind::Reference`]).
    pre: PredecodedProgram,
    /// Inline-cache state, persistent across runs (site ids are too).
    ics: IcState,
    /// Interned caller contexts for fast frames.
    ctxs: CtxTable,
    /// Buffered uses awaiting a coalesced flush.
    pending: PendingUses,
    /// SplitMix64 stream for retain sampling, carried across collections.
    retain_state: u64,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` with the given configuration.
    ///
    /// Under [`InterpreterKind::Fast`] this pre-decodes every method (see
    /// [`crate::predecode`]); the pre-decoded stream is a pure function of
    /// the immutably borrowed program, so code edits require a new `Vm`
    /// (the borrow checker enforces this).
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        let pre = match config.interpreter {
            InterpreterKind::Fast => predecode(program),
            InterpreterKind::Reference => PredecodedProgram::default(),
        };
        let ics = IcState::for_program(&pre);
        Vm {
            program,
            config,
            sites: SiteTable::new(),
            heap: Heap::new(),
            statics: Vec::new(),
            frames: Vec::new(),
            output: Vec::new(),
            monitors: HashMap::new(),
            steps: 0,
            next_deep_gc: u64::MAX,
            next_minor_gc: u64::MAX,
            deep_gcs: 0,
            in_deep_gc: false,
            dispatch: [0; OpcodeClass::COUNT],
            metrics: None,
            pre,
            ics,
            ctxs: CtxTable::new(),
            pending: PendingUses::default(),
            retain_state: 0,
        }
    }

    /// Attaches a metric registry: instruction dispatch per opcode class,
    /// GC pause histograms, deep-GC counts, and heap totals are published
    /// into it (see [`VmMetrics::register`] for the metric names). Dispatch
    /// tallies and heap totals land when a run finishes.
    pub fn attach_metrics(&mut self, registry: &heapdrag_obs::Registry) {
        self.metrics = Some(VmMetrics::register(registry));
    }

    /// The site table accumulated so far.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Consumes the VM, yielding the site table for off-line analysis.
    pub fn into_sites(self) -> SiteTable {
        self.sites
    }

    /// Runs the program without an observer.
    ///
    /// # Errors
    ///
    /// See [`Vm::run_observed`].
    pub fn run(&mut self, input: &[i64]) -> Result<RunOutcome, VmError> {
        let mut observer = NullObserver;
        self.run_observed(input, &mut observer)
    }

    /// Runs the program, reporting heap events to `observer`.
    ///
    /// The entry method receives the input as an int array in local 0; the
    /// array is pinned (invisible to the observer, like command-line
    /// arguments materialised by the runtime).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UncaughtException`] if an exception escapes the
    /// entry method, or another [`VmError`] for VM-level faults.
    pub fn run_observed(
        &mut self,
        input: &[i64],
        observer: &mut dyn HeapObserver,
    ) -> Result<RunOutcome, VmError> {
        self.reset();
        let input_array = self
            .heap
            .alloc(self.program.builtins.array, input.len(), true, true);
        {
            let obj = self.heap.get_mut(input_array).expect("fresh allocation");
            for (slot, v) in obj.data.iter_mut().zip(input) {
                *slot = Value::Int(*v);
            }
        }
        let entry = self.program.entry;
        let mut locals = vec![Value::Null; self.program.methods[entry.index()].num_locals as usize];
        if !locals.is_empty() {
            locals[0] = Value::Ref(input_array);
        }
        let stack = match self.config.interpreter {
            InterpreterKind::Fast => {
                Vec::with_capacity(self.pre.methods[entry.index()].stack_capacity)
            }
            InterpreterKind::Reference => Vec::new(),
        };
        self.frames.push(Frame {
            method: entry,
            pc: 0,
            locals,
            stack,
            context: Vec::new(),
            ctx: 0,
            kind: FrameKind::Entry,
        });

        match self.config.interpreter {
            InterpreterKind::Fast => self.run_fast(observer)?,
            InterpreterKind::Reference => {
                while let StepResult::Continue = self.step(observer)? {}
            }
        }
        self.flush_pending_uses(observer);

        // Final deep GC, then report survivors as-if collected at exit.
        if self.config.deep_gc_interval.is_some() {
            self.deep_gc(observer)?;
        }
        let end = self.heap.clock();
        let survivors: Vec<_> = self
            .heap
            .iter()
            .filter(|(_, o)| !o.pinned)
            .map(|(_, o)| o.id)
            .collect();
        for id in survivors {
            observer.on_free(FreeEvent {
                object: id,
                time: end,
                at_exit: true,
            });
        }
        observer.on_exit(end);

        if let Some(metrics) = &self.metrics {
            metrics.flush_dispatch(&self.dispatch);
            self.heap.stats().publish(metrics.registry());
        }

        Ok(RunOutcome {
            output: std::mem::take(&mut self.output),
            steps: self.steps,
            end_time: end,
            deep_gcs: self.deep_gcs,
            heap: self.heap.stats(),
            dispatch: self.dispatch,
        })
    }

    fn reset(&mut self) {
        self.heap = match self.config.heap_limit {
            Some(limit) => Heap::with_limit(limit),
            None => Heap::new(),
        };
        self.statics = self.program.statics.iter().map(|s| s.init).collect();
        self.frames.clear();
        self.output.clear();
        self.monitors.clear();
        self.steps = 0;
        self.deep_gcs = 0;
        self.in_deep_gc = false;
        self.dispatch = [0; OpcodeClass::COUNT];
        self.pending.reset();
        self.retain_state = self.config.retain.map_or(0, |r| r.seed);
        self.next_deep_gc = self.config.deep_gc_interval.unwrap_or(u64::MAX);
        self.next_minor_gc = if self.config.generational {
            self.config.nursery_bytes
        } else {
            u64::MAX
        };
    }

    // --- event helpers ----------------------------------------------------

    fn event_chain(&mut self, insn_pc: u32) -> crate::ids::ChainId {
        let frame = self.frames.last().expect("active frame");
        let site = self.sites.intern_site(frame.method, insn_pc);
        let mut chain = Vec::with_capacity(1 + frame.context.len());
        chain.push(site);
        chain.extend_from_slice(&frame.context);
        chain.truncate(self.config.site_depth.max(1));
        self.sites.intern_chain(&chain)
    }

    fn record_use(
        &mut self,
        observer: &mut dyn HeapObserver,
        handle: Handle,
        kind: UseKind,
        insn_pc: u32,
    ) {
        let Some(obj) = self.heap.get(handle) else {
            return;
        };
        if obj.pinned {
            return;
        }
        let object = obj.id;
        let site = self.event_chain(insn_pc);
        observer.on_use(UseEvent {
            object,
            kind,
            time: self.heap.clock(),
            site,
        });
    }

    // --- roots & collections ------------------------------------------------

    fn roots(&self) -> Vec<Handle> {
        let mut roots = Vec::new();
        for frame in &self.frames {
            for v in frame.locals.iter().chain(frame.stack.iter()) {
                if let Value::Ref(h) = v {
                    roots.push(*h);
                }
            }
        }
        for v in &self.statics {
            if let Value::Ref(h) = v {
                roots.push(*h);
            }
        }
        roots.extend(self.monitors.keys().copied());
        roots
    }

    fn full_gc(&mut self, observer: &mut dyn HeapObserver) -> crate::gc::CollectOutcome {
        self.full_gc_inner(observer, false)
    }

    /// `census` marks the collection whose reachability numbers feed the
    /// deep-GC sample; it is also the only collection that samples
    /// retaining paths (so the sampling cadence matches the profiler's
    /// census cadence and the draw sequence is deterministic).
    fn full_gc_inner(
        &mut self,
        observer: &mut dyn HeapObserver,
        census: bool,
    ) -> crate::gc::CollectOutcome {
        self.flush_pending_uses(observer);
        let roots = self.roots();
        let time = self.heap.clock();
        let sampling = census
            && observer.retain_delivery() == RetainDelivery::Sample
            && self.config.retain.is_some_and(|r| r.threshold > 0);
        let outcome = if sampling {
            let retain = self.config.retain.expect("sampling checked");
            let mut sampler = RetainSampler::new(retain, self.retain_state, self.root_refs());
            let out =
                collect_full_traced(&mut self.heap, self.program, &roots, &mut |o| {
                    observer.on_free(FreeEvent {
                        object: o.id,
                        time,
                        at_exit: false,
                    });
                }, &mut sampler);
            self.retain_state = sampler.state();
            for s in &out.retain_samples {
                observer.on_retain_sample(RetainEvent::new(
                    s.object,
                    s.size,
                    time,
                    s.path.clone(),
                ));
            }
            out
        } else {
            collect_full(&mut self.heap, self.program, &roots, &mut |o| {
                observer.on_free(FreeEvent {
                    object: o.id,
                    time,
                    at_exit: false,
                });
            })
        };
        self.monitors.retain(|h, _| self.heap.get(*h).is_some());
        if let Some(metrics) = &self.metrics {
            metrics.on_full_gc(outcome.elapsed);
        }
        outcome
    }

    /// Root descriptors for retain sampling, priority statics > locals >
    /// operand stacks > monitors (the durable holder wins when an object
    /// is multiply rooted).
    fn root_refs(&self) -> HashMap<Handle, RootRef> {
        let mut map = HashMap::new();
        for (i, v) in self.statics.iter().enumerate() {
            if let Value::Ref(h) = v {
                map.entry(*h).or_insert(RootRef::Static(i as u32));
            }
        }
        for frame in &self.frames {
            for (slot, v) in frame.locals.iter().enumerate() {
                if let Value::Ref(h) = v {
                    map.entry(*h).or_insert(RootRef::Local {
                        method: frame.method,
                        slot: slot as u32,
                    });
                }
            }
            for v in &frame.stack {
                if let Value::Ref(h) = v {
                    map.entry(*h).or_insert(RootRef::Stack {
                        method: frame.method,
                    });
                }
            }
        }
        for h in self.monitors.keys() {
            map.entry(*h).or_insert(RootRef::Monitor);
        }
        map
    }

    fn minor_gc(&mut self, observer: &mut dyn HeapObserver) {
        self.flush_pending_uses(observer);
        let roots = self.roots();
        let time = self.heap.clock();
        let outcome = collect_minor(&mut self.heap, self.program, &roots, &mut |o| {
            observer.on_free(FreeEvent {
                object: o.id,
                time,
                at_exit: false,
            });
        });
        self.monitors.retain(|h, _| self.heap.get(*h).is_some());
        if let Some(metrics) = &self.metrics {
            metrics.on_minor_gc(outcome.elapsed);
        }
    }

    /// Deep GC: collect, run pending finalizers, collect again, sample.
    fn deep_gc(&mut self, observer: &mut dyn HeapObserver) -> Result<(), VmError> {
        if self.in_deep_gc {
            return Ok(());
        }
        self.in_deep_gc = true;
        let first = self.full_gc(observer);
        for handle in first.pending_finalizers {
            let Some(obj) = self.heap.get_mut(handle) else {
                continue;
            };
            obj.finalize_pending = false;
            obj.finalized = true;
            let class = obj.class;
            if let Some(fin) = self.program.classes[class.index()].finalizer {
                self.run_nested(fin, vec![Value::Ref(handle)], observer)?;
            }
        }
        let second = self.full_gc_inner(observer, true);
        self.deep_gcs += 1;
        if let Some(metrics) = &self.metrics {
            metrics.on_deep_gc();
        }
        observer.on_deep_gc(GcEvent {
            time: self.heap.clock(),
            reachable_bytes: second.reachable_bytes,
            reachable_count: second.reachable_count,
        });
        self.in_deep_gc = false;
        Ok(())
    }

    /// GC policy checks after an allocation (the freshly allocated object is
    /// already rooted on the operand stack by then).
    fn post_alloc_gc(&mut self, observer: &mut dyn HeapObserver) -> Result<(), VmError> {
        if self.heap.clock() >= self.next_deep_gc {
            let interval = self.config.deep_gc_interval.expect("interval set");
            while self.next_deep_gc <= self.heap.clock() {
                self.next_deep_gc += interval;
            }
            self.deep_gc(observer)?;
        }
        if self.config.generational && self.heap.clock() >= self.next_minor_gc {
            while self.next_minor_gc <= self.heap.clock() {
                self.next_minor_gc += self.config.nursery_bytes;
            }
            self.minor_gc(observer);
        }
        if let Some(trigger) = self.config.gc_trigger {
            if self.heap.live_bytes() > trigger && !self.in_deep_gc {
                self.full_gc(observer);
            }
        }
        Ok(())
    }

    /// Allocates, forcing a collection (and then failing over to an
    /// `OutOfMemoryError` thrown into the program) if the limit would be
    /// exceeded.
    fn allocate(
        &mut self,
        class: ClassId,
        slots: usize,
        is_array: bool,
        insn_pc: u32,
        observer: &mut dyn HeapObserver,
    ) -> Result<Result<Handle, Thrown>, VmError> {
        if self.heap.would_exceed_limit(slots) {
            self.full_gc(observer);
            if self.heap.would_exceed_limit(slots) {
                return Ok(Err(Thrown {
                    class: self.program.builtins.out_of_memory,
                    value: None,
                }));
            }
        }
        let pinned = self.program.classes[class.index()].pinned;
        let handle = self.heap.alloc(class, slots, is_array, pinned);
        if !pinned {
            let object = self.heap.get(handle).expect("fresh allocation").id;
            let site = self.event_chain(insn_pc);
            observer.on_alloc(AllocEvent {
                object,
                class,
                size: self.heap.get(handle).expect("fresh allocation").size_bytes,
                time: self.heap.clock(),
                site,
            });
        }
        Ok(Ok(handle))
    }

    // --- frames ---------------------------------------------------------------

    fn push_frame(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        kind: FrameKind,
        caller_insn_pc: u32,
    ) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_frames {
            return Err(VmError::StackOverflow {
                limit: self.config.max_frames,
            });
        }
        let m = &self.program.methods[method.index()];
        debug_assert_eq!(args.len(), m.num_params as usize);
        let mut locals = args;
        locals.resize(m.num_locals as usize, Value::Null);
        let context = match (kind, self.frames.last()) {
            (FrameKind::Normal, Some(caller)) => {
                let site = self.sites.intern_site(caller.method, caller_insn_pc);
                let mut ctx = Vec::with_capacity(1 + caller.context.len());
                ctx.push(site);
                ctx.extend_from_slice(&caller.context);
                ctx.truncate(self.config.site_depth.saturating_sub(1));
                ctx
            }
            _ => Vec::new(),
        };
        self.frames.push(Frame {
            method,
            pc: 0,
            locals,
            stack: Vec::new(),
            context,
            ctx: 0,
            kind,
        });
        Ok(())
    }

    /// Runs `method` to completion on top of the current stack (used for
    /// finalizers). Exceptions escaping the method are swallowed, as the
    /// JVM does for finalizers.
    fn run_nested(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        observer: &mut dyn HeapObserver,
    ) -> Result<(), VmError> {
        let base = self.frames.len();
        self.push_frame(method, args, FrameKind::Finalizer, 0)?;
        while self.frames.len() > base {
            match self.step(observer)? {
                StepResult::Continue => {}
                StepResult::ProgramExit => break,
            }
        }
        Ok(())
    }

    // --- exception handling ------------------------------------------------------

    fn throw(&mut self, thrown: Thrown, insn_pc: u32) -> Result<(), VmError> {
        let mut pc = insn_pc;
        loop {
            let frame = match self.frames.last_mut() {
                Some(f) => f,
                None => {
                    return Err(VmError::UncaughtException {
                        class: thrown.class,
                        class_name: self.program.classes[thrown.class.index()].name.clone(),
                    })
                }
            };
            let method = &self.program.methods[frame.method.index()];
            let handler = method.handlers.iter().find(|h| {
                pc >= h.start_pc
                    && pc < h.end_pc
                    && h.catch
                        .is_none_or(|c| self.program.is_subclass(thrown.class, c))
            });
            if let Some(h) = handler {
                frame.stack.clear();
                frame.stack.push(match thrown.value {
                    Some(obj) => Value::Ref(obj),
                    None => Value::Null,
                });
                frame.pc = h.handler_pc;
                return Ok(());
            }
            let kind = frame.kind;
            match kind {
                FrameKind::Normal => {
                    // Continue unwinding at the caller's faulting pc.
                    self.frames.pop();
                    if let Some(caller) = self.frames.last() {
                        pc = caller.pc.saturating_sub(1);
                    }
                }
                FrameKind::Entry => {
                    self.frames.pop();
                    return Err(VmError::UncaughtException {
                        class: thrown.class,
                        class_name: self.program.classes[thrown.class.index()].name.clone(),
                    });
                }
                FrameKind::Finalizer => {
                    // The JVM ignores exceptions thrown by finalizers.
                    self.frames.pop();
                    return Ok(());
                }
            }
        }
    }

    // --- stack helpers ----------------------------------------------------------------

    fn pop(&mut self) -> Result<Value, VmError> {
        let frame = self.frames.last_mut().expect("active frame");
        frame.stack.pop().ok_or(VmError::StackUnderflow {
            method: frame.method,
            pc: frame.pc.saturating_sub(1),
        })
    }

    fn push(&mut self, v: Value) {
        self.frames.last_mut().expect("active frame").stack.push(v);
    }

    fn pop_int(&mut self) -> Result<i64, VmError> {
        self.pop()?.as_int()
    }

    // --- the interpreter proper ----------------------------------------------------------

    fn step(&mut self, observer: &mut dyn HeapObserver) -> Result<StepResult, VmError> {
        if let Some(max) = self.config.max_steps {
            if self.steps >= max {
                return Err(VmError::StepBudgetExhausted);
            }
        }
        self.steps += 1;

        let (method_id, insn_pc) = {
            let frame = self.frames.last().expect("active frame");
            (frame.method, frame.pc)
        };
        let method = &self.program.methods[method_id.index()];
        let insn = match method.code.get(insn_pc as usize) {
            Some(i) => *i,
            None => {
                return Err(VmError::InvalidBytecode {
                    method: method_id,
                    pc: insn_pc,
                    reason: "fell off the end of the method".into(),
                })
            }
        };
        self.frames.last_mut().expect("active frame").pc = insn_pc + 1;
        self.dispatch[insn.class() as usize] += 1;

        macro_rules! throw_builtin {
            ($class:expr) => {{
                let class = $class;
                self.throw(Thrown { class, value: None }, insn_pc)?;
                return Ok(StepResult::Continue);
            }};
        }

        match insn {
            Insn::PushInt(i) => self.push(Value::Int(i)),
            Insn::PushNull => self.push(Value::Null),
            Insn::Dup => {
                let v = self.pop()?;
                self.push(v);
                self.push(v);
            }
            Insn::Pop => {
                self.pop()?;
            }
            Insn::Swap => {
                let a = self.pop()?;
                let b = self.pop()?;
                self.push(a);
                self.push(b);
            }
            Insn::Load(n) => {
                let v = self.frames.last().expect("active frame").locals[n as usize];
                self.push(v);
            }
            Insn::Store(n) => {
                let v = self.pop()?;
                self.frames.last_mut().expect("active frame").locals[n as usize] = v;
            }
            Insn::Add | Insn::Sub | Insn::Mul => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                let r = match insn {
                    Insn::Add => a.wrapping_add(b),
                    Insn::Sub => a.wrapping_sub(b),
                    _ => a.wrapping_mul(b),
                };
                self.push(Value::Int(r));
            }
            Insn::Div | Insn::Rem => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                if b == 0 {
                    throw_builtin!(self.program.builtins.arithmetic);
                }
                let r = if matches!(insn, Insn::Div) {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                };
                self.push(Value::Int(r));
            }
            Insn::Neg => {
                let a = self.pop_int()?;
                self.push(Value::Int(a.wrapping_neg()));
            }
            Insn::CmpEq | Insn::CmpNe => {
                let b = self.pop()?;
                let a = self.pop()?;
                let eq = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => x == y,
                    (Value::Ref(x), Value::Ref(y)) => x == y,
                    (Value::Null, Value::Null) => true,
                    (Value::Ref(_), Value::Null) | (Value::Null, Value::Ref(_)) => false,
                    _ => {
                        return Err(VmError::TypeMismatch {
                            expected: "comparable pair",
                            found: "mixed int/reference",
                        })
                    }
                };
                let want = matches!(insn, Insn::CmpEq);
                self.push(Value::Int((eq == want) as i64));
            }
            Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                let r = match insn {
                    Insn::CmpLt => a < b,
                    Insn::CmpLe => a <= b,
                    Insn::CmpGt => a > b,
                    _ => a >= b,
                };
                self.push(Value::Int(r as i64));
            }
            Insn::Jump(t) => self.frames.last_mut().expect("active frame").pc = t,
            Insn::Branch(t) => {
                if self.pop_int()? != 0 {
                    self.frames.last_mut().expect("active frame").pc = t;
                }
            }
            Insn::BranchIfNull(t) => {
                if self.pop()?.as_ref_nullable()?.is_none() {
                    self.frames.last_mut().expect("active frame").pc = t;
                }
            }
            Insn::BranchIfNotNull(t) => {
                if self.pop()?.as_ref_nullable()?.is_some() {
                    self.frames.last_mut().expect("active frame").pc = t;
                }
            }
            Insn::New(class) => {
                let slots = self.program.classes[class.index()].num_slots() as usize;
                match self.allocate(class, slots, false, insn_pc, observer)? {
                    Ok(h) => {
                        self.push(Value::Ref(h));
                        self.post_alloc_gc(observer)?;
                    }
                    Err(t) => {
                        self.throw(t, insn_pc)?;
                    }
                }
            }
            Insn::NewArray => {
                let len = self.pop_int()?;
                if len < 0 {
                    throw_builtin!(self.program.builtins.index_oob);
                }
                match self.allocate(
                    self.program.builtins.array,
                    len as usize,
                    true,
                    insn_pc,
                    observer,
                )? {
                    Ok(h) => {
                        self.push(Value::Ref(h));
                        self.post_alloc_gc(observer)?;
                    }
                    Err(t) => {
                        self.throw(t, insn_pc)?;
                    }
                }
            }
            Insn::GetField(slot) => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::GetField, insn_pc);
                let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                let v = *obj.data.get(slot as usize).ok_or(VmError::InvalidBytecode {
                    method: method_id,
                    pc: insn_pc,
                    reason: format!("field slot {slot} out of range"),
                })?;
                self.push(v);
            }
            Insn::PutField(slot) => {
                let v = self.pop()?;
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::PutField, insn_pc);
                self.write_barrier(h, v);
                let obj = self.heap.get_mut(h).ok_or(VmError::InvalidHandle)?;
                let cell = obj.data.get_mut(slot as usize).ok_or(VmError::InvalidBytecode {
                    method: method_id,
                    pc: insn_pc,
                    reason: format!("field slot {slot} out of range"),
                })?;
                *cell = v;
            }
            Insn::ALoad => {
                let idx = self.pop_int()?;
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::HandleDeref, insn_pc);
                let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                if idx < 0 || idx as usize >= obj.data.len() {
                    throw_builtin!(self.program.builtins.index_oob);
                }
                let v = obj.data[idx as usize];
                self.push(v);
            }
            Insn::AStore => {
                let v = self.pop()?;
                let idx = self.pop_int()?;
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::HandleDeref, insn_pc);
                self.write_barrier(h, v);
                let obj = self.heap.get_mut(h).ok_or(VmError::InvalidHandle)?;
                if idx < 0 || idx as usize >= obj.data.len() {
                    throw_builtin!(self.program.builtins.index_oob);
                }
                obj.data[idx as usize] = v;
            }
            Insn::ArrayLen => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::HandleDeref, insn_pc);
                let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                self.push(Value::Int(obj.data.len() as i64));
            }
            Insn::InstanceOf(class) => {
                let v = self.pop()?;
                let r = match v.as_ref_nullable()? {
                    Some(h) => {
                        let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                        self.program.is_subclass(obj.class, class)
                    }
                    None => false,
                };
                self.push(Value::Int(r as i64));
            }
            Insn::GetStatic(s) => {
                let v = self.statics[s.index()];
                self.push(v);
            }
            Insn::PutStatic(s) => {
                let v = self.pop()?;
                self.statics[s.index()] = v;
            }
            Insn::Call(target) => {
                let callee = &self.program.methods[target.index()];
                let nparams = callee.num_params as usize;
                let is_instance = !callee.is_static;
                let frame = self.frames.last_mut().expect("active frame");
                if frame.stack.len() < nparams {
                    return Err(VmError::StackUnderflow {
                        method: method_id,
                        pc: insn_pc,
                    });
                }
                let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - nparams);
                if is_instance {
                    match args[0].as_ref_nullable()? {
                        Some(recv) => self.record_use(observer, recv, UseKind::Invoke, insn_pc),
                        None => throw_builtin!(self.program.builtins.null_pointer),
                    }
                }
                self.push_frame(target, args, FrameKind::Normal, insn_pc)?;
            }
            Insn::CallVirtual { vslot, argc } => {
                let total = argc as usize + 1;
                let frame = self.frames.last_mut().expect("active frame");
                if frame.stack.len() < total {
                    return Err(VmError::StackUnderflow {
                        method: method_id,
                        pc: insn_pc,
                    });
                }
                let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - total);
                let Some(recv) = args[0].as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, recv, UseKind::Invoke, insn_pc);
                let class = self.heap.get(recv).ok_or(VmError::InvalidHandle)?.class;
                let target = self.program.dispatch(class, vslot).ok_or_else(|| {
                    VmError::InvalidBytecode {
                        method: method_id,
                        pc: insn_pc,
                        reason: format!(
                            "class {} does not respond to `{}`",
                            self.program.classes[class.index()].name,
                            self.program.selectors[vslot.index()]
                        ),
                    }
                })?;
                let callee = &self.program.methods[target.index()];
                if callee.num_params as usize != total {
                    return Err(VmError::InvalidBytecode {
                        method: method_id,
                        pc: insn_pc,
                        reason: format!(
                            "virtual call arity mismatch: {} expects {} params, got {total}",
                            self.program.method_name(target),
                            callee.num_params
                        ),
                    });
                }
                self.push_frame(target, args, FrameKind::Normal, insn_pc)?;
            }
            Insn::Ret | Insn::RetVal => {
                let value = if matches!(insn, Insn::RetVal) {
                    Some(self.pop()?)
                } else {
                    None
                };
                let finished = self.frames.pop().expect("active frame");
                match finished.kind {
                    FrameKind::Normal => {
                        if let (Some(v), Some(caller)) = (value, self.frames.last_mut()) {
                            caller.stack.push(v);
                        }
                    }
                    FrameKind::Entry => return Ok(StepResult::ProgramExit),
                    FrameKind::Finalizer => { /* return value discarded */ }
                }
            }
            Insn::MonitorEnter => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::MonitorEnter, insn_pc);
                *self.monitors.entry(h).or_insert(0) += 1;
            }
            Insn::MonitorExit => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::MonitorExit, insn_pc);
                match self.monitors.get_mut(&h) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        if *n == 0 {
                            self.monitors.remove(&h);
                        }
                    }
                    _ => return Err(VmError::UnbalancedMonitor),
                }
            }
            Insn::Throw => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                let class = self.heap.get(h).ok_or(VmError::InvalidHandle)?.class;
                self.throw(
                    Thrown {
                        class,
                        value: Some(h),
                    },
                    insn_pc,
                )?;
            }
            Insn::Print => {
                let v = self.pop_int()?;
                self.output.push(v);
            }
            Insn::Nop => {}
        }

        if self.frames.is_empty() {
            return Ok(StepResult::ProgramExit);
        }
        Ok(StepResult::Continue)
    }

    // --- the fast interpreter ---------------------------------------------
    //
    // Observably identical to `step()` (the differential harness pins this),
    // but structured for speed: it executes the pre-decoded op stream with
    // the top frame held in an owned local, spilling it back to
    // `self.frames` only around GC, calls, and unwinding (so `roots()`
    // always sees it). Inline caches make the chain-interning and vtable
    // work a compare on the hot path; `UseDelivery` lets observers skip or
    // coalesce the per-access use traffic.

    /// Delivers buffered coalesced uses in noting order and clears the
    /// buffer. Called at every GC safepoint (before any frees) and at the
    /// end of a run (before survivor frees), so observers always see a use
    /// before the free that follows it.
    fn flush_pending_uses(&mut self, observer: &mut dyn HeapObserver) {
        if self.pending.entries.is_empty() {
            return;
        }
        let PendingUses { entries, slots } = &mut self.pending;
        for e in entries.drain(..) {
            slots[e.slot as usize] = 0;
            observer.on_use(UseEvent {
                object: e.object,
                kind: e.kind,
                time: e.time,
                site: e.site,
            });
        }
    }

    /// The event chain for an allocation or use site, via its inline cache.
    ///
    /// On a miss this interns exactly what the reference interpreter's
    /// `event_chain` would — at the same logical point in the run — so the
    /// site table's insertion order (and therefore all log output) is
    /// identical across interpreters.
    fn fast_chain(
        &mut self,
        ics: &mut IcState,
        method: MethodId,
        insn_pc: u32,
        ctx: u32,
        ic: u32,
    ) -> ChainId {
        let slot = &mut ics.chains[ic as usize];
        if slot.ctx_plus1 == ctx + 1 {
            return slot.chain;
        }
        let site = self.sites.intern_site(method, insn_pc);
        let parent = self.ctxs.get(ctx);
        let mut chain = Vec::with_capacity(1 + parent.len());
        chain.push(site);
        chain.extend_from_slice(parent);
        chain.truncate(self.config.site_depth.max(1));
        let id = self.sites.intern_chain(&chain);
        *slot = ChainIc {
            ctx_plus1: ctx + 1,
            chain: id,
        };
        id
    }

    /// The fast-path `record_use`: honors the observer's [`UseDelivery`].
    #[allow(clippy::too_many_arguments)]
    fn fast_use(
        &mut self,
        ics: &mut IcState,
        observer: &mut dyn HeapObserver,
        delivery: UseDelivery,
        handle: Handle,
        kind: UseKind,
        method: MethodId,
        insn_pc: u32,
        ctx: u32,
        ic: u32,
    ) {
        if delivery == UseDelivery::Skip {
            return;
        }
        let Some(obj) = self.heap.get(handle) else {
            return;
        };
        if obj.pinned {
            return;
        }
        let object = obj.id;
        let site = self.fast_chain(ics, method, insn_pc, ctx, ic);
        let time = self.heap.clock();
        match delivery {
            UseDelivery::PerAccess => observer.on_use(UseEvent {
                object,
                kind,
                time,
                site,
            }),
            UseDelivery::Coalesced => self.pending.note(handle, object, kind, time, site),
            UseDelivery::Skip => unreachable!("handled above"),
        }
    }

    /// The fast-path `allocate`: same GC-then-OOM policy and events as the
    /// reference, with the chain via the site's inline cache. The current
    /// frame must already be spilled (the forced collection needs roots).
    #[allow(clippy::too_many_arguments)]
    fn allocate_fast(
        &mut self,
        ics: &mut IcState,
        observer: &mut dyn HeapObserver,
        class: ClassId,
        slots: usize,
        is_array: bool,
        method: MethodId,
        insn_pc: u32,
        ctx: u32,
        ic: u32,
    ) -> Result<Handle, Thrown> {
        if self.heap.would_exceed_limit(slots) {
            self.full_gc(observer);
            if self.heap.would_exceed_limit(slots) {
                return Err(Thrown {
                    class: self.program.builtins.out_of_memory,
                    value: None,
                });
            }
        }
        let pinned = self.program.classes[class.index()].pinned;
        let handle = self.heap.alloc(class, slots, is_array, pinned);
        if !pinned {
            let obj = self.heap.get(handle).expect("fresh allocation");
            let object = obj.id;
            let size = obj.size_bytes;
            let site = self.fast_chain(ics, method, insn_pc, ctx, ic);
            observer.on_alloc(AllocEvent {
                object,
                class,
                size,
                time: self.heap.clock(),
                site,
            });
        }
        Ok(handle)
    }

    /// The fast-path `push_frame` for `FrameKind::Normal` calls: the callee
    /// context is a `u32` from the call site's context cache instead of a
    /// materialized `Vec`. A miss interns the caller site exactly as the
    /// reference `push_frame` would.
    #[allow(clippy::too_many_arguments)]
    fn push_frame_fast(
        &mut self,
        pre: &PredecodedProgram,
        ics: &mut IcState,
        method: MethodId,
        args: Vec<Value>,
        caller_method: MethodId,
        caller_insn_pc: u32,
        caller_ctx: u32,
        cic: u32,
    ) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_frames {
            return Err(VmError::StackOverflow {
                limit: self.config.max_frames,
            });
        }
        let m = &self.program.methods[method.index()];
        debug_assert_eq!(args.len(), m.num_params as usize);
        let mut locals = args;
        locals.resize(m.num_locals as usize, Value::Null);
        let slot = &mut ics.ctxs[cic as usize];
        let ctx = if slot.caller_plus1 == caller_ctx + 1 {
            slot.callee
        } else {
            let site = self.sites.intern_site(caller_method, caller_insn_pc);
            let parent = self.ctxs.get(caller_ctx);
            let mut ctx_vec = Vec::with_capacity(1 + parent.len());
            ctx_vec.push(site);
            ctx_vec.extend_from_slice(parent);
            ctx_vec.truncate(self.config.site_depth.saturating_sub(1));
            let id = self.ctxs.intern(ctx_vec);
            *slot = CtxIc {
                caller_plus1: caller_ctx + 1,
                callee: id,
            };
            id
        };
        self.frames.push(Frame {
            method,
            pc: 0,
            locals,
            stack: Vec::with_capacity(pre.methods[method.index()].stack_capacity),
            context: Vec::new(),
            ctx,
            kind: FrameKind::Normal,
        });
        Ok(())
    }

    /// Runs the fast loop, temporarily moving the pre-decoded program and
    /// inline caches out of `self` so the loop can borrow them alongside
    /// `&mut self`.
    fn run_fast(&mut self, observer: &mut dyn HeapObserver) -> Result<(), VmError> {
        let pre = std::mem::take(&mut self.pre);
        let mut ics = std::mem::take(&mut self.ics);
        let result = self.fast_loop(&pre, &mut ics, observer);
        self.pre = pre;
        self.ics = ics;
        result
    }

    /// The pre-decoded dispatch loop. Mirrors `step()` op for op — same
    /// step accounting, dispatch tallies, event points, error values, and
    /// fault-pc attribution (fused ops attribute each half to its original
    /// pc) — see the module docs of [`crate::predecode`].
    #[allow(clippy::too_many_lines)]
    fn fast_loop(
        &mut self,
        pre: &PredecodedProgram,
        ics: &mut IcState,
        observer: &mut dyn HeapObserver,
    ) -> Result<(), VmError> {
        let delivery = observer.use_delivery();
        let mut frame = match self.frames.pop() {
            Some(f) => f,
            None => return Ok(()),
        };
        let mut mid = frame.method;
        let mut ops: &[Op] = &pre.methods[mid.index()].ops;
        let mut pc = frame.pc as usize;
        let mut ctx = frame.ctx;

        /// Pops the next runnable frame into the loop's locals; program
        /// exit when none remain.
        macro_rules! reload {
            () => {{
                frame = match self.frames.pop() {
                    Some(f) => f,
                    None => return Ok(()),
                };
                mid = frame.method;
                ops = &pre.methods[mid.index()].ops;
                pc = frame.pc as usize;
                ctx = frame.ctx;
            }};
        }

        /// Pops the operand stack; `StackUnderflow` at the given fault pc
        /// (the reference's `pop()` reports `frame.pc - 1`).
        macro_rules! fpop {
            ($fault_pc:expr) => {
                match frame.stack.pop() {
                    Some(v) => v,
                    None => {
                        return Err(VmError::StackUnderflow {
                            method: mid,
                            pc: $fault_pc,
                        })
                    }
                }
            };
        }

        macro_rules! fpop_int {
            ($fault_pc:expr) => {
                fpop!($fault_pc).as_int()?
            };
        }

        /// Spills the frame (with the pc the reference would hold: one past
        /// the faulting pc) and runs the shared unwinder, then resumes.
        macro_rules! fast_throw {
            ($thrown:expr, $fault_pc:expr) => {{
                let fault_pc = $fault_pc;
                frame.pc = fault_pc + 1;
                self.frames.push(frame);
                self.throw($thrown, fault_pc)?;
                reload!();
                continue;
            }};
        }

        /// The inter-step bookkeeping for the second half of a fused pair:
        /// budget check, step count, and dispatch tally, exactly as the
        /// reference performs at the top of the second `step()`.
        macro_rules! fuse_second {
            ($class:expr) => {{
                if let Some(max) = self.config.max_steps {
                    if self.steps >= max {
                        return Err(VmError::StepBudgetExhausted);
                    }
                }
                self.steps += 1;
                self.dispatch[$class as usize] += 1;
                pc += 1;
            }};
        }

        /// A fused compare-and-branch: the comparison pops at the first pc,
        /// the (virtual) branch consumes the comparison result directly.
        macro_rules! cmp_branch {
            ($t:expr, $op:tt, $fault_pc:expr) => {{
                let b = fpop_int!($fault_pc);
                let a = fpop_int!($fault_pc);
                let cond = a $op b;
                fuse_second!(OpcodeClass::Control);
                if cond {
                    pc = $t as usize;
                }
            }};
        }

        loop {
            if let Some(max) = self.config.max_steps {
                if self.steps >= max {
                    return Err(VmError::StepBudgetExhausted);
                }
            }
            self.steps += 1;
            let op = match ops.get(pc) {
                Some(op) => *op,
                None => {
                    return Err(VmError::InvalidBytecode {
                        method: mid,
                        pc: pc as u32,
                        reason: "fell off the end of the method".into(),
                    })
                }
            };
            self.dispatch[op.class_first() as usize] += 1;
            let insn_pc = pc as u32;
            pc += 1;

            match op {
                Op::PushInt(i) => frame.stack.push(Value::Int(i)),
                Op::PushNull => frame.stack.push(Value::Null),
                Op::Dup => {
                    let v = fpop!(insn_pc);
                    frame.stack.push(v);
                    frame.stack.push(v);
                }
                Op::Pop => {
                    fpop!(insn_pc);
                }
                Op::Swap => {
                    let a = fpop!(insn_pc);
                    let b = fpop!(insn_pc);
                    frame.stack.push(a);
                    frame.stack.push(b);
                }
                Op::Load(n) => {
                    let v = frame.locals[n as usize];
                    frame.stack.push(v);
                }
                Op::Store(n) => {
                    let v = fpop!(insn_pc);
                    frame.locals[n as usize] = v;
                }
                Op::Add => {
                    let b = fpop_int!(insn_pc);
                    let a = fpop_int!(insn_pc);
                    frame.stack.push(Value::Int(a.wrapping_add(b)));
                }
                Op::Sub => {
                    let b = fpop_int!(insn_pc);
                    let a = fpop_int!(insn_pc);
                    frame.stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Op::Mul => {
                    let b = fpop_int!(insn_pc);
                    let a = fpop_int!(insn_pc);
                    frame.stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Op::Div | Op::Rem => {
                    let b = fpop_int!(insn_pc);
                    let a = fpop_int!(insn_pc);
                    if b == 0 {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.arithmetic,
                                value: None,
                            },
                            insn_pc
                        );
                    }
                    let r = if matches!(op, Op::Div) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    frame.stack.push(Value::Int(r));
                }
                Op::Neg => {
                    let a = fpop_int!(insn_pc);
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                }
                Op::CmpEq | Op::CmpNe => {
                    let b = fpop!(insn_pc);
                    let a = fpop!(insn_pc);
                    let eq = match (a, b) {
                        (Value::Int(x), Value::Int(y)) => x == y,
                        (Value::Ref(x), Value::Ref(y)) => x == y,
                        (Value::Null, Value::Null) => true,
                        (Value::Ref(_), Value::Null) | (Value::Null, Value::Ref(_)) => false,
                        _ => {
                            return Err(VmError::TypeMismatch {
                                expected: "comparable pair",
                                found: "mixed int/reference",
                            })
                        }
                    };
                    let want = matches!(op, Op::CmpEq);
                    frame.stack.push(Value::Int((eq == want) as i64));
                }
                Op::CmpLt | Op::CmpLe | Op::CmpGt | Op::CmpGe => {
                    let b = fpop_int!(insn_pc);
                    let a = fpop_int!(insn_pc);
                    let r = match op {
                        Op::CmpLt => a < b,
                        Op::CmpLe => a <= b,
                        Op::CmpGt => a > b,
                        _ => a >= b,
                    };
                    frame.stack.push(Value::Int(r as i64));
                }
                Op::Jump(t) => pc = t as usize,
                Op::Branch(t) => {
                    if fpop_int!(insn_pc) != 0 {
                        pc = t as usize;
                    }
                }
                Op::BranchIfNull(t) => {
                    if fpop!(insn_pc).as_ref_nullable()?.is_none() {
                        pc = t as usize;
                    }
                }
                Op::BranchIfNotNull(t) => {
                    if fpop!(insn_pc).as_ref_nullable()?.is_some() {
                        pc = t as usize;
                    }
                }
                Op::New { class, slots, ic } => {
                    frame.pc = pc as u32;
                    self.frames.push(frame);
                    match self.allocate_fast(
                        ics,
                        observer,
                        class,
                        slots as usize,
                        false,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    ) {
                        Ok(h) => {
                            self.frames
                                .last_mut()
                                .expect("active frame")
                                .stack
                                .push(Value::Ref(h));
                            self.post_alloc_gc(observer)?;
                        }
                        Err(t) => self.throw(t, insn_pc)?,
                    }
                    reload!();
                }
                Op::NewArray { ic } => {
                    let len = fpop_int!(insn_pc);
                    if len < 0 {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.index_oob,
                                value: None,
                            },
                            insn_pc
                        );
                    }
                    frame.pc = pc as u32;
                    self.frames.push(frame);
                    match self.allocate_fast(
                        ics,
                        observer,
                        self.program.builtins.array,
                        len as usize,
                        true,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    ) {
                        Ok(h) => {
                            self.frames
                                .last_mut()
                                .expect("active frame")
                                .stack
                                .push(Value::Ref(h));
                            self.post_alloc_gc(observer)?;
                        }
                        Err(t) => self.throw(t, insn_pc)?,
                    }
                    reload!();
                }
                Op::GetField { slot, ic } => {
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::GetField,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                    let v =
                        *obj.data
                            .get(slot as usize)
                            .ok_or_else(|| VmError::InvalidBytecode {
                                method: mid,
                                pc: insn_pc,
                                reason: format!("field slot {slot} out of range"),
                            })?;
                    frame.stack.push(v);
                }
                Op::PutField { slot, ic } => {
                    let v = fpop!(insn_pc);
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::PutField,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    self.write_barrier(h, v);
                    let obj = self.heap.get_mut(h).ok_or(VmError::InvalidHandle)?;
                    let cell =
                        obj.data
                            .get_mut(slot as usize)
                            .ok_or_else(|| VmError::InvalidBytecode {
                                method: mid,
                                pc: insn_pc,
                                reason: format!("field slot {slot} out of range"),
                            })?;
                    *cell = v;
                }
                Op::ALoad { ic } => {
                    let idx = fpop_int!(insn_pc);
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::HandleDeref,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                    let v = if idx >= 0 {
                        obj.data.get(idx as usize).copied()
                    } else {
                        None
                    };
                    match v {
                        Some(v) => frame.stack.push(v),
                        None => fast_throw!(
                            Thrown {
                                class: self.program.builtins.index_oob,
                                value: None,
                            },
                            insn_pc
                        ),
                    }
                }
                Op::AStore { ic } => {
                    let v = fpop!(insn_pc);
                    let idx = fpop_int!(insn_pc);
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::HandleDeref,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    self.write_barrier(h, v);
                    let stored = {
                        let obj = self.heap.get_mut(h).ok_or(VmError::InvalidHandle)?;
                        let cell = if idx >= 0 {
                            obj.data.get_mut(idx as usize)
                        } else {
                            None
                        };
                        match cell {
                            Some(cell) => {
                                *cell = v;
                                true
                            }
                            None => false,
                        }
                    };
                    if !stored {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.index_oob,
                                value: None,
                            },
                            insn_pc
                        );
                    }
                }
                Op::ArrayLen { ic } => {
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::HandleDeref,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                    frame.stack.push(Value::Int(obj.data.len() as i64));
                }
                Op::InstanceOf(class) => {
                    let v = fpop!(insn_pc);
                    let r = match v.as_ref_nullable()? {
                        Some(h) => {
                            let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                            self.program.is_subclass(obj.class, class)
                        }
                        None => false,
                    };
                    frame.stack.push(Value::Int(r as i64));
                }
                Op::GetStatic(s) => {
                    let v = self.statics[s.index()];
                    frame.stack.push(v);
                }
                Op::PutStatic(s) => {
                    let v = fpop!(insn_pc);
                    self.statics[s.index()] = v;
                }
                Op::Call {
                    target,
                    nparams,
                    is_instance,
                    ic,
                    cic,
                } => {
                    let nparams = nparams as usize;
                    if frame.stack.len() < nparams {
                        return Err(VmError::StackUnderflow {
                            method: mid,
                            pc: insn_pc,
                        });
                    }
                    let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - nparams);
                    if is_instance {
                        match args[0].as_ref_nullable()? {
                            Some(recv) => self.fast_use(
                                ics,
                                observer,
                                delivery,
                                recv,
                                UseKind::Invoke,
                                mid,
                                insn_pc,
                                ctx,
                                ic,
                            ),
                            None => fast_throw!(
                                Thrown {
                                    class: self.program.builtins.null_pointer,
                                    value: None,
                                },
                                insn_pc
                            ),
                        }
                    }
                    frame.pc = pc as u32;
                    let caller_ctx = ctx;
                    self.frames.push(frame);
                    self.push_frame_fast(pre, ics, target, args, mid, insn_pc, caller_ctx, cic)?;
                    reload!();
                }
                Op::CallVirtual {
                    vslot,
                    argc,
                    ic,
                    cic,
                    vic,
                } => {
                    let total = argc as usize + 1;
                    if frame.stack.len() < total {
                        return Err(VmError::StackUnderflow {
                            method: mid,
                            pc: insn_pc,
                        });
                    }
                    let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - total);
                    let Some(recv) = args[0].as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        recv,
                        UseKind::Invoke,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    let class = self.heap.get(recv).ok_or(VmError::InvalidHandle)?.class;
                    let vt = &mut ics.vtables[vic as usize];
                    let target = if vt.class_plus1 == class.index() as u32 + 1 {
                        vt.target
                    } else {
                        let target = self.program.dispatch(class, vslot).ok_or_else(|| {
                            VmError::InvalidBytecode {
                                method: mid,
                                pc: insn_pc,
                                reason: format!(
                                    "class {} does not respond to `{}`",
                                    self.program.classes[class.index()].name,
                                    self.program.selectors[vslot.index()]
                                ),
                            }
                        })?;
                        let callee = &self.program.methods[target.index()];
                        if callee.num_params as usize != total {
                            return Err(VmError::InvalidBytecode {
                                method: mid,
                                pc: insn_pc,
                                reason: format!(
                                    "virtual call arity mismatch: {} expects {} params, got {total}",
                                    self.program.method_name(target),
                                    callee.num_params
                                ),
                            });
                        }
                        *vt = VtIc {
                            class_plus1: class.index() as u32 + 1,
                            target,
                        };
                        target
                    };
                    frame.pc = pc as u32;
                    let caller_ctx = ctx;
                    self.frames.push(frame);
                    self.push_frame_fast(pre, ics, target, args, mid, insn_pc, caller_ctx, cic)?;
                    reload!();
                }
                Op::Ret | Op::RetVal => {
                    let value = if matches!(op, Op::RetVal) {
                        Some(fpop!(insn_pc))
                    } else {
                        None
                    };
                    match frame.kind {
                        FrameKind::Normal | FrameKind::Finalizer => {
                            // Finalizer frames never run on this loop
                            // (`run_nested` drives them through `step()`),
                            // but mirror the reference either way: a
                            // finalizer's return value is discarded.
                            if frame.kind == FrameKind::Normal {
                                if let (Some(v), Some(caller)) = (value, self.frames.last_mut()) {
                                    caller.stack.push(v);
                                }
                            }
                            reload!();
                        }
                        FrameKind::Entry => return Ok(()),
                    }
                }
                Op::MonitorEnter { ic } => {
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::MonitorEnter,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    *self.monitors.entry(h).or_insert(0) += 1;
                }
                Op::MonitorExit { ic } => {
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::MonitorExit,
                        mid,
                        insn_pc,
                        ctx,
                        ic,
                    );
                    match self.monitors.get_mut(&h) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            if *n == 0 {
                                self.monitors.remove(&h);
                            }
                        }
                        _ => return Err(VmError::UnbalancedMonitor),
                    }
                }
                Op::Throw => {
                    let Some(h) = fpop!(insn_pc).as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            insn_pc
                        );
                    };
                    let class = self.heap.get(h).ok_or(VmError::InvalidHandle)?.class;
                    fast_throw!(
                        Thrown {
                            class,
                            value: Some(h),
                        },
                        insn_pc
                    );
                }
                Op::Print => {
                    let v = fpop!(insn_pc).as_int()?;
                    self.output.push(v);
                }
                Op::Nop => {}

                // --- superinstructions: each half keeps its original pc ---
                Op::LoadGetField { local, slot, ic } => {
                    let recv = frame.locals[local as usize];
                    fuse_second!(OpcodeClass::Field);
                    let gf_pc = insn_pc + 1;
                    let Some(h) = recv.as_ref_nullable()? else {
                        fast_throw!(
                            Thrown {
                                class: self.program.builtins.null_pointer,
                                value: None,
                            },
                            gf_pc
                        );
                    };
                    self.fast_use(
                        ics,
                        observer,
                        delivery,
                        h,
                        UseKind::GetField,
                        mid,
                        gf_pc,
                        ctx,
                        ic,
                    );
                    let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                    let v =
                        *obj.data
                            .get(slot as usize)
                            .ok_or_else(|| VmError::InvalidBytecode {
                                method: mid,
                                pc: gf_pc,
                                reason: format!("field slot {slot} out of range"),
                            })?;
                    frame.stack.push(v);
                }
                Op::LoadLoad { a, b } => {
                    let va = frame.locals[a as usize];
                    frame.stack.push(va);
                    fuse_second!(OpcodeClass::Stack);
                    let vb = frame.locals[b as usize];
                    frame.stack.push(vb);
                }
                Op::LoadPushInt { local, value } => {
                    let v = frame.locals[local as usize];
                    frame.stack.push(v);
                    fuse_second!(OpcodeClass::Stack);
                    frame.stack.push(Value::Int(value));
                }
                Op::LoadStore { from, to } => {
                    let v = frame.locals[from as usize];
                    fuse_second!(OpcodeClass::Stack);
                    frame.locals[to as usize] = v;
                }
                Op::PushIntAdd { value } => {
                    fuse_second!(OpcodeClass::Arith);
                    let add_pc = insn_pc + 1;
                    let a = fpop!(add_pc).as_int()?;
                    frame.stack.push(Value::Int(a.wrapping_add(value)));
                }
                Op::AddStore { local } => {
                    let b = fpop_int!(insn_pc);
                    let a = fpop_int!(insn_pc);
                    let r = a.wrapping_add(b);
                    fuse_second!(OpcodeClass::Stack);
                    frame.locals[local as usize] = Value::Int(r);
                }
                Op::CmpLtBranch(t) => cmp_branch!(t, <, insn_pc),
                Op::CmpLeBranch(t) => cmp_branch!(t, <=, insn_pc),
                Op::CmpGtBranch(t) => cmp_branch!(t, >, insn_pc),
                Op::CmpGeBranch(t) => cmp_branch!(t, >=, insn_pc),
            }
        }
    }

    fn write_barrier(&mut self, target: Handle, value: Value) {
        if !self.config.generational {
            return;
        }
        if let Value::Ref(young) = value {
            let target_old = self.heap.get(target).map(|o| o.old).unwrap_or(false);
            let value_young = self.heap.get(young).map(|o| !o.old).unwrap_or(false);
            if target_old && value_young {
                self.heap.remembered.push(target);
            }
        }
    }
}

impl std::fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("steps", &self.steps)
            .field("heap", &self.heap)
            .field("frames", &self.frames.len())
            .finish()
    }
}
