//! The bytecode interpreter, GC policy, and deep-GC orchestration.

use std::collections::HashMap;

use crate::error::VmError;
use crate::gc::{collect_full, collect_minor};
use crate::heap::{Handle, Heap, HeapStats};
use crate::ids::{ClassId, MethodId, SiteId};
use crate::insn::{Insn, OpcodeClass};
use crate::metrics::VmMetrics;
use crate::observer::{
    AllocEvent, FreeEvent, GcEvent, HeapObserver, NullObserver, UseEvent, UseKind,
};
use crate::program::Program;
use crate::site::SiteTable;
use crate::value::Value;

/// Tuning knobs for a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmConfig {
    /// Trigger a *deep GC* (collect, run finalizers, collect, sample) every
    /// this many allocated bytes — the paper uses 100 KB. `None` disables
    /// periodic deep GCs (plain execution).
    pub deep_gc_interval: Option<u64>,
    /// Hard heap limit; exceeding it after a forced collection throws
    /// `OutOfMemoryError` into the program.
    pub heap_limit: Option<u64>,
    /// Run a full collection whenever live bytes exceed this soft threshold
    /// (models a fixed heap size, which determines GC frequency).
    pub gc_trigger: Option<u64>,
    /// Depth of nested allocation/use site chains (the paper's configurable
    /// "level of nesting").
    pub site_depth: usize,
    /// Enable the generational collector (nursery + tenured).
    pub generational: bool,
    /// Bytes of allocation between minor collections in generational mode.
    pub nursery_bytes: u64,
    /// Maximum interpreter call depth.
    pub max_frames: usize,
    /// Optional hard cap on executed instructions.
    pub max_steps: Option<u64>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            deep_gc_interval: None,
            heap_limit: None,
            gc_trigger: None,
            site_depth: 4,
            generational: false,
            nursery_bytes: 64 * 1024,
            max_frames: 1024,
            max_steps: Some(2_000_000_000),
        }
    }
}

impl VmConfig {
    /// The configuration the paper's tool uses: deep GC every 100 KB,
    /// nesting depth 4.
    pub fn profiling() -> Self {
        VmConfig {
            deep_gc_interval: Some(100 * 1024),
            ..Self::default()
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Values printed by the program, in order.
    pub output: Vec<i64>,
    /// Instructions executed.
    pub steps: u64,
    /// Final allocation-clock value (total bytes allocated).
    pub end_time: u64,
    /// Deep-GC cycles performed.
    pub deep_gcs: u64,
    /// Heap counters (allocations, frees, GC work).
    pub heap: HeapStats,
}

impl RunOutcome {
    /// A deterministic, platform-independent cost model for runtime
    /// comparisons: one unit per instruction, plus allocation and GC work.
    ///
    /// Allocation cost models both the allocation itself and object
    /// initialisation (the paper attributes part of its Table 4 speedups to
    /// "allocation and initialization \[being\] avoided").
    pub fn cost_units(&self) -> u64 {
        self.steps + self.heap.allocated_bytes / 8 + 4 * self.heap.traced_objects
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Normal,
    Entry,
    Finalizer,
}

#[derive(Debug)]
struct Frame {
    method: MethodId,
    pc: u32,
    locals: Vec<Value>,
    stack: Vec<Value>,
    /// Caller context: interned sites of the call chain, innermost first,
    /// already truncated to `site_depth - 1`.
    context: Vec<SiteId>,
    kind: FrameKind,
}

struct Thrown {
    class: ClassId,
    value: Option<Handle>,
}

enum StepResult {
    Continue,
    ProgramExit,
}

/// The virtual machine: interprets a linked [`Program`] against a fresh heap.
///
/// A `Vm` can run the same program several times; the site table persists
/// across runs (so site ids are stable), while heap, statics, and output are
/// reset.
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    sites: SiteTable,
    heap: Heap,
    statics: Vec<Value>,
    frames: Vec<Frame>,
    output: Vec<i64>,
    monitors: HashMap<Handle, u32>,
    steps: u64,
    next_deep_gc: u64,
    next_minor_gc: u64,
    deep_gcs: u64,
    in_deep_gc: bool,
    /// Always-on per-class dispatch tallies (plain array increment on the
    /// hot path; flushed to registry counters at the end of a run).
    dispatch: [u64; OpcodeClass::COUNT],
    metrics: Option<VmMetrics>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` with the given configuration.
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        Vm {
            program,
            config,
            sites: SiteTable::new(),
            heap: Heap::new(),
            statics: Vec::new(),
            frames: Vec::new(),
            output: Vec::new(),
            monitors: HashMap::new(),
            steps: 0,
            next_deep_gc: u64::MAX,
            next_minor_gc: u64::MAX,
            deep_gcs: 0,
            in_deep_gc: false,
            dispatch: [0; OpcodeClass::COUNT],
            metrics: None,
        }
    }

    /// Attaches a metric registry: instruction dispatch per opcode class,
    /// GC pause histograms, deep-GC counts, and heap totals are published
    /// into it (see [`VmMetrics::register`] for the metric names). Dispatch
    /// tallies and heap totals land when a run finishes.
    pub fn attach_metrics(&mut self, registry: &heapdrag_obs::Registry) {
        self.metrics = Some(VmMetrics::register(registry));
    }

    /// The site table accumulated so far.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Consumes the VM, yielding the site table for off-line analysis.
    pub fn into_sites(self) -> SiteTable {
        self.sites
    }

    /// Runs the program without an observer.
    ///
    /// # Errors
    ///
    /// See [`Vm::run_observed`].
    pub fn run(&mut self, input: &[i64]) -> Result<RunOutcome, VmError> {
        let mut observer = NullObserver;
        self.run_observed(input, &mut observer)
    }

    /// Runs the program, reporting heap events to `observer`.
    ///
    /// The entry method receives the input as an int array in local 0; the
    /// array is pinned (invisible to the observer, like command-line
    /// arguments materialised by the runtime).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UncaughtException`] if an exception escapes the
    /// entry method, or another [`VmError`] for VM-level faults.
    pub fn run_observed(
        &mut self,
        input: &[i64],
        observer: &mut dyn HeapObserver,
    ) -> Result<RunOutcome, VmError> {
        self.reset();
        let input_array = self
            .heap
            .alloc(self.program.builtins.array, input.len(), true, true);
        {
            let obj = self.heap.get_mut(input_array).expect("fresh allocation");
            for (slot, v) in obj.data.iter_mut().zip(input) {
                *slot = Value::Int(*v);
            }
        }
        let entry = self.program.entry;
        let mut locals = vec![Value::Null; self.program.methods[entry.index()].num_locals as usize];
        if !locals.is_empty() {
            locals[0] = Value::Ref(input_array);
        }
        self.frames.push(Frame {
            method: entry,
            pc: 0,
            locals,
            stack: Vec::new(),
            context: Vec::new(),
            kind: FrameKind::Entry,
        });

        while let StepResult::Continue = self.step(observer)? {}

        // Final deep GC, then report survivors as-if collected at exit.
        if self.config.deep_gc_interval.is_some() {
            self.deep_gc(observer)?;
        }
        let end = self.heap.clock();
        let survivors: Vec<_> = self
            .heap
            .iter()
            .filter(|(_, o)| !o.pinned)
            .map(|(_, o)| o.id)
            .collect();
        for id in survivors {
            observer.on_free(FreeEvent {
                object: id,
                time: end,
                at_exit: true,
            });
        }
        observer.on_exit(end);

        if let Some(metrics) = &self.metrics {
            metrics.flush_dispatch(&self.dispatch);
            self.heap.stats().publish(metrics.registry());
        }

        Ok(RunOutcome {
            output: std::mem::take(&mut self.output),
            steps: self.steps,
            end_time: end,
            deep_gcs: self.deep_gcs,
            heap: self.heap.stats(),
        })
    }

    fn reset(&mut self) {
        self.heap = match self.config.heap_limit {
            Some(limit) => Heap::with_limit(limit),
            None => Heap::new(),
        };
        self.statics = self.program.statics.iter().map(|s| s.init).collect();
        self.frames.clear();
        self.output.clear();
        self.monitors.clear();
        self.steps = 0;
        self.deep_gcs = 0;
        self.in_deep_gc = false;
        self.dispatch = [0; OpcodeClass::COUNT];
        self.next_deep_gc = self.config.deep_gc_interval.unwrap_or(u64::MAX);
        self.next_minor_gc = if self.config.generational {
            self.config.nursery_bytes
        } else {
            u64::MAX
        };
    }

    // --- event helpers ----------------------------------------------------

    fn event_chain(&mut self, insn_pc: u32) -> crate::ids::ChainId {
        let frame = self.frames.last().expect("active frame");
        let site = self.sites.intern_site(frame.method, insn_pc);
        let mut chain = Vec::with_capacity(1 + frame.context.len());
        chain.push(site);
        chain.extend_from_slice(&frame.context);
        chain.truncate(self.config.site_depth.max(1));
        self.sites.intern_chain(&chain)
    }

    fn record_use(
        &mut self,
        observer: &mut dyn HeapObserver,
        handle: Handle,
        kind: UseKind,
        insn_pc: u32,
    ) {
        let Some(obj) = self.heap.get(handle) else {
            return;
        };
        if obj.pinned {
            return;
        }
        let object = obj.id;
        let site = self.event_chain(insn_pc);
        observer.on_use(UseEvent {
            object,
            kind,
            time: self.heap.clock(),
            site,
        });
    }

    // --- roots & collections ------------------------------------------------

    fn roots(&self) -> Vec<Handle> {
        let mut roots = Vec::new();
        for frame in &self.frames {
            for v in frame.locals.iter().chain(frame.stack.iter()) {
                if let Value::Ref(h) = v {
                    roots.push(*h);
                }
            }
        }
        for v in &self.statics {
            if let Value::Ref(h) = v {
                roots.push(*h);
            }
        }
        roots.extend(self.monitors.keys().copied());
        roots
    }

    fn full_gc(&mut self, observer: &mut dyn HeapObserver) -> crate::gc::CollectOutcome {
        let roots = self.roots();
        let time = self.heap.clock();
        let outcome = collect_full(&mut self.heap, self.program, &roots, &mut |o| {
            observer.on_free(FreeEvent {
                object: o.id,
                time,
                at_exit: false,
            });
        });
        self.monitors.retain(|h, _| self.heap.get(*h).is_some());
        if let Some(metrics) = &self.metrics {
            metrics.on_full_gc(outcome.elapsed);
        }
        outcome
    }

    fn minor_gc(&mut self, observer: &mut dyn HeapObserver) {
        let roots = self.roots();
        let time = self.heap.clock();
        let outcome = collect_minor(&mut self.heap, self.program, &roots, &mut |o| {
            observer.on_free(FreeEvent {
                object: o.id,
                time,
                at_exit: false,
            });
        });
        self.monitors.retain(|h, _| self.heap.get(*h).is_some());
        if let Some(metrics) = &self.metrics {
            metrics.on_minor_gc(outcome.elapsed);
        }
    }

    /// Deep GC: collect, run pending finalizers, collect again, sample.
    fn deep_gc(&mut self, observer: &mut dyn HeapObserver) -> Result<(), VmError> {
        if self.in_deep_gc {
            return Ok(());
        }
        self.in_deep_gc = true;
        let first = self.full_gc(observer);
        for handle in first.pending_finalizers {
            let Some(obj) = self.heap.get_mut(handle) else {
                continue;
            };
            obj.finalize_pending = false;
            obj.finalized = true;
            let class = obj.class;
            if let Some(fin) = self.program.classes[class.index()].finalizer {
                self.run_nested(fin, vec![Value::Ref(handle)], observer)?;
            }
        }
        let second = self.full_gc(observer);
        self.deep_gcs += 1;
        if let Some(metrics) = &self.metrics {
            metrics.on_deep_gc();
        }
        observer.on_deep_gc(GcEvent {
            time: self.heap.clock(),
            reachable_bytes: second.reachable_bytes,
            reachable_count: second.reachable_count,
        });
        self.in_deep_gc = false;
        Ok(())
    }

    /// GC policy checks after an allocation (the freshly allocated object is
    /// already rooted on the operand stack by then).
    fn post_alloc_gc(&mut self, observer: &mut dyn HeapObserver) -> Result<(), VmError> {
        if self.heap.clock() >= self.next_deep_gc {
            let interval = self.config.deep_gc_interval.expect("interval set");
            while self.next_deep_gc <= self.heap.clock() {
                self.next_deep_gc += interval;
            }
            self.deep_gc(observer)?;
        }
        if self.config.generational && self.heap.clock() >= self.next_minor_gc {
            while self.next_minor_gc <= self.heap.clock() {
                self.next_minor_gc += self.config.nursery_bytes;
            }
            self.minor_gc(observer);
        }
        if let Some(trigger) = self.config.gc_trigger {
            if self.heap.live_bytes() > trigger && !self.in_deep_gc {
                self.full_gc(observer);
            }
        }
        Ok(())
    }

    /// Allocates, forcing a collection (and then failing over to an
    /// `OutOfMemoryError` thrown into the program) if the limit would be
    /// exceeded.
    fn allocate(
        &mut self,
        class: ClassId,
        slots: usize,
        is_array: bool,
        insn_pc: u32,
        observer: &mut dyn HeapObserver,
    ) -> Result<Result<Handle, Thrown>, VmError> {
        if self.heap.would_exceed_limit(slots) {
            self.full_gc(observer);
            if self.heap.would_exceed_limit(slots) {
                return Ok(Err(Thrown {
                    class: self.program.builtins.out_of_memory,
                    value: None,
                }));
            }
        }
        let pinned = self.program.classes[class.index()].pinned;
        let handle = self.heap.alloc(class, slots, is_array, pinned);
        if !pinned {
            let object = self.heap.get(handle).expect("fresh allocation").id;
            let site = self.event_chain(insn_pc);
            observer.on_alloc(AllocEvent {
                object,
                class,
                size: self.heap.get(handle).expect("fresh allocation").size_bytes,
                time: self.heap.clock(),
                site,
            });
        }
        Ok(Ok(handle))
    }

    // --- frames ---------------------------------------------------------------

    fn push_frame(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        kind: FrameKind,
        caller_insn_pc: u32,
    ) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_frames {
            return Err(VmError::StackOverflow {
                limit: self.config.max_frames,
            });
        }
        let m = &self.program.methods[method.index()];
        debug_assert_eq!(args.len(), m.num_params as usize);
        let mut locals = args;
        locals.resize(m.num_locals as usize, Value::Null);
        let context = match (kind, self.frames.last()) {
            (FrameKind::Normal, Some(caller)) => {
                let site = self.sites.intern_site(caller.method, caller_insn_pc);
                let mut ctx = Vec::with_capacity(1 + caller.context.len());
                ctx.push(site);
                ctx.extend_from_slice(&caller.context);
                ctx.truncate(self.config.site_depth.saturating_sub(1));
                ctx
            }
            _ => Vec::new(),
        };
        self.frames.push(Frame {
            method,
            pc: 0,
            locals,
            stack: Vec::new(),
            context,
            kind,
        });
        Ok(())
    }

    /// Runs `method` to completion on top of the current stack (used for
    /// finalizers). Exceptions escaping the method are swallowed, as the
    /// JVM does for finalizers.
    fn run_nested(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        observer: &mut dyn HeapObserver,
    ) -> Result<(), VmError> {
        let base = self.frames.len();
        self.push_frame(method, args, FrameKind::Finalizer, 0)?;
        while self.frames.len() > base {
            match self.step(observer)? {
                StepResult::Continue => {}
                StepResult::ProgramExit => break,
            }
        }
        Ok(())
    }

    // --- exception handling ------------------------------------------------------

    fn throw(&mut self, thrown: Thrown, insn_pc: u32) -> Result<(), VmError> {
        let mut pc = insn_pc;
        loop {
            let frame = match self.frames.last_mut() {
                Some(f) => f,
                None => {
                    return Err(VmError::UncaughtException {
                        class: thrown.class,
                        class_name: self.program.classes[thrown.class.index()].name.clone(),
                    })
                }
            };
            let method = &self.program.methods[frame.method.index()];
            let handler = method.handlers.iter().find(|h| {
                pc >= h.start_pc
                    && pc < h.end_pc
                    && h.catch
                        .is_none_or(|c| self.program.is_subclass(thrown.class, c))
            });
            if let Some(h) = handler {
                frame.stack.clear();
                frame.stack.push(match thrown.value {
                    Some(obj) => Value::Ref(obj),
                    None => Value::Null,
                });
                frame.pc = h.handler_pc;
                return Ok(());
            }
            let kind = frame.kind;
            match kind {
                FrameKind::Normal => {
                    // Continue unwinding at the caller's faulting pc.
                    self.frames.pop();
                    if let Some(caller) = self.frames.last() {
                        pc = caller.pc.saturating_sub(1);
                    }
                }
                FrameKind::Entry => {
                    self.frames.pop();
                    return Err(VmError::UncaughtException {
                        class: thrown.class,
                        class_name: self.program.classes[thrown.class.index()].name.clone(),
                    });
                }
                FrameKind::Finalizer => {
                    // The JVM ignores exceptions thrown by finalizers.
                    self.frames.pop();
                    return Ok(());
                }
            }
        }
    }

    // --- stack helpers ----------------------------------------------------------------

    fn pop(&mut self) -> Result<Value, VmError> {
        let frame = self.frames.last_mut().expect("active frame");
        frame.stack.pop().ok_or(VmError::StackUnderflow {
            method: frame.method,
            pc: frame.pc.saturating_sub(1),
        })
    }

    fn push(&mut self, v: Value) {
        self.frames.last_mut().expect("active frame").stack.push(v);
    }

    fn pop_int(&mut self) -> Result<i64, VmError> {
        self.pop()?.as_int()
    }

    // --- the interpreter proper ----------------------------------------------------------

    fn step(&mut self, observer: &mut dyn HeapObserver) -> Result<StepResult, VmError> {
        if let Some(max) = self.config.max_steps {
            if self.steps >= max {
                return Err(VmError::StepBudgetExhausted);
            }
        }
        self.steps += 1;

        let (method_id, insn_pc) = {
            let frame = self.frames.last().expect("active frame");
            (frame.method, frame.pc)
        };
        let method = &self.program.methods[method_id.index()];
        let insn = match method.code.get(insn_pc as usize) {
            Some(i) => *i,
            None => {
                return Err(VmError::InvalidBytecode {
                    method: method_id,
                    pc: insn_pc,
                    reason: "fell off the end of the method".into(),
                })
            }
        };
        self.frames.last_mut().expect("active frame").pc = insn_pc + 1;
        self.dispatch[insn.class() as usize] += 1;

        macro_rules! throw_builtin {
            ($class:expr) => {{
                let class = $class;
                self.throw(Thrown { class, value: None }, insn_pc)?;
                return Ok(StepResult::Continue);
            }};
        }

        match insn {
            Insn::PushInt(i) => self.push(Value::Int(i)),
            Insn::PushNull => self.push(Value::Null),
            Insn::Dup => {
                let v = self.pop()?;
                self.push(v);
                self.push(v);
            }
            Insn::Pop => {
                self.pop()?;
            }
            Insn::Swap => {
                let a = self.pop()?;
                let b = self.pop()?;
                self.push(a);
                self.push(b);
            }
            Insn::Load(n) => {
                let v = self.frames.last().expect("active frame").locals[n as usize];
                self.push(v);
            }
            Insn::Store(n) => {
                let v = self.pop()?;
                self.frames.last_mut().expect("active frame").locals[n as usize] = v;
            }
            Insn::Add | Insn::Sub | Insn::Mul => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                let r = match insn {
                    Insn::Add => a.wrapping_add(b),
                    Insn::Sub => a.wrapping_sub(b),
                    _ => a.wrapping_mul(b),
                };
                self.push(Value::Int(r));
            }
            Insn::Div | Insn::Rem => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                if b == 0 {
                    throw_builtin!(self.program.builtins.arithmetic);
                }
                let r = if matches!(insn, Insn::Div) {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                };
                self.push(Value::Int(r));
            }
            Insn::Neg => {
                let a = self.pop_int()?;
                self.push(Value::Int(a.wrapping_neg()));
            }
            Insn::CmpEq | Insn::CmpNe => {
                let b = self.pop()?;
                let a = self.pop()?;
                let eq = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => x == y,
                    (Value::Ref(x), Value::Ref(y)) => x == y,
                    (Value::Null, Value::Null) => true,
                    (Value::Ref(_), Value::Null) | (Value::Null, Value::Ref(_)) => false,
                    _ => {
                        return Err(VmError::TypeMismatch {
                            expected: "comparable pair",
                            found: "mixed int/reference",
                        })
                    }
                };
                let want = matches!(insn, Insn::CmpEq);
                self.push(Value::Int((eq == want) as i64));
            }
            Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                let r = match insn {
                    Insn::CmpLt => a < b,
                    Insn::CmpLe => a <= b,
                    Insn::CmpGt => a > b,
                    _ => a >= b,
                };
                self.push(Value::Int(r as i64));
            }
            Insn::Jump(t) => self.frames.last_mut().expect("active frame").pc = t,
            Insn::Branch(t) => {
                if self.pop_int()? != 0 {
                    self.frames.last_mut().expect("active frame").pc = t;
                }
            }
            Insn::BranchIfNull(t) => {
                if self.pop()?.as_ref_nullable()?.is_none() {
                    self.frames.last_mut().expect("active frame").pc = t;
                }
            }
            Insn::BranchIfNotNull(t) => {
                if self.pop()?.as_ref_nullable()?.is_some() {
                    self.frames.last_mut().expect("active frame").pc = t;
                }
            }
            Insn::New(class) => {
                let slots = self.program.classes[class.index()].num_slots() as usize;
                match self.allocate(class, slots, false, insn_pc, observer)? {
                    Ok(h) => {
                        self.push(Value::Ref(h));
                        self.post_alloc_gc(observer)?;
                    }
                    Err(t) => {
                        self.throw(t, insn_pc)?;
                    }
                }
            }
            Insn::NewArray => {
                let len = self.pop_int()?;
                if len < 0 {
                    throw_builtin!(self.program.builtins.index_oob);
                }
                match self.allocate(
                    self.program.builtins.array,
                    len as usize,
                    true,
                    insn_pc,
                    observer,
                )? {
                    Ok(h) => {
                        self.push(Value::Ref(h));
                        self.post_alloc_gc(observer)?;
                    }
                    Err(t) => {
                        self.throw(t, insn_pc)?;
                    }
                }
            }
            Insn::GetField(slot) => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::GetField, insn_pc);
                let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                let v = *obj.data.get(slot as usize).ok_or(VmError::InvalidBytecode {
                    method: method_id,
                    pc: insn_pc,
                    reason: format!("field slot {slot} out of range"),
                })?;
                self.push(v);
            }
            Insn::PutField(slot) => {
                let v = self.pop()?;
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::PutField, insn_pc);
                self.write_barrier(h, v);
                let obj = self.heap.get_mut(h).ok_or(VmError::InvalidHandle)?;
                let cell = obj.data.get_mut(slot as usize).ok_or(VmError::InvalidBytecode {
                    method: method_id,
                    pc: insn_pc,
                    reason: format!("field slot {slot} out of range"),
                })?;
                *cell = v;
            }
            Insn::ALoad => {
                let idx = self.pop_int()?;
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::HandleDeref, insn_pc);
                let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                if idx < 0 || idx as usize >= obj.data.len() {
                    throw_builtin!(self.program.builtins.index_oob);
                }
                let v = obj.data[idx as usize];
                self.push(v);
            }
            Insn::AStore => {
                let v = self.pop()?;
                let idx = self.pop_int()?;
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::HandleDeref, insn_pc);
                self.write_barrier(h, v);
                let obj = self.heap.get_mut(h).ok_or(VmError::InvalidHandle)?;
                if idx < 0 || idx as usize >= obj.data.len() {
                    throw_builtin!(self.program.builtins.index_oob);
                }
                obj.data[idx as usize] = v;
            }
            Insn::ArrayLen => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::HandleDeref, insn_pc);
                let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                self.push(Value::Int(obj.data.len() as i64));
            }
            Insn::InstanceOf(class) => {
                let v = self.pop()?;
                let r = match v.as_ref_nullable()? {
                    Some(h) => {
                        let obj = self.heap.get(h).ok_or(VmError::InvalidHandle)?;
                        self.program.is_subclass(obj.class, class)
                    }
                    None => false,
                };
                self.push(Value::Int(r as i64));
            }
            Insn::GetStatic(s) => {
                let v = self.statics[s.index()];
                self.push(v);
            }
            Insn::PutStatic(s) => {
                let v = self.pop()?;
                self.statics[s.index()] = v;
            }
            Insn::Call(target) => {
                let callee = &self.program.methods[target.index()];
                let nparams = callee.num_params as usize;
                let is_instance = !callee.is_static;
                let frame = self.frames.last_mut().expect("active frame");
                if frame.stack.len() < nparams {
                    return Err(VmError::StackUnderflow {
                        method: method_id,
                        pc: insn_pc,
                    });
                }
                let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - nparams);
                if is_instance {
                    match args[0].as_ref_nullable()? {
                        Some(recv) => self.record_use(observer, recv, UseKind::Invoke, insn_pc),
                        None => throw_builtin!(self.program.builtins.null_pointer),
                    }
                }
                self.push_frame(target, args, FrameKind::Normal, insn_pc)?;
            }
            Insn::CallVirtual { vslot, argc } => {
                let total = argc as usize + 1;
                let frame = self.frames.last_mut().expect("active frame");
                if frame.stack.len() < total {
                    return Err(VmError::StackUnderflow {
                        method: method_id,
                        pc: insn_pc,
                    });
                }
                let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - total);
                let Some(recv) = args[0].as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, recv, UseKind::Invoke, insn_pc);
                let class = self.heap.get(recv).ok_or(VmError::InvalidHandle)?.class;
                let target = self.program.dispatch(class, vslot).ok_or_else(|| {
                    VmError::InvalidBytecode {
                        method: method_id,
                        pc: insn_pc,
                        reason: format!(
                            "class {} does not respond to `{}`",
                            self.program.classes[class.index()].name,
                            self.program.selectors[vslot.index()]
                        ),
                    }
                })?;
                let callee = &self.program.methods[target.index()];
                if callee.num_params as usize != total {
                    return Err(VmError::InvalidBytecode {
                        method: method_id,
                        pc: insn_pc,
                        reason: format!(
                            "virtual call arity mismatch: {} expects {} params, got {total}",
                            self.program.method_name(target),
                            callee.num_params
                        ),
                    });
                }
                self.push_frame(target, args, FrameKind::Normal, insn_pc)?;
            }
            Insn::Ret | Insn::RetVal => {
                let value = if matches!(insn, Insn::RetVal) {
                    Some(self.pop()?)
                } else {
                    None
                };
                let finished = self.frames.pop().expect("active frame");
                match finished.kind {
                    FrameKind::Normal => {
                        if let (Some(v), Some(caller)) = (value, self.frames.last_mut()) {
                            caller.stack.push(v);
                        }
                    }
                    FrameKind::Entry => return Ok(StepResult::ProgramExit),
                    FrameKind::Finalizer => { /* return value discarded */ }
                }
            }
            Insn::MonitorEnter => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::MonitorEnter, insn_pc);
                *self.monitors.entry(h).or_insert(0) += 1;
            }
            Insn::MonitorExit => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                self.record_use(observer, h, UseKind::MonitorExit, insn_pc);
                match self.monitors.get_mut(&h) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        if *n == 0 {
                            self.monitors.remove(&h);
                        }
                    }
                    _ => return Err(VmError::UnbalancedMonitor),
                }
            }
            Insn::Throw => {
                let Some(h) = self.pop()?.as_ref_nullable()? else {
                    throw_builtin!(self.program.builtins.null_pointer);
                };
                let class = self.heap.get(h).ok_or(VmError::InvalidHandle)?.class;
                self.throw(
                    Thrown {
                        class,
                        value: Some(h),
                    },
                    insn_pc,
                )?;
            }
            Insn::Print => {
                let v = self.pop_int()?;
                self.output.push(v);
            }
            Insn::Nop => {}
        }

        if self.frames.is_empty() {
            return Ok(StepResult::ProgramExit);
        }
        Ok(StepResult::Continue)
    }

    fn write_barrier(&mut self, target: Handle, value: Value) {
        if !self.config.generational {
            return;
        }
        if let Value::Ref(young) = value {
            let target_old = self.heap.get(target).map(|o| o.old).unwrap_or(false);
            let value_young = self.heap.get(young).map(|o| !o.old).unwrap_or(false);
            if target_old && value_young {
                self.heap.remembered.push(target);
            }
        }
    }
}

impl std::fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("steps", &self.steps)
            .field("heap", &self.heap)
            .field("frames", &self.frames.len())
            .finish()
    }
}
