//! Error types for program construction and execution.

use std::error::Error;
use std::fmt;

use crate::ids::{ClassId, MethodId};

/// An error raised while linking a program or executing bytecode.
///
/// Runtime exceptions that a program *catches* never surface as a `VmError`;
/// only uncaught exceptions and genuine VM-level faults (malformed bytecode,
/// resource exhaustion) do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// An exception propagated out of the entry method.
    UncaughtException {
        /// Class of the thrown exception.
        class: ClassId,
        /// Human-readable class name, resolved at throw time.
        class_name: String,
    },
    /// A value of the wrong kind was found on the stack or in a local.
    TypeMismatch {
        /// What the instruction required.
        expected: &'static str,
        /// What was actually found.
        found: &'static str,
    },
    /// The operand stack was empty when an instruction needed a value.
    StackUnderflow {
        /// Method in which the underflow occurred.
        method: MethodId,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// A stale or never-valid handle was dereferenced.
    ///
    /// This indicates a VM bug (the GC freed a reachable object) and is
    /// checked aggressively in tests.
    InvalidHandle,
    /// Call depth exceeded the configured frame limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// The instruction budget configured in [`VmConfig`](crate::interp::VmConfig)
    /// was exhausted.
    StepBudgetExhausted,
    /// Malformed bytecode: bad jump target, bad local index, and so on.
    InvalidBytecode {
        /// Method containing the fault.
        method: MethodId,
        /// Program counter of the fault.
        pc: u32,
        /// Description of what was wrong.
        reason: String,
    },
    /// A `monitorexit` without a matching `monitorenter`.
    UnbalancedMonitor,
    /// Program-level linking failed (duplicate names, unresolved references).
    LinkError(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UncaughtException { class_name, .. } => {
                write!(f, "uncaught exception: {class_name}")
            }
            VmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            VmError::StackUnderflow { method, pc } => {
                write!(f, "operand stack underflow in {method} at pc {pc}")
            }
            VmError::InvalidHandle => write!(f, "dangling object handle dereferenced"),
            VmError::StackOverflow { limit } => {
                write!(f, "call stack exceeded {limit} frames")
            }
            VmError::StepBudgetExhausted => write!(f, "instruction budget exhausted"),
            VmError::InvalidBytecode { method, pc, reason } => {
                write!(f, "invalid bytecode in {method} at pc {pc}: {reason}")
            }
            VmError::UnbalancedMonitor => write!(f, "monitorexit without matching monitorenter"),
            VmError::LinkError(msg) => write!(f, "link error: {msg}"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VmError::TypeMismatch {
            expected: "int",
            found: "null",
        };
        assert_eq!(e.to_string(), "type mismatch: expected int, found null");
        let e = VmError::LinkError("duplicate class Foo".into());
        assert!(e.to_string().contains("duplicate class Foo"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VmError>();
    }
}
