//! Static stack-discipline verification — a lightweight bytecode verifier
//! run over assembled programs before execution, catching underflows and
//! inconsistent stack depths at join points without executing anything.
//!
//! This checks *depths* only (the heapdrag-analysis crate performs full
//! type inference); it is deliberately dependency-free so the assembler
//! and the CLI can use it.

use crate::class::Method;
use crate::error::VmError;
use crate::ids::MethodId;
use crate::insn::Insn;
use crate::program::Program;

/// Net stack effect and minimum required depth of one instruction.
///
/// Returns `(pops, pushes)`. `Call`/`CallVirtual` effects depend on the
/// callee and are resolved against `program`.
fn effect(program: &Program, insn: &Insn) -> Result<(usize, usize), String> {
    use Insn::*;
    Ok(match insn {
        PushInt(_) | PushNull => (0, 1),
        Dup => (1, 2),
        Pop => (1, 0),
        Swap => (2, 2),
        Load(_) => (0, 1),
        Store(_) => (1, 0),
        Add | Sub | Mul | Div | Rem => (2, 1),
        Neg => (1, 1),
        CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe => (2, 1),
        Jump(_) => (0, 0),
        Branch(_) | BranchIfNull(_) | BranchIfNotNull(_) => (1, 0),
        New(_) => (0, 1),
        NewArray => (1, 1),
        GetField(_) => (1, 1),
        PutField(_) => (2, 0),
        ALoad => (2, 1),
        AStore => (3, 0),
        ArrayLen => (1, 1),
        InstanceOf(_) => (1, 1),
        GetStatic(_) => (0, 1),
        PutStatic(_) => (1, 0),
        Call(target) => {
            let callee = &program.methods[target.index()];
            let pushes = usize::from(returns_value(callee)?);
            (callee.num_params as usize, pushes)
        }
        CallVirtual { vslot, argc } => {
            let pushes = usize::from(selector_returns(program, vslot.index())?);
            (*argc as usize + 1, pushes)
        }
        Ret => (0, 0),
        RetVal => (1, 0),
        MonitorEnter | MonitorExit => (1, 0),
        Throw => (1, 0),
        Print => (1, 0),
        Nop => (0, 0),
    })
}

fn returns_value(method: &Method) -> Result<bool, String> {
    let has_ret = method.code.iter().any(|i| matches!(i, Insn::Ret));
    let has_retval = method.code.iter().any(|i| matches!(i, Insn::RetVal));
    match (has_ret, has_retval) {
        (true, true) => Err(format!("method `{}` mixes ret and retval", method.name)),
        (_, rv) => Ok(rv),
    }
}

fn selector_returns(program: &Program, vslot: usize) -> Result<bool, String> {
    let mut found = None;
    for class in &program.classes {
        if let Some(Some(mid)) = class.vtable.get(vslot).copied() {
            let rv = returns_value(&program.methods[mid.index()])?;
            match found {
                None => found = Some(rv),
                Some(prev) if prev != rv => {
                    return Err(format!(
                        "targets of selector `{}` disagree on returning a value",
                        program.selectors[vslot]
                    ))
                }
                _ => {}
            }
        }
    }
    Ok(found.unwrap_or(false))
}

/// Verifies stack discipline for one method: no underflow, consistent
/// depths at every join, depth ≥ 1 entering exception handlers.
///
/// # Errors
///
/// Returns [`VmError::InvalidBytecode`] naming the first offending pc.
pub fn verify_method(program: &Program, method_id: MethodId) -> Result<(), VmError> {
    let method = &program.methods[method_id.index()];
    let n = method.code.len();
    let mut depth_at: Vec<Option<usize>> = vec![None; n];
    if n == 0 {
        return Ok(());
    }
    let bad = |pc: u32, reason: String| VmError::InvalidBytecode {
        method: method_id,
        pc,
        reason,
    };
    depth_at[0] = Some(0);
    let mut work = vec![0u32];
    while let Some(pc) = work.pop() {
        let depth = depth_at[pc as usize].expect("queued pcs have depths");
        let insn = &method.code[pc as usize];
        let (pops, pushes) = effect(program, insn).map_err(|m| bad(pc, m))?;
        if depth < pops {
            return Err(bad(
                pc,
                format!("stack underflow: depth {depth}, `{insn}` pops {pops}"),
            ));
        }
        let out = depth - pops + pushes;

        let mut propagate = |target: u32, d: usize, work: &mut Vec<u32>| -> Result<(), VmError> {
            match depth_at[target as usize] {
                None => {
                    depth_at[target as usize] = Some(d);
                    work.push(target);
                    Ok(())
                }
                Some(existing) if existing == d => Ok(()),
                Some(existing) => Err(bad(
                    target,
                    format!("inconsistent stack depth at join: {existing} vs {d}"),
                )),
            }
        };

        match insn {
            Insn::Jump(t) => propagate(*t, out, &mut work)?,
            Insn::Branch(t) | Insn::BranchIfNull(t) | Insn::BranchIfNotNull(t) => {
                propagate(*t, out, &mut work)?;
                if (pc as usize) + 1 < n {
                    propagate(pc + 1, out, &mut work)?;
                }
            }
            Insn::Ret | Insn::RetVal | Insn::Throw => {}
            _ => {
                if (pc as usize) + 1 < n {
                    propagate(pc + 1, out, &mut work)?;
                } else {
                    return Err(bad(pc, "control falls off the end of the method".into()));
                }
            }
        }
        // Handler entries receive exactly the thrown reference.
        for h in &method.handlers {
            if pc >= h.start_pc && pc < h.end_pc {
                propagate(h.handler_pc, 1, &mut work)?;
            }
        }
    }
    Ok(())
}

/// Verifies every method of the program.
///
/// # Errors
///
/// Returns the first failure; see [`verify_method`].
pub fn verify_program(program: &Program) -> Result<(), VmError> {
    for mid in 0..program.methods.len() as u32 {
        verify_method(program, MethodId(mid))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn program_with_main(code: Vec<Insn>) -> Program {
        let mut p = Program::empty();
        let mut main = Method::new("main", 1, 4);
        main.code = code;
        p.methods.push(main);
        p.link().unwrap();
        p
    }

    #[test]
    fn balanced_program_verifies() {
        let p = program_with_main(vec![
            Insn::PushInt(1),
            Insn::PushInt(2),
            Insn::Add,
            Insn::Print,
            Insn::Ret,
        ]);
        verify_program(&p).unwrap();
    }

    #[test]
    fn underflow_is_rejected() {
        let p = program_with_main(vec![Insn::Pop, Insn::Ret]);
        let err = verify_program(&p).unwrap_err();
        assert!(matches!(err, VmError::InvalidBytecode { pc: 0, .. }), "{err}");
        assert!(err.to_string().contains("underflow"));
    }

    #[test]
    fn inconsistent_join_is_rejected() {
        // One path pushes before the join, the other doesn't.
        //   0: push 1 ; 1: branch 4 ; 2: push 7 ; 3: push 8 ; 4: print; 5: ret
        let p = program_with_main(vec![
            Insn::PushInt(1),
            Insn::Branch(4),
            Insn::PushInt(7),
            Insn::PushInt(8),
            Insn::Print,
            Insn::Ret,
        ]);
        let err = verify_program(&p).unwrap_err();
        assert!(err.to_string().contains("inconsistent stack depth"), "{err}");
    }

    #[test]
    fn falling_off_the_end_is_rejected() {
        let p = program_with_main(vec![Insn::PushInt(1), Insn::Pop]);
        let err = verify_program(&p).unwrap_err();
        assert!(err.to_string().contains("falls off"), "{err}");
    }

    #[test]
    fn handler_entry_depth_is_one() {
        let mut p = Program::empty();
        let mut main = Method::new("main", 1, 2);
        // try { 1/0 } catch { pop; ret }
        main.code = vec![
            Insn::PushInt(1),
            Insn::PushInt(0),
            Insn::Div,
            Insn::Pop,
            Insn::Ret,
            Insn::Pop, // handler at 5: pops the exception ref
            Insn::Ret,
        ];
        main.handlers.push(crate::class::Handler {
            start_pc: 0,
            end_pc: 4,
            handler_pc: 5,
            catch: None,
        });
        p.methods.push(main);
        p.link().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn calls_account_for_arity() {
        let mut b = ProgramBuilder::new();
        let f = b.declare_method("f", None, true, 2, 2);
        {
            let mut m = b.begin_body(f);
            m.load(0).load(1).add().ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.push_int(1).push_int(2).call(f).print().ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        verify_program(&p).unwrap();

        // Under-supplying arguments is an underflow.
        let mut b = ProgramBuilder::new();
        let f = b.declare_method("f", None, true, 2, 2);
        {
            let mut m = b.begin_body(f);
            m.load(0).load(1).add().ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.push_int(1).call(f).print().ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert!(verify_program(&p).is_err());
    }

    #[test]
    fn every_workload_style_loop_verifies() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.push_int(0).store(1);
            m.label("loop");
            m.load(1).push_int(5).cmpge().branch("done");
            m.load(1).push_int(1).add().store(1);
            m.jump("loop");
            m.label("done");
            m.load(1).print().ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        verify_program(&p).unwrap();
    }
}
