//! Classes, fields, methods, and exception-handler tables.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{ClassId, MethodId};
use crate::insn::Insn;

/// Java-style access visibility of a field.
///
/// Visibility does not affect execution; it scopes the *static analyses*
/// (where must a rewriting look for possible uses?) and is reported in the
/// Table 5 "reference kind" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Visibility {
    /// Visible only inside the declaring class.
    #[default]
    Private,
    /// Visible inside the declaring package.
    Package,
    /// Visible inside the class and subclasses.
    Protected,
    /// Visible everywhere.
    Public,
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Visibility::Private => "private",
            Visibility::Package => "package",
            Visibility::Protected => "protected",
            Visibility::Public => "public",
        };
        f.write_str(s)
    }
}

/// A field declared by a class (not including inherited fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Simple field name, unique within the declaring class.
    pub name: String,
    /// Access visibility.
    pub visibility: Visibility,
}

impl FieldDef {
    /// Creates a field with the given name and visibility.
    pub fn new(name: impl Into<String>, visibility: Visibility) -> Self {
        Self {
            name: name.into(),
            visibility,
        }
    }
}

/// A class definition.
///
/// The *layout* (inherited fields first, declared fields after) and the
/// *vtable* are filled in by [`Program::link`](crate::program::Program::link).
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Fully-qualified class name (e.g. `"jdk.Vector"`).
    pub name: String,
    /// Superclass, if any. Builtin `Object` has none.
    pub super_class: Option<ClassId>,
    /// Fields declared by this class (excluding inherited).
    pub fields: Vec<FieldDef>,
    /// Package name used to scope [`Visibility::Package`] analysis; derived
    /// from the class name prefix up to the last `.`.
    pub package: String,
    /// Full field layout: `(declaring class, field index within declaring
    /// class)` for each slot. Populated at link time.
    pub layout: Vec<(ClassId, u16)>,
    /// Virtual dispatch table indexed by [`VSlot`](crate::ids::VSlot);
    /// `None` where the class does not respond to the selector. Populated at
    /// link time.
    pub vtable: Vec<Option<MethodId>>,
    /// Finalizer method run by deep GC before reclamation, if any. The
    /// method must be an instance method of this class taking only the
    /// receiver.
    pub finalizer: Option<MethodId>,
    /// Pinned classes model `Class` objects and the special objects hanging
    /// off them; their instances are never reported to observers and are
    /// treated as GC roots (the paper excludes them from drag reports).
    pub pinned: bool,
}

impl ClassDef {
    /// Creates an unlinked class with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let package = name
            .rfind('.')
            .map(|i| name[..i].to_string())
            .unwrap_or_default();
        Self {
            name,
            super_class: None,
            fields: Vec::new(),
            package,
            layout: Vec::new(),
            vtable: Vec::new(),
            finalizer: None,
            pinned: false,
        }
    }

    /// Number of value slots an instance of this class carries.
    ///
    /// Only meaningful after linking.
    pub fn num_slots(&self) -> u16 {
        self.layout.len() as u16
    }
}

/// One entry of a method's exception-handler table.
///
/// A handler covers instructions with `start_pc <= pc < end_pc`. When an
/// exception of class `catch` (or a subclass) is thrown in that range, the
/// operand stack is cleared, the exception reference (or null for VM-raised
/// conditions) is pushed, and control transfers to `handler_pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handler {
    /// First covered pc (inclusive).
    pub start_pc: u32,
    /// Last covered pc (exclusive).
    pub end_pc: u32,
    /// Entry point of the handler.
    pub handler_pc: u32,
    /// Exception class caught; `None` catches everything.
    pub catch: Option<ClassId>,
}

/// A method body.
#[derive(Debug, Clone)]
pub struct Method {
    /// Simple method name (e.g. `"init"`, `"main"`, `"indexDocument"`).
    pub name: String,
    /// Declaring class; `None` for free functions such as `main`.
    pub class: Option<ClassId>,
    /// Number of parameters, including the receiver for instance methods.
    /// Arguments are popped into locals `0..num_params`.
    pub num_params: u16,
    /// Total number of local variable slots (`>= num_params`).
    pub num_locals: u16,
    /// True for static methods and free functions (no receiver).
    pub is_static: bool,
    /// The instruction sequence.
    pub code: Vec<Insn>,
    /// Exception handler table, searched in order.
    pub handlers: Vec<Handler>,
    /// Optional human-readable labels for individual pcs, surfaced in
    /// profiler reports ("the line of source at this site").
    pub site_labels: BTreeMap<u32, String>,
}

impl Method {
    /// Creates an empty static method.
    pub fn new(name: impl Into<String>, num_params: u16, num_locals: u16) -> Self {
        Self {
            name: name.into(),
            class: None,
            num_params,
            num_locals: num_locals.max(num_params),
            is_static: true,
            code: Vec::new(),
            handlers: Vec::new(),
            site_labels: BTreeMap::new(),
        }
    }

    /// The label attached to `pc`, if any.
    pub fn site_label(&self, pc: u32) -> Option<&str> {
        self.site_labels.get(&pc).map(String::as_str)
    }

    /// A readable `Class.method` or bare `method` name.
    pub fn qualified_name(&self, class_name: Option<&str>) -> String {
        match class_name {
            Some(c) => format!("{c}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_derivation() {
        let c = ClassDef::new("jdk.util.Vector");
        assert_eq!(c.package, "jdk.util");
        let c = ClassDef::new("Main");
        assert_eq!(c.package, "");
    }

    #[test]
    fn visibility_display_and_order() {
        assert_eq!(Visibility::Package.to_string(), "package");
        assert!(Visibility::Private < Visibility::Public);
        assert_eq!(Visibility::default(), Visibility::Private);
    }

    #[test]
    fn method_defaults() {
        let m = Method::new("main", 1, 0);
        assert_eq!(m.num_locals, 1, "locals grow to cover params");
        assert!(m.is_static);
        assert_eq!(m.qualified_name(None), "main");
        assert_eq!(m.qualified_name(Some("A")), "A.main");
    }

    #[test]
    fn site_labels() {
        let mut m = Method::new("f", 0, 0);
        m.site_labels.insert(3, "new char[100K]".into());
        assert_eq!(m.site_label(3), Some("new char[100K]"));
        assert_eq!(m.site_label(4), None);
    }
}
