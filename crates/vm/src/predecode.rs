//! Pre-decoded instruction streams for the fast interpreter.
//!
//! [`predecode`] lowers every [`Method`] of a linked
//! [`Program`] into a flat [`Op`] stream once, at `Vm::new` time, so the hot
//! dispatch loop never re-derives per-instruction facts:
//!
//! * operand payloads the reference loop looks up per step (a `New`'s slot
//!   count, a `Call`'s arity and static/instance split) are resolved into the
//!   [`Op`] itself;
//! * the dominant opcode *pairs* (measured by the per-class dispatch
//!   counters) are fused into superinstructions — see the `Load*`, `PushIntAdd`,
//!   `AddStore`, and `Cmp*Branch` variants — halving dispatches on loop-heavy
//!   code;
//! * every site that can consult an inline cache gets a cache slot index
//!   assigned here, so the caches themselves are dense vectors, not maps.
//!
//! # Layout invariant (pc preservation)
//!
//! The lowered stream has **exactly one [`Op`] per original instruction, at
//! the same index**. A fused superinstruction occupies the first pc of its
//! pair; the second pc still holds the plainly-lowered second instruction,
//! which is unreachable in normal flow (the fused op advances the pc by two)
//! but keeps every original pc addressable. This is what makes exception
//! handler ranges, branch targets, and fault-pc attribution identical to the
//! reference interpreter with no translation tables: a fused step that
//! faults in its second half reports the *second* original pc.
//!
//! Fusion is suppressed when the second pc is a branch target or a handler
//! entry (control may land there directly). Handler *range* boundaries do
//! not suppress fusion: faults are attributed per original pc, so a handler
//! covering only half of a fused pair behaves exactly as in the reference.

use std::collections::HashMap;

use crate::class::Method;
use crate::ids::{ChainId, ClassId, MethodId, SiteId, StaticId, VSlot};
use crate::insn::{Insn, OpcodeClass};
use crate::program::Program;

/// Extra operand-stack capacity reserved beyond the statically estimated
/// maximum depth, so small estimate misses never cause a mid-run regrow.
pub const STACK_HEADROOM: usize = 8;

/// Minimum pre-grown operand-stack capacity for any frame.
pub const MIN_STACK_CAPACITY: usize = 8;

/// A pre-decoded operation. One per original [`Insn`], at the same pc.
///
/// Payload-free instructions lower to payload-free variants; instructions
/// whose reference-loop execution re-derives something per step carry that
/// something pre-resolved. The `ic` fields index the per-VM inline-cache
/// vectors in [`IcState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push an integer constant.
    PushInt(i64),
    /// Push the null reference.
    PushNull,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,
    /// Push local `n`.
    Load(u16),
    /// Pop into local `n`.
    Store(u16),
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; throws `ArithmeticException` on zero.
    Div,
    /// Remainder; throws `ArithmeticException` on zero.
    Rem,
    /// Negate the topmost int.
    Neg,
    /// Equality comparison (ints or references).
    CmpEq,
    /// Inequality comparison.
    CmpNe,
    /// `a < b`.
    CmpLt,
    /// `a <= b`.
    CmpLe,
    /// `a > b`.
    CmpGt,
    /// `a >= b`.
    CmpGe,
    /// Unconditional jump.
    Jump(u32),
    /// Pop an int; jump if non-zero.
    Branch(u32),
    /// Pop a reference; jump if null.
    BranchIfNull(u32),
    /// Pop a reference; jump if non-null.
    BranchIfNotNull(u32),
    /// Allocate an instance: class, pre-resolved slot count, and an
    /// allocation-chain cache slot.
    New {
        /// Class to instantiate.
        class: ClassId,
        /// `num_slots()` of the class, resolved at predecode time.
        slots: u16,
        /// Chain-cache slot for the allocation site.
        ic: u32,
    },
    /// Allocate an array; chain-cache slot for the allocation site.
    NewArray {
        /// Chain-cache slot for the allocation site.
        ic: u32,
    },
    /// Read field `slot`; chain-cache slot for the use site.
    GetField {
        /// Field layout slot.
        slot: u16,
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Write field `slot`; chain-cache slot for the use site.
    PutField {
        /// Field layout slot.
        slot: u16,
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Array element read; chain-cache slot for the use site.
    ALoad {
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Array element write; chain-cache slot for the use site.
    AStore {
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Array length; chain-cache slot for the use site.
    ArrayLen {
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Subclass test.
    InstanceOf(ClassId),
    /// Push a static variable.
    GetStatic(StaticId),
    /// Pop into a static variable.
    PutStatic(StaticId),
    /// Direct call with the callee's arity and instance-ness pre-resolved.
    Call {
        /// Callee.
        target: MethodId,
        /// The callee's `num_params`, resolved at predecode time.
        nparams: u16,
        /// True if the callee is an instance method (receiver use + null check).
        is_instance: bool,
        /// Chain-cache slot for the receiver-use site (instance calls).
        ic: u32,
        /// Context-cache slot for the callee frame's call chain.
        cic: u32,
    },
    /// Virtual call with vtable and context caches.
    CallVirtual {
        /// Selector slot.
        vslot: VSlot,
        /// Argument count, excluding the receiver.
        argc: u8,
        /// Chain-cache slot for the receiver-use site.
        ic: u32,
        /// Context-cache slot for the callee frame's call chain.
        cic: u32,
        /// Vtable cache slot (receiver class → target method).
        vic: u32,
    },
    /// Return with no value.
    Ret,
    /// Return the top of stack.
    RetVal,
    /// Enter a monitor; chain-cache slot for the use site.
    MonitorEnter {
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Exit a monitor; chain-cache slot for the use site.
    MonitorExit {
        /// Chain-cache slot for the use site.
        ic: u32,
    },
    /// Pop and throw an exception object.
    Throw,
    /// Pop an int to the program output.
    Print,
    /// No operation.
    Nop,

    // --- superinstructions (fused pairs) ----------------------------------
    /// `Load(local)` + `GetField(slot)`: the dominant field-walk pair.
    LoadGetField {
        /// Local holding the receiver.
        local: u16,
        /// Field layout slot.
        slot: u16,
        /// Chain-cache slot for the `GetField` use site (second pc).
        ic: u32,
    },
    /// `Load(a)` + `Load(b)`: the dominant loop-header pair.
    LoadLoad {
        /// First local.
        a: u16,
        /// Second local.
        b: u16,
    },
    /// `Load(local)` + `PushInt(value)`.
    LoadPushInt {
        /// Local to push first.
        local: u16,
        /// Constant to push second.
        value: i64,
    },
    /// `Load(from)` + `Store(to)`: a local-to-local move.
    LoadStore {
        /// Source local.
        from: u16,
        /// Destination local.
        to: u16,
    },
    /// `PushInt(value)` + `Add`: increment by a constant.
    PushIntAdd {
        /// The constant addend.
        value: i64,
    },
    /// `Add` + `Store(local)`: accumulate into a local.
    AddStore {
        /// Destination local.
        local: u16,
    },
    /// `CmpLt` + `Branch(target)`: compare-and-branch, the loop back edge.
    CmpLtBranch(u32),
    /// `CmpLe` + `Branch(target)`.
    CmpLeBranch(u32),
    /// `CmpGt` + `Branch(target)`.
    CmpGtBranch(u32),
    /// `CmpGe` + `Branch(target)`.
    CmpGeBranch(u32),
}

impl Op {
    /// The [`OpcodeClass`] of the op's *first* original instruction; fused
    /// ops account for their second half separately, mid-execution, so the
    /// per-class dispatch counters match the reference loop exactly.
    pub fn class_first(&self) -> OpcodeClass {
        match self {
            Op::PushInt(_)
            | Op::PushNull
            | Op::Dup
            | Op::Pop
            | Op::Swap
            | Op::Load(_)
            | Op::Store(_)
            | Op::Nop
            | Op::LoadGetField { .. }
            | Op::LoadLoad { .. }
            | Op::LoadPushInt { .. }
            | Op::LoadStore { .. }
            | Op::PushIntAdd { .. } => OpcodeClass::Stack,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Neg | Op::AddStore { .. } => {
                OpcodeClass::Arith
            }
            Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe
            | Op::InstanceOf(_)
            | Op::CmpLtBranch(_)
            | Op::CmpLeBranch(_)
            | Op::CmpGtBranch(_)
            | Op::CmpGeBranch(_) => OpcodeClass::Compare,
            Op::Jump(_) | Op::Branch(_) | Op::BranchIfNull(_) | Op::BranchIfNotNull(_) => {
                OpcodeClass::Control
            }
            Op::New { .. } | Op::NewArray { .. } => OpcodeClass::Alloc,
            Op::GetField { .. } | Op::PutField { .. } => OpcodeClass::Field,
            Op::ALoad { .. } | Op::AStore { .. } | Op::ArrayLen { .. } => OpcodeClass::Array,
            Op::GetStatic(_) | Op::PutStatic(_) => OpcodeClass::Static,
            Op::Call { .. } | Op::CallVirtual { .. } => OpcodeClass::Call,
            Op::Ret | Op::RetVal => OpcodeClass::Ret,
            Op::MonitorEnter { .. } | Op::MonitorExit { .. } => OpcodeClass::Monitor,
            Op::Throw => OpcodeClass::Throw,
            Op::Print => OpcodeClass::Io,
        }
    }

    /// The [`OpcodeClass`] of the second half of a fused pair, if any.
    pub fn class_second(&self) -> Option<OpcodeClass> {
        match self {
            Op::LoadGetField { .. } => Some(OpcodeClass::Field),
            Op::LoadLoad { .. } | Op::LoadPushInt { .. } | Op::LoadStore { .. } => {
                Some(OpcodeClass::Stack)
            }
            Op::PushIntAdd { .. } => Some(OpcodeClass::Arith),
            Op::AddStore { .. } => Some(OpcodeClass::Stack),
            Op::CmpLtBranch(_) | Op::CmpLeBranch(_) | Op::CmpGtBranch(_) | Op::CmpGeBranch(_) => {
                Some(OpcodeClass::Control)
            }
            _ => None,
        }
    }

    /// True if this op is a fused superinstruction (spans two original pcs).
    pub fn is_fused(&self) -> bool {
        self.class_second().is_some()
    }
}

/// One pre-decoded method: the op stream plus a pre-grow hint for frames.
#[derive(Debug, Clone, Default)]
pub struct PredecodedMethod {
    /// One op per original instruction, at the same index.
    pub ops: Vec<Op>,
    /// Operand-stack capacity to reserve for frames of this method
    /// (estimated maximum depth plus [`STACK_HEADROOM`]).
    pub stack_capacity: usize,
}

/// A whole program lowered for the fast loop, plus the inline-cache slot
/// counts assigned during lowering.
#[derive(Debug, Clone, Default)]
pub struct PredecodedProgram {
    /// One entry per `program.methods` entry, same order.
    pub methods: Vec<PredecodedMethod>,
    /// Number of allocation/use chain-cache slots assigned.
    pub chain_ics: u32,
    /// Number of call-context cache slots assigned.
    pub ctx_ics: u32,
    /// Number of vtable cache slots assigned.
    pub vt_ics: u32,
}

/// A monomorphic cache of the event chain interned for one allocation or
/// use site, keyed by the executing frame's context id.
///
/// `ctx_plus1 == 0` means empty; a hit requires `ctx_plus1 == ctx + 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainIc {
    /// Cached frame-context id, plus one (0 = empty slot).
    pub ctx_plus1: u32,
    /// The interned chain for (site, context).
    pub chain: ChainId,
}

/// A monomorphic cache of the callee context built at one call site, keyed
/// by the caller frame's context id.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtxIc {
    /// Cached caller-context id, plus one (0 = empty slot).
    pub caller_plus1: u32,
    /// The interned callee context.
    pub callee: u32,
}

/// A monomorphic vtable cache for one `CallVirtual` site, keyed by the
/// receiver class. Only *successful* dispatches (target found, arity
/// checked) are cached.
#[derive(Debug, Clone, Copy, Default)]
pub struct VtIc {
    /// Cached receiver class id, plus one (0 = empty slot).
    pub class_plus1: u32,
    /// The resolved target method.
    pub target: MethodId,
}

/// The per-VM inline-cache state, sized by [`PredecodedProgram`] slot
/// counts. Persistent across runs of the same `Vm` (site ids are too).
#[derive(Debug, Clone, Default)]
pub struct IcState {
    /// Allocation/use chain caches, indexed by `ic` fields.
    pub chains: Vec<ChainIc>,
    /// Call-context caches, indexed by `cic` fields.
    pub ctxs: Vec<CtxIc>,
    /// Vtable caches, indexed by `vic` fields.
    pub vtables: Vec<VtIc>,
}

impl IcState {
    /// Allocates empty caches for every slot `pre` assigned.
    pub fn for_program(pre: &PredecodedProgram) -> Self {
        IcState {
            chains: vec![ChainIc::default(); pre.chain_ics as usize],
            ctxs: vec![CtxIc::default(); pre.ctx_ics as usize],
            vtables: vec![VtIc::default(); pre.vt_ics as usize],
        }
    }
}

/// Interns caller-context vectors (the `site_depth - 1` suffix of event
/// chains) so fast-path frames carry a single `u32` instead of a `Vec`.
///
/// Id 0 is always the empty context. This table is private to the fast
/// interpreter and never feeds the [`SiteTable`](crate::site::SiteTable)
/// numbering, so log output is unaffected by it.
#[derive(Debug, Clone)]
pub struct CtxTable {
    list: Vec<Vec<SiteId>>,
    by_ctx: HashMap<Vec<SiteId>, u32>,
}

impl Default for CtxTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CtxTable {
    /// A table containing only the empty context (id 0).
    pub fn new() -> Self {
        let mut by_ctx = HashMap::new();
        by_ctx.insert(Vec::new(), 0);
        CtxTable {
            list: vec![Vec::new()],
            by_ctx,
        }
    }

    /// Interns a context, returning its stable id.
    pub fn intern(&mut self, ctx: Vec<SiteId>) -> u32 {
        if let Some(&id) = self.by_ctx.get(&ctx) {
            return id;
        }
        let id = self.list.len() as u32;
        self.list.push(ctx.clone());
        self.by_ctx.insert(ctx, id);
        id
    }

    /// The sites of context `id`, innermost first.
    pub fn get(&self, id: u32) -> &[SiteId] {
        &self.list[id as usize]
    }
}

/// True if `(a, b)` is a pair the lowering fuses into a superinstruction.
fn fusable_pair(a: &Insn, b: &Insn) -> bool {
    matches!(
        (a, b),
        (Insn::Load(_), Insn::GetField(_))
            | (Insn::Load(_), Insn::PushInt(_))
            | (Insn::Load(_), Insn::Load(_))
            | (Insn::Load(_), Insn::Store(_))
            | (Insn::PushInt(_), Insn::Add)
            | (Insn::Add, Insn::Store(_))
            | (Insn::CmpLt, Insn::Branch(_))
            | (Insn::CmpLe, Insn::Branch(_))
            | (Insn::CmpGt, Insn::Branch(_))
            | (Insn::CmpGe, Insn::Branch(_))
    )
}

/// Builds the fused op from the first original instruction and the
/// plainly-lowered second op. Must agree with [`fusable_pair`].
fn fuse_pair(first: &Insn, second: &Op) -> Op {
    match (first, second) {
        (Insn::Load(n), Op::GetField { slot, ic }) => Op::LoadGetField {
            local: *n,
            slot: *slot,
            ic: *ic,
        },
        (Insn::Load(n), Op::PushInt(v)) => Op::LoadPushInt {
            local: *n,
            value: *v,
        },
        (Insn::Load(a), Op::Load(b)) => Op::LoadLoad { a: *a, b: *b },
        (Insn::Load(f), Op::Store(t)) => Op::LoadStore { from: *f, to: *t },
        (Insn::PushInt(v), Op::Add) => Op::PushIntAdd { value: *v },
        (Insn::Add, Op::Store(n)) => Op::AddStore { local: *n },
        (Insn::CmpLt, Op::Branch(t)) => Op::CmpLtBranch(*t),
        (Insn::CmpLe, Op::Branch(t)) => Op::CmpLeBranch(*t),
        (Insn::CmpGt, Op::Branch(t)) => Op::CmpGtBranch(*t),
        (Insn::CmpGe, Op::Branch(t)) => Op::CmpGeBranch(*t),
        _ => unreachable!("fuse_pair called on a pair fusable_pair rejected"),
    }
}

/// Running counters for inline-cache slot assignment during lowering.
#[derive(Default)]
struct IcCounters {
    chains: u32,
    ctxs: u32,
    vtables: u32,
}

impl IcCounters {
    fn chain(&mut self) -> u32 {
        let id = self.chains;
        self.chains += 1;
        id
    }
    fn ctx(&mut self) -> u32 {
        let id = self.ctxs;
        self.ctxs += 1;
        id
    }
    fn vtable(&mut self) -> u32 {
        let id = self.vtables;
        self.vtables += 1;
        id
    }
}

/// Lowers one instruction, assigning inline-cache slots as needed.
fn lower(program: &Program, insn: &Insn, c: &mut IcCounters) -> Op {
    match *insn {
        Insn::PushInt(i) => Op::PushInt(i),
        Insn::PushNull => Op::PushNull,
        Insn::Dup => Op::Dup,
        Insn::Pop => Op::Pop,
        Insn::Swap => Op::Swap,
        Insn::Load(n) => Op::Load(n),
        Insn::Store(n) => Op::Store(n),
        Insn::Add => Op::Add,
        Insn::Sub => Op::Sub,
        Insn::Mul => Op::Mul,
        Insn::Div => Op::Div,
        Insn::Rem => Op::Rem,
        Insn::Neg => Op::Neg,
        Insn::CmpEq => Op::CmpEq,
        Insn::CmpNe => Op::CmpNe,
        Insn::CmpLt => Op::CmpLt,
        Insn::CmpLe => Op::CmpLe,
        Insn::CmpGt => Op::CmpGt,
        Insn::CmpGe => Op::CmpGe,
        Insn::Jump(t) => Op::Jump(t),
        Insn::Branch(t) => Op::Branch(t),
        Insn::BranchIfNull(t) => Op::BranchIfNull(t),
        Insn::BranchIfNotNull(t) => Op::BranchIfNotNull(t),
        Insn::New(class) => Op::New {
            class,
            slots: program.classes[class.index()].num_slots(),
            ic: c.chain(),
        },
        Insn::NewArray => Op::NewArray { ic: c.chain() },
        Insn::GetField(slot) => Op::GetField {
            slot,
            ic: c.chain(),
        },
        Insn::PutField(slot) => Op::PutField {
            slot,
            ic: c.chain(),
        },
        Insn::ALoad => Op::ALoad { ic: c.chain() },
        Insn::AStore => Op::AStore { ic: c.chain() },
        Insn::ArrayLen => Op::ArrayLen { ic: c.chain() },
        Insn::InstanceOf(class) => Op::InstanceOf(class),
        Insn::GetStatic(s) => Op::GetStatic(s),
        Insn::PutStatic(s) => Op::PutStatic(s),
        Insn::Call(target) => {
            let callee = &program.methods[target.index()];
            Op::Call {
                target,
                nparams: callee.num_params,
                is_instance: !callee.is_static,
                ic: c.chain(),
                cic: c.ctx(),
            }
        }
        Insn::CallVirtual { vslot, argc } => Op::CallVirtual {
            vslot,
            argc,
            ic: c.chain(),
            cic: c.ctx(),
            vic: c.vtable(),
        },
        Insn::Ret => Op::Ret,
        Insn::RetVal => Op::RetVal,
        Insn::MonitorEnter => Op::MonitorEnter { ic: c.chain() },
        Insn::MonitorExit => Op::MonitorExit { ic: c.chain() },
        Insn::Throw => Op::Throw,
        Insn::Print => Op::Print,
        Insn::Nop => Op::Nop,
    }
}

/// A conservative linear estimate of the method's maximum operand-stack
/// depth, used only as a pre-grow capacity hint (never for checking).
fn estimate_stack_depth(program: &Program, method: &Method) -> usize {
    let mut depth: usize = 0;
    let mut max = 0;
    for insn in &method.code {
        let (pops, pushes) = match insn {
            Insn::PushInt(_) | Insn::PushNull | Insn::Load(_) | Insn::GetStatic(_) => (0, 1),
            Insn::Dup => (1, 2),
            Insn::Pop
            | Insn::Store(_)
            | Insn::Branch(_)
            | Insn::BranchIfNull(_)
            | Insn::BranchIfNotNull(_)
            | Insn::PutStatic(_)
            | Insn::RetVal
            | Insn::MonitorEnter
            | Insn::MonitorExit
            | Insn::Throw
            | Insn::Print => (1, 0),
            Insn::Swap => (2, 2),
            Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Rem => (2, 1),
            Insn::Neg
            | Insn::NewArray
            | Insn::GetField(_)
            | Insn::ArrayLen
            | Insn::InstanceOf(_) => (1, 1),
            Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
                (2, 1)
            }
            Insn::Jump(_) | Insn::Ret | Insn::Nop => (0, 0),
            Insn::New(_) => (0, 1),
            Insn::PutField(_) => (2, 0),
            Insn::ALoad => (2, 1),
            Insn::AStore => (3, 0),
            Insn::Call(target) => {
                let callee = &program.methods[target.index()];
                let pushes = usize::from(callee.code.iter().any(|i| matches!(i, Insn::RetVal)));
                (callee.num_params as usize, pushes)
            }
            Insn::CallVirtual { argc, .. } => (*argc as usize + 1, 1),
        };
        depth = depth.saturating_sub(pops) + pushes;
        max = max.max(depth);
    }
    max
}

/// Lowers every method of `program`. Requires a linked program (class
/// layouts, vtables, and jump targets resolved — [`Program::link`] validates
/// branch targets and local indices, which is why the fast loop can index
/// without re-checking them).
pub fn predecode(program: &Program) -> PredecodedProgram {
    let mut c = IcCounters::default();
    let mut methods = Vec::with_capacity(program.methods.len());
    for method in &program.methods {
        methods.push(predecode_method(program, method, &mut c));
    }
    PredecodedProgram {
        methods,
        chain_ics: c.chains,
        ctx_ics: c.ctxs,
        vt_ics: c.vtables,
    }
}

fn predecode_method(program: &Program, method: &Method, c: &mut IcCounters) -> PredecodedMethod {
    let n = method.code.len();
    // A pc where control can land directly must not be hidden inside a
    // fused pair: branch targets and handler entries bar fusion.
    let mut barrier = vec![false; n];
    for insn in &method.code {
        if let Some(t) = insn.jump_target() {
            if let Some(b) = barrier.get_mut(t as usize) {
                *b = true;
            }
        }
    }
    for h in &method.handlers {
        if let Some(b) = barrier.get_mut(h.handler_pc as usize) {
            *b = true;
        }
    }

    let mut ops = Vec::with_capacity(n);
    let mut pc = 0;
    while pc < n {
        let fuse = pc + 1 < n && !barrier[pc + 1] && fusable_pair(&method.code[pc], &method.code[pc + 1]);
        if fuse {
            let second = lower(program, &method.code[pc + 1], c);
            ops.push(fuse_pair(&method.code[pc], &second));
            ops.push(second);
            pc += 2;
        } else {
            ops.push(lower(program, &method.code[pc], c));
            pc += 1;
        }
    }
    debug_assert_eq!(ops.len(), n, "lowering preserves pcs");

    PredecodedMethod {
        ops,
        stack_capacity: (estimate_stack_depth(program, method) + STACK_HEADROOM)
            .max(MIN_STACK_CAPACITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn counted_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.push_int(0).store(1);
            m.label("loop");
            m.load(1).push_int(5).cmpge().branch("done");
            m.load(1).push_int(1).add().store(1);
            m.jump("loop");
            m.label("done");
            m.load(1).print().ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn lowering_preserves_pcs_and_fuses_loop_pairs() {
        let p = counted_loop_program();
        let pre = predecode(&p);
        let main = &pre.methods[p.entry.index()];
        assert_eq!(main.ops.len(), p.methods[p.entry.index()].code.len());
        assert!(
            main.ops.iter().any(|op| op.is_fused()),
            "a counted loop must produce at least one superinstruction: {:?}",
            main.ops
        );
        // The loop body `load 1; push 1; add; store 1` fuses into two ops.
        assert!(main
            .ops
            .iter()
            .any(|op| matches!(op, Op::LoadPushInt { local: 1, value: 1 })));
        assert!(main
            .ops
            .iter()
            .any(|op| matches!(op, Op::AddStore { local: 1 })));
    }

    #[test]
    fn branch_targets_bar_fusion() {
        let p = counted_loop_program();
        let pre = predecode(&p);
        let method = &p.methods[p.entry.index()];
        let ops = &pre.methods[p.entry.index()].ops;
        for (pc, op) in ops.iter().enumerate() {
            if op.is_fused() {
                let second_pc = (pc + 1) as u32;
                for insn in &method.code {
                    assert_ne!(
                        insn.jump_target(),
                        Some(second_pc),
                        "fused pair at {pc} hides branch target {second_pc}"
                    );
                }
            }
        }
    }

    #[test]
    fn stack_capacity_covers_straight_line_depth() {
        let p = counted_loop_program();
        let pre = predecode(&p);
        assert!(pre.methods[p.entry.index()].stack_capacity >= 2 + STACK_HEADROOM);
    }

    #[test]
    fn ctx_table_interns_stably() {
        let mut t = CtxTable::new();
        assert_eq!(t.intern(Vec::new()), 0);
        let a = t.intern(vec![SiteId(1), SiteId(2)]);
        let b = t.intern(vec![SiteId(1), SiteId(2)]);
        assert_eq!(a, b);
        assert_eq!(t.get(a), &[SiteId(1), SiteId(2)]);
        assert_ne!(t.intern(vec![SiteId(2)]), a);
    }
}
