//! Disassembly of linked programs back into the [`asm`](crate::asm) format.
//!
//! The output round-trips: `assemble(disassemble(p))` yields a program with
//! identical classes, method bodies, and entry point (id numbering may
//! differ for builtins, which are re-created by the assembler).

use std::fmt::Write as _;

use crate::ids::MethodId;
use crate::insn::Insn;
use crate::program::Program;

/// Number of builtin classes created by [`Program::empty`]; these are not
/// printed (the assembler recreates them).
const NUM_BUILTIN_CLASSES: usize = 6;

/// Renders a whole program as assembly text.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for class in program.classes.iter().skip(NUM_BUILTIN_CLASSES) {
        let mut header = format!("class {}", class.name);
        if let Some(sup) = class.super_class {
            if sup != program.builtins.object {
                let _ = write!(header, " extends {}", program.classes[sup.index()].name);
            }
        }
        if class.pinned {
            header.push_str(" pinned");
        }
        let _ = writeln!(out, "{header} {{");
        for f in &class.fields {
            let _ = writeln!(out, "  field {} {}", f.name, f.visibility);
        }
        if let Some(fin) = class.finalizer {
            let _ = writeln!(out, "  finalizer {}", program.methods[fin.index()].name);
        }
        let _ = writeln!(out, "}}");
    }
    for s in &program.statics {
        let init = match s.init {
            crate::value::Value::Int(i) => i.to_string(),
            _ => "null".to_string(),
        };
        let _ = writeln!(out, "static {} {} = {}", s.name, s.visibility, init);
    }
    for (i, _) in program.methods.iter().enumerate() {
        out.push_str(&disassemble_method(program, MethodId(i as u32)));
    }
    let entry = &program.methods[program.entry.index()];
    let _ = writeln!(out, "entry {}", entry.name);
    out
}

/// Renders one method as assembly text.
pub fn disassemble_method(program: &Program, id: MethodId) -> String {
    let m = &program.methods[id.index()];
    let mut out = String::new();
    let full_name = match m.class {
        Some(c) => format!("{}.{}", program.classes[c.index()].name, m.name),
        None => m.name.clone(),
    };
    let staticness = if m.is_static { " static" } else { "" };
    let _ = writeln!(
        out,
        "method {full_name}{staticness} params={} locals={} {{",
        m.num_params, m.num_locals
    );

    // Collect label targets.
    let mut targets: Vec<u32> = m
        .code
        .iter()
        .filter_map(|i| i.jump_target())
        .chain(m.handlers.iter().flat_map(|h| [h.start_pc, h.end_pc, h.handler_pc]))
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |pc: u32| format!("L{pc}");

    for (pc, insn) in m.code.iter().enumerate() {
        let pc = pc as u32;
        if targets.binary_search(&pc).is_ok() {
            let _ = writeln!(out, "{}:", label_of(pc));
        }
        if let Some(site) = m.site_label(pc) {
            let _ = writeln!(out, "  .site \"{site}\"");
        }
        let text = match insn {
            Insn::Jump(t) => format!("jump {}", label_of(*t)),
            Insn::Branch(t) => format!("branch {}", label_of(*t)),
            Insn::BranchIfNull(t) => format!("brnull {}", label_of(*t)),
            Insn::BranchIfNotNull(t) => format!("brnonnull {}", label_of(*t)),
            Insn::New(c) => format!("new {}", program.classes[c.index()].name),
            Insn::InstanceOf(c) => format!("instanceof {}", program.classes[c.index()].name),
            Insn::GetField(slot) => format!("getfield {slot}"),
            Insn::PutField(slot) => format!("putfield {slot}"),
            Insn::GetStatic(s) => format!("getstatic {}", program.statics[s.index()].name),
            Insn::PutStatic(s) => format!("putstatic {}", program.statics[s.index()].name),
            Insn::Call(m2) => {
                let callee = &program.methods[m2.index()];
                let full = match callee.class {
                    Some(c) => format!("{}.{}", program.classes[c.index()].name, callee.name),
                    None => callee.name.clone(),
                };
                format!("call {full}")
            }
            Insn::CallVirtual { vslot, argc } => {
                format!("callvirtual {} {argc}", program.selectors[vslot.index()])
            }
            other => other.to_string(),
        };
        let _ = writeln!(out, "  {text}");
    }
    // Trailing-label case: a handler end can point one past the last insn.
    let end = m.code.len() as u32;
    if targets.binary_search(&end).is_ok() {
        let _ = writeln!(out, "{}:", label_of(end));
        let _ = writeln!(out, "  nop");
    }
    for h in &m.handlers {
        let catch = match h.catch {
            Some(c) => program.classes[c.index()].name.clone(),
            None => "*".to_string(),
        };
        let _ = writeln!(
            out,
            "  .handler {} {} {} {catch}",
            label_of(h.start_pc),
            label_of(h.end_pc),
            label_of(h.handler_pc)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::interp::{Vm, VmConfig};

    const ROUNDTRIP_SRC: &str = r#"
class Box {
  field value private
}
static G.total public = 0
method Box.get params=1 locals=1 {
  load 0
  getfield Box.value
  retval
}
method main static params=1 locals=2 {
  new Box
  store 1
  load 1
  push 11
  putfield Box.value
  load 1
  callvirtual get 0
  print
  ret
}
entry main
"#;

    #[test]
    fn roundtrip_preserves_behaviour() {
        let p1 = assemble(ROUNDTRIP_SRC).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("re-assembly failed: {e}\n{text}"));
        let out1 = Vm::new(&p1, VmConfig::default()).run(&[]).unwrap().output;
        let out2 = Vm::new(&p2, VmConfig::default()).run(&[]).unwrap().output;
        assert_eq!(out1, out2);
        assert_eq!(out1, vec![11]);
    }

    #[test]
    fn roundtrip_preserves_code_shape() {
        let p1 = assemble(ROUNDTRIP_SRC).unwrap();
        let p2 = assemble(&disassemble(&p1)).unwrap();
        assert_eq!(p1.methods.len(), p2.methods.len());
        for (a, b) in p1.methods.iter().zip(&p2.methods) {
            assert_eq!(a.code, b.code, "method {} differs", a.name);
            assert_eq!(a.handlers, b.handlers);
        }
    }

    #[test]
    fn handlers_roundtrip() {
        let src = r#"
method main static params=1 locals=1 {
t:
  push 1
  push 0
  div
  print
e:
  jump out
c:
  pop
  push 7
  print
out:
  ret
  .handler t e c ArithmeticException
}
entry main
"#;
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        let out = Vm::new(&p2, VmConfig::default()).run(&[]).unwrap().output;
        assert_eq!(out, vec![7]);
    }
}
