//! The bytecode instruction set.
//!
//! The ISA is a compact, stack-based subset of the JVM's, covering exactly
//! the operations whose heap effects the drag profiler observes: allocation
//! (`new`, `newarray`), field and array access, virtual and static calls,
//! monitors, and static variables. Control flow uses absolute `pc` targets
//! within a method; the [`builder`](crate::builder) resolves symbolic labels
//! to these targets.

use std::fmt;

use crate::ids::{ClassId, MethodId, StaticId, VSlot};

/// A single bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    // --- constants and stack shuffling -----------------------------------
    /// Push an integer constant.
    PushInt(i64),
    /// Push the null reference.
    PushNull,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,

    // --- locals -----------------------------------------------------------
    /// Push local variable `n`.
    Load(u16),
    /// Pop into local variable `n`.
    Store(u16),

    // --- integer arithmetic (operate on the two topmost ints) -------------
    /// `a + b` (wrapping).
    Add,
    /// `a - b` (wrapping).
    Sub,
    /// `a * b` (wrapping).
    Mul,
    /// `a / b`; throws `ArithmeticException` on division by zero.
    Div,
    /// `a % b`; throws `ArithmeticException` on division by zero.
    Rem,
    /// Negate the topmost int.
    Neg,

    // --- comparisons (push 1 or 0) ----------------------------------------
    /// `a == b` for two ints, or reference equality for two refs/nulls.
    CmpEq,
    /// Negation of [`Insn::CmpEq`].
    CmpNe,
    /// `a < b` (ints).
    CmpLt,
    /// `a <= b` (ints).
    CmpLe,
    /// `a > b` (ints).
    CmpGt,
    /// `a >= b` (ints).
    CmpGe,

    // --- control flow ------------------------------------------------------
    /// Unconditional jump to `pc`.
    Jump(u32),
    /// Pop an int; jump to `pc` if it is non-zero.
    Branch(u32),
    /// Pop a reference; jump to `pc` if it is null.
    BranchIfNull(u32),
    /// Pop a reference; jump to `pc` if it is non-null.
    BranchIfNotNull(u32),

    // --- objects ------------------------------------------------------------
    /// Allocate a new instance of the class; push its reference.
    ///
    /// Does **not** run a constructor; programs call an `init` method
    /// explicitly, as javac-emitted bytecode does with `<init>`.
    New(ClassId),
    /// Pop a receiver; push field at layout slot `n`. A *use* of the receiver.
    GetField(u16),
    /// Pop a value then a receiver; store into layout slot `n`. A *use*.
    PutField(u16),
    /// Pop a length; allocate an array of that many slots (all null); push it.
    NewArray,
    /// Pop index then array; push element. A *use* (handle dereference).
    ALoad,
    /// Pop value, index, array; store element. A *use* (handle dereference).
    AStore,
    /// Pop an array; push its length. A *use* (handle dereference).
    ArrayLen,
    /// Pop a reference (or null); push 1 if it is an instance of the class
    /// (or a subclass), else 0. Null yields 0. Not a use (no dereference of
    /// object payload is required under a handle-based heap).
    InstanceOf(ClassId),

    // --- statics -------------------------------------------------------------
    /// Push the value of a static variable.
    GetStatic(StaticId),
    /// Pop into a static variable.
    PutStatic(StaticId),

    // --- calls ----------------------------------------------------------------
    /// Call a method directly (static binding). Pops `num_params` arguments,
    /// rightmost on top. For instance methods parameter 0 is the receiver and
    /// the call is a *use* of it.
    Call(MethodId),
    /// Virtual dispatch through slot `vslot` with `argc` arguments *plus* the
    /// receiver beneath them. A *use* of the receiver.
    CallVirtual {
        /// Selector slot resolved against the receiver's vtable.
        vslot: VSlot,
        /// Number of arguments, excluding the receiver.
        argc: u8,
    },
    /// Return with no value.
    Ret,
    /// Pop a value and return it to the caller's stack.
    RetVal,

    // --- monitors ---------------------------------------------------------------
    /// Pop a reference and enter its monitor. A *use*.
    MonitorEnter,
    /// Pop a reference and exit its monitor. A *use*.
    MonitorExit,

    // --- exceptions ---------------------------------------------------------------
    /// Pop a reference and throw it.
    Throw,

    // --- miscellaneous --------------------------------------------------------------
    /// Pop an int and append it to the program output.
    Print,
    /// No operation. Used by transformations that blank out dead code.
    Nop,
}

/// A coarse grouping of opcodes for dispatch accounting.
///
/// The interpreter tallies one counter per class on every executed
/// instruction (a plain array increment, no atomics), and flushes the
/// tallies to `vm_dispatch_total{class="<name>"}` registry counters when a
/// run ends. The classes partition [`Insn`]: every instruction belongs to
/// exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpcodeClass {
    /// Constants, stack shuffling, locals, and `nop`.
    Stack,
    /// Integer arithmetic.
    Arith,
    /// Comparisons and `instanceof`.
    Compare,
    /// Jumps and branches.
    Control,
    /// Heap allocation (`new`, `newarray`).
    Alloc,
    /// Instance field access.
    Field,
    /// Array element and length access.
    Array,
    /// Static variable access.
    Static,
    /// Direct and virtual calls.
    Call,
    /// Returns.
    Ret,
    /// Monitor enter/exit.
    Monitor,
    /// Exception throw.
    Throw,
    /// Program output.
    Io,
}

impl OpcodeClass {
    /// Number of opcode classes.
    pub const COUNT: usize = 13;

    /// Every class, in discriminant order.
    pub const ALL: [OpcodeClass; OpcodeClass::COUNT] = [
        OpcodeClass::Stack,
        OpcodeClass::Arith,
        OpcodeClass::Compare,
        OpcodeClass::Control,
        OpcodeClass::Alloc,
        OpcodeClass::Field,
        OpcodeClass::Array,
        OpcodeClass::Static,
        OpcodeClass::Call,
        OpcodeClass::Ret,
        OpcodeClass::Monitor,
        OpcodeClass::Throw,
        OpcodeClass::Io,
    ];

    /// The class name as used in metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            OpcodeClass::Stack => "stack",
            OpcodeClass::Arith => "arith",
            OpcodeClass::Compare => "compare",
            OpcodeClass::Control => "control",
            OpcodeClass::Alloc => "alloc",
            OpcodeClass::Field => "field",
            OpcodeClass::Array => "array",
            OpcodeClass::Static => "static",
            OpcodeClass::Call => "call",
            OpcodeClass::Ret => "ret",
            OpcodeClass::Monitor => "monitor",
            OpcodeClass::Throw => "throw",
            OpcodeClass::Io => "io",
        }
    }
}

impl Insn {
    /// The instruction's [`OpcodeClass`] for dispatch accounting.
    pub fn class(&self) -> OpcodeClass {
        match self {
            Insn::PushInt(_)
            | Insn::PushNull
            | Insn::Dup
            | Insn::Pop
            | Insn::Swap
            | Insn::Load(_)
            | Insn::Store(_)
            | Insn::Nop => OpcodeClass::Stack,
            Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Rem | Insn::Neg => {
                OpcodeClass::Arith
            }
            Insn::CmpEq
            | Insn::CmpNe
            | Insn::CmpLt
            | Insn::CmpLe
            | Insn::CmpGt
            | Insn::CmpGe
            | Insn::InstanceOf(_) => OpcodeClass::Compare,
            Insn::Jump(_) | Insn::Branch(_) | Insn::BranchIfNull(_) | Insn::BranchIfNotNull(_) => {
                OpcodeClass::Control
            }
            Insn::New(_) | Insn::NewArray => OpcodeClass::Alloc,
            Insn::GetField(_) | Insn::PutField(_) => OpcodeClass::Field,
            Insn::ALoad | Insn::AStore | Insn::ArrayLen => OpcodeClass::Array,
            Insn::GetStatic(_) | Insn::PutStatic(_) => OpcodeClass::Static,
            Insn::Call(_) | Insn::CallVirtual { .. } => OpcodeClass::Call,
            Insn::Ret | Insn::RetVal => OpcodeClass::Ret,
            Insn::MonitorEnter | Insn::MonitorExit => OpcodeClass::Monitor,
            Insn::Throw => OpcodeClass::Throw,
            Insn::Print => OpcodeClass::Io,
        }
    }

    /// True if executing this instruction *may* record a heap use of some
    /// object (one of the five use events of the paper: getfield, putfield,
    /// method invocation on a receiver, monitor enter/exit, handle deref).
    pub fn is_use(&self) -> bool {
        matches!(
            self,
            Insn::GetField(_)
                | Insn::PutField(_)
                | Insn::ALoad
                | Insn::AStore
                | Insn::ArrayLen
                | Insn::CallVirtual { .. }
                | Insn::MonitorEnter
                | Insn::MonitorExit
        )
    }

    /// True if this instruction allocates a heap object.
    pub fn is_alloc(&self) -> bool {
        matches!(self, Insn::New(_) | Insn::NewArray)
    }

    /// The jump target, if this is a control-transfer instruction.
    pub fn jump_target(&self) -> Option<u32> {
        match self {
            Insn::Jump(t) | Insn::Branch(t) | Insn::BranchIfNull(t) | Insn::BranchIfNotNull(t) => {
                Some(*t)
            }
            _ => None,
        }
    }

    /// Returns a copy with the jump target replaced.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a control transfer; callers must
    /// check [`Insn::jump_target`] first.
    pub fn with_jump_target(&self, target: u32) -> Insn {
        match self {
            Insn::Jump(_) => Insn::Jump(target),
            Insn::Branch(_) => Insn::Branch(target),
            Insn::BranchIfNull(_) => Insn::BranchIfNull(target),
            Insn::BranchIfNotNull(_) => Insn::BranchIfNotNull(target),
            other => panic!("{other:?} has no jump target"),
        }
    }

    /// True if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Insn::Jump(_) | Insn::Ret | Insn::RetVal | Insn::Throw)
    }

    /// The instruction's mnemonic, as used by the assembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Insn::PushInt(_) => "push",
            Insn::PushNull => "pushnull",
            Insn::Dup => "dup",
            Insn::Pop => "pop",
            Insn::Swap => "swap",
            Insn::Load(_) => "load",
            Insn::Store(_) => "store",
            Insn::Add => "add",
            Insn::Sub => "sub",
            Insn::Mul => "mul",
            Insn::Div => "div",
            Insn::Rem => "rem",
            Insn::Neg => "neg",
            Insn::CmpEq => "cmpeq",
            Insn::CmpNe => "cmpne",
            Insn::CmpLt => "cmplt",
            Insn::CmpLe => "cmple",
            Insn::CmpGt => "cmpgt",
            Insn::CmpGe => "cmpge",
            Insn::Jump(_) => "jump",
            Insn::Branch(_) => "branch",
            Insn::BranchIfNull(_) => "brnull",
            Insn::BranchIfNotNull(_) => "brnonnull",
            Insn::New(_) => "new",
            Insn::GetField(_) => "getfield",
            Insn::PutField(_) => "putfield",
            Insn::NewArray => "newarray",
            Insn::ALoad => "aload",
            Insn::AStore => "astore",
            Insn::ArrayLen => "arraylen",
            Insn::InstanceOf(_) => "instanceof",
            Insn::GetStatic(_) => "getstatic",
            Insn::PutStatic(_) => "putstatic",
            Insn::Call(_) => "call",
            Insn::CallVirtual { .. } => "callvirtual",
            Insn::Ret => "ret",
            Insn::RetVal => "retval",
            Insn::MonitorEnter => "monitorenter",
            Insn::MonitorExit => "monitorexit",
            Insn::Throw => "throw",
            Insn::Print => "print",
            Insn::Nop => "nop",
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::PushInt(i) => write!(f, "push {i}"),
            Insn::Load(n) => write!(f, "load {n}"),
            Insn::Store(n) => write!(f, "store {n}"),
            Insn::Jump(t) => write!(f, "jump {t}"),
            Insn::Branch(t) => write!(f, "branch {t}"),
            Insn::BranchIfNull(t) => write!(f, "brnull {t}"),
            Insn::BranchIfNotNull(t) => write!(f, "brnonnull {t}"),
            Insn::New(c) => write!(f, "new {c}"),
            Insn::GetField(n) => write!(f, "getfield {n}"),
            Insn::PutField(n) => write!(f, "putfield {n}"),
            Insn::InstanceOf(c) => write!(f, "instanceof {c}"),
            Insn::GetStatic(s) => write!(f, "getstatic {s}"),
            Insn::PutStatic(s) => write!(f, "putstatic {s}"),
            Insn::Call(m) => write!(f, "call {m}"),
            Insn::CallVirtual { vslot, argc } => write!(f, "callvirtual {vslot} argc={argc}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_classification_matches_paper_events() {
        assert!(Insn::GetField(0).is_use());
        assert!(Insn::PutField(0).is_use());
        assert!(Insn::CallVirtual {
            vslot: VSlot(0),
            argc: 0
        }
        .is_use());
        assert!(Insn::MonitorEnter.is_use());
        assert!(Insn::MonitorExit.is_use());
        assert!(Insn::ALoad.is_use());
        assert!(Insn::AStore.is_use());
        assert!(Insn::ArrayLen.is_use());
        // Allocation itself is not a use; neither is a direct static call.
        assert!(!Insn::New(ClassId(0)).is_use());
        assert!(!Insn::Call(MethodId(0)).is_use());
        assert!(!Insn::InstanceOf(ClassId(0)).is_use());
    }

    #[test]
    fn opcode_class_names_and_order_agree() {
        for (i, class) in OpcodeClass::ALL.iter().enumerate() {
            assert_eq!(*class as usize, i, "ALL must follow discriminant order");
        }
        let names: std::collections::HashSet<_> =
            OpcodeClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), OpcodeClass::COUNT, "names must be distinct");
        assert!((Insn::New(ClassId(0)).class()) == OpcodeClass::Alloc);
        assert_eq!(Insn::Nop.class(), OpcodeClass::Stack);
        assert_eq!(Insn::CmpLt.class(), OpcodeClass::Compare);
        assert_eq!(Insn::Print.class(), OpcodeClass::Io);
    }

    #[test]
    fn jump_target_rewriting() {
        let j = Insn::Branch(10);
        assert_eq!(j.jump_target(), Some(10));
        assert_eq!(j.with_jump_target(20), Insn::Branch(20));
        assert_eq!(Insn::Add.jump_target(), None);
    }

    #[test]
    #[should_panic(expected = "has no jump target")]
    fn with_jump_target_panics_on_non_jump() {
        let _ = Insn::Add.with_jump_target(0);
    }

    #[test]
    fn terminators() {
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Jump(0).is_terminator());
        assert!(Insn::Throw.is_terminator());
        assert!(!Insn::Branch(0).is_terminator());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Insn::PushInt(5).to_string(), "push 5");
        assert_eq!(Insn::Nop.to_string(), "nop");
        assert_eq!(
            Insn::CallVirtual {
                vslot: VSlot(3),
                argc: 2
            }
            .to_string(),
            "callvirtual VSlot#3 argc=2"
        );
    }
}
