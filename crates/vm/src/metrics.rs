//! Registry-backed VM metrics.
//!
//! The interpreter's hot path never touches these directly: instruction
//! dispatch is tallied in a plain per-VM array and flushed here once per
//! run (see [`crate::interp::Vm::attach_metrics`]). The handles below are
//! only hit on cold events — GC pauses and deep-GC samples.

use heapdrag_obs::{Counter, Histogram, Registry};

use crate::insn::OpcodeClass;

/// Metric handles a [`crate::interp::Vm`] reports into when attached to a
/// [`Registry`].
#[derive(Debug, Clone)]
pub struct VmMetrics {
    registry: Registry,
    dispatch: [Counter; OpcodeClass::COUNT],
    deep_gcs: Counter,
    full_pause_us: Histogram,
    minor_pause_us: Histogram,
}

impl VmMetrics {
    /// Registers (or re-attaches to) the VM metric family in `registry`:
    /// `vm_dispatch_total{class="..."}` per [`OpcodeClass`],
    /// `vm_deep_gc_total`, and the GC pause histograms
    /// `vm_gc_full_pause_us` / `vm_gc_minor_pause_us`.
    pub fn register(registry: &Registry) -> Self {
        VmMetrics {
            registry: registry.clone(),
            dispatch: std::array::from_fn(|i| {
                let class = OpcodeClass::ALL[i].name();
                registry.counter(&format!("vm_dispatch_total{{class=\"{class}\"}}"))
            }),
            deep_gcs: registry.counter("vm_deep_gc_total"),
            full_pause_us: registry.histogram("vm_gc_full_pause_us"),
            minor_pause_us: registry.histogram("vm_gc_minor_pause_us"),
        }
    }

    /// The registry these metrics live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records the pause of one full collection.
    pub(crate) fn on_full_gc(&self, pause: std::time::Duration) {
        self.full_pause_us.observe_duration(pause);
    }

    /// Records the pause of one minor collection.
    pub(crate) fn on_minor_gc(&self, pause: std::time::Duration) {
        self.minor_pause_us.observe_duration(pause);
    }

    /// Records one completed deep-GC cycle.
    pub(crate) fn on_deep_gc(&self) {
        self.deep_gcs.inc();
    }

    /// Adds a run's per-class dispatch tallies to the registry counters.
    pub(crate) fn flush_dispatch(&self, counts: &[u64; OpcodeClass::COUNT]) {
        for (counter, &n) in self.dispatch.iter().zip(counts) {
            if n != 0 {
                counter.add(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_one_series_per_opcode_class() {
        let registry = Registry::new();
        let metrics = VmMetrics::register(&registry);
        metrics.flush_dispatch(&std::array::from_fn(|i| i as u64));
        let snap = registry.snapshot();
        let dispatch: Vec<_> = snap
            .counters
            .keys()
            .filter(|k| k.starts_with("vm_dispatch_total{"))
            .collect();
        assert_eq!(dispatch.len(), OpcodeClass::COUNT);
        // flush skips zero tallies, but the series exists from registration.
        assert_eq!(snap.counters["vm_dispatch_total{class=\"stack\"}"], 0);
        assert_eq!(
            snap.counters[&format!(
                "vm_dispatch_total{{class=\"{}\"}}",
                OpcodeClass::Io.name()
            )],
            OpcodeClass::Io as u64
        );
    }

    #[test]
    fn gc_events_feed_the_histograms() {
        let registry = Registry::new();
        let metrics = VmMetrics::register(&registry);
        metrics.on_full_gc(std::time::Duration::from_micros(7));
        metrics.on_minor_gc(std::time::Duration::from_micros(3));
        metrics.on_deep_gc();
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["vm_gc_full_pause_us"].sum, 7);
        assert_eq!(snap.histograms["vm_gc_minor_pause_us"].sum, 3);
        assert_eq!(snap.counters["vm_deep_gc_total"], 1);
    }
}
