//! The heap-event interface through which profilers observe a run.
//!
//! This is the Rust analogue of the paper's JVM instrumentation: the VM
//! reports object creation, each of the five kinds of object *use*, object
//! reclamation, deep-GC sample points, sampled retaining paths, and program
//! exit. A profiler implements [`HeapObserver`] and is attached via
//! [`Vm::run_observed`](crate::interp::Vm::run_observed).
//!
//! Every event is a `#[non_exhaustive]` struct built through a constructor
//! (`new` plus `with_*` extenders), so future event fields — like the
//! retain samples added after the first release of this interface — extend
//! the API without breaking existing `HeapObserver` implementations or
//! event producers outside this crate.

use crate::ids::{ChainId, ClassId, ObjectId};
use crate::retain::RetainPath;

/// Which of the paper's five events constituted a use of the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseKind {
    /// Reading a field (`getfield`).
    GetField,
    /// Writing a field (`putfield`).
    PutField,
    /// Invoking a method on the object (`invokevirtual`).
    Invoke,
    /// Entering its monitor (`monitorenter`).
    MonitorEnter,
    /// Exiting its monitor (`monitorexit`).
    MonitorExit,
    /// Dereferencing its handle: array element access / array length, as
    /// native code would do through the handle table.
    HandleDeref,
}

impl UseKind {
    /// All use kinds, in declaration order.
    pub const ALL: [UseKind; 6] = [
        UseKind::GetField,
        UseKind::PutField,
        UseKind::Invoke,
        UseKind::MonitorEnter,
        UseKind::MonitorExit,
        UseKind::HandleDeref,
    ];

    /// A lowercase stable name, used in metric labels and log rendering.
    pub fn name(&self) -> &'static str {
        match self {
            UseKind::GetField => "getfield",
            UseKind::PutField => "putfield",
            UseKind::Invoke => "invoke",
            UseKind::MonitorEnter => "monitorenter",
            UseKind::MonitorExit => "monitorexit",
            UseKind::HandleDeref => "handlederef",
        }
    }
}

/// An object was allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AllocEvent {
    /// Run-unique object id.
    pub object: ObjectId,
    /// Class of the object ([`Program::builtins`](crate::program::Program)
    /// `.array` for arrays).
    pub class: ClassId,
    /// Object size in bytes: header plus fields/elements, 8-byte aligned.
    /// Excludes the handle and the profiling trailer, per the paper.
    pub size: u64,
    /// Allocation-clock time (bytes allocated so far, including this one).
    pub time: u64,
    /// Nested allocation site.
    pub site: ChainId,
}

impl AllocEvent {
    /// Builds an allocation event.
    pub fn new(object: ObjectId, class: ClassId, size: u64, time: u64, site: ChainId) -> Self {
        AllocEvent {
            object,
            class,
            size,
            time,
            site,
        }
    }
}

/// An object was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct UseEvent {
    /// The object used.
    pub object: ObjectId,
    /// What kind of use.
    pub kind: UseKind,
    /// Allocation-clock time of the use.
    pub time: u64,
    /// Nested last-use site candidate.
    pub site: ChainId,
}

impl UseEvent {
    /// Builds a use event.
    pub fn new(object: ObjectId, kind: UseKind, time: u64, site: ChainId) -> Self {
        UseEvent {
            object,
            kind,
            time,
            site,
        }
    }
}

/// An object was reclaimed by GC (or survived to program exit, in which case
/// the VM reports it with the end-of-run time after the final deep GC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct FreeEvent {
    /// The object reclaimed.
    pub object: ObjectId,
    /// Allocation-clock time of reclamation.
    pub time: u64,
    /// True if the object was still reachable at program exit and is being
    /// reported as-if collected then.
    pub at_exit: bool,
}

impl FreeEvent {
    /// Builds a free event (GC reclamation; `at_exit` defaults to false).
    pub fn new(object: ObjectId, time: u64) -> Self {
        FreeEvent {
            object,
            time,
            at_exit: false,
        }
    }

    /// Marks the event as an at-exit survivor report.
    #[must_use]
    pub fn with_at_exit(mut self, at_exit: bool) -> Self {
        self.at_exit = at_exit;
        self
    }
}

/// A deep-GC cycle finished; a sample point for heap-size curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct GcEvent {
    /// Allocation-clock time of the sample.
    pub time: u64,
    /// Bytes of objects reachable after the cycle (excluding pinned objects).
    pub reachable_bytes: u64,
    /// Number of reachable objects (excluding pinned objects).
    pub reachable_count: u64,
}

impl GcEvent {
    /// Builds a deep-GC sample with an empty census.
    pub fn new(time: u64) -> Self {
        GcEvent {
            time,
            reachable_bytes: 0,
            reachable_count: 0,
        }
    }

    /// Sets the reachable-heap census.
    #[must_use]
    pub fn with_reachable(mut self, bytes: u64, count: u64) -> Self {
        self.reachable_bytes = bytes;
        self.reachable_count = count;
        self
    }
}

/// A retaining path was sampled for a surviving object during a deep-GC
/// mark (see [`crate::retain`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RetainEvent {
    /// The sampled object (marked, i.e. it survived the collection).
    pub object: ObjectId,
    /// Object size in bytes — the sample's weight.
    pub size: u64,
    /// Allocation-clock time of the collection.
    pub time: u64,
    /// The bounded retaining path, already rendered.
    pub path: RetainPath,
}

impl RetainEvent {
    /// Builds a retain-sample event.
    pub fn new(object: ObjectId, size: u64, time: u64, path: RetainPath) -> Self {
        RetainEvent {
            object,
            size,
            time,
            path,
        }
    }
}

/// How an observer wants [`HeapObserver::on_use`] events delivered.
///
/// Only the *fast* interpreter honors this hint; the reference interpreter
/// always delivers per access, which is what makes it the oracle of the
/// differential harness. Allocation, free, deep-GC, and exit events are
/// always delivered in full regardless of the mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UseDelivery {
    /// Deliver every use event as it happens (the reference behavior, and
    /// the default).
    #[default]
    PerAccess,
    /// Do not deliver use events at all. For observers that ignore
    /// `on_use`, this makes the fast interpreter's use path branch-free.
    /// Under this mode use-site chains are not interned either, so the
    /// VM's site table may contain fewer entries than a per-access run.
    Skip,
    /// Deliver at most one use event per object per GC window: the *last*
    /// use observed since the previous flush, delivered at GC safepoints
    /// (any collection) and at program exit, with its original timestamp.
    /// Exactly equivalent to per-access delivery for observers whose
    /// `on_use` is last-write-wins per object (like the drag profiler's
    /// trailer update).
    Coalesced,
}

/// Whether an observer wants [`HeapObserver::on_retain_sample`] events.
///
/// Like [`UseDelivery`], this is a standing hint the VM reads before a
/// collection: under [`RetainDelivery::Skip`] (the default, and
/// [`NullObserver`]'s choice) the mark loop runs without any edge
/// tracking, so observers that ignore retain samples pay nothing.
/// Sampling additionally requires a [`RetainConfig`](crate::retain::RetainConfig)
/// on the VM; the hint alone does not enable it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetainDelivery {
    /// Do not sample retaining paths (the default).
    #[default]
    Skip,
    /// Sample retaining paths at the configured rate during deep-GC marks.
    Sample,
}

/// Receiver of heap events during a run.
///
/// All methods have empty default bodies so observers implement only what
/// they need. The VM never reports events for *pinned* objects (the stand-in
/// for `Class` objects and the special objects reachable from them, which
/// the paper excludes).
pub trait HeapObserver {
    /// An object was allocated.
    fn on_alloc(&mut self, event: AllocEvent) {
        let _ = event;
    }

    /// An object was used.
    fn on_use(&mut self, event: UseEvent) {
        let _ = event;
    }

    /// An object was reclaimed.
    fn on_free(&mut self, event: FreeEvent) {
        let _ = event;
    }

    /// A deep-GC sample point.
    fn on_deep_gc(&mut self, event: GcEvent) {
        let _ = event;
    }

    /// A retaining path was sampled during a deep-GC mark. Delivered only
    /// when [`HeapObserver::retain_delivery`] opts in *and* the VM was
    /// configured with a sampling rate.
    fn on_retain_sample(&mut self, event: RetainEvent) {
        let _ = event;
    }

    /// The program exited normally; `time` is the final allocation clock.
    /// Survivor objects have already been reported through
    /// [`HeapObserver::on_free`] with `at_exit = true`.
    fn on_exit(&mut self, time: u64) {
        let _ = time;
    }

    /// How this observer wants use events delivered (a hint the fast
    /// interpreter uses to cheapen its hot path; see [`UseDelivery`]).
    fn use_delivery(&self) -> UseDelivery {
        UseDelivery::PerAccess
    }

    /// Whether this observer wants retain samples (see [`RetainDelivery`]).
    fn retain_delivery(&self) -> RetainDelivery {
        RetainDelivery::Skip
    }
}

/// An observer that ignores everything; the default when none is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl HeapObserver for NullObserver {
    fn use_delivery(&self) -> UseDelivery {
        UseDelivery::Skip
    }
}

/// An observer that counts events; handy in tests and smoke checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CountingObserver {
    /// Number of allocation events seen.
    pub allocs: u64,
    /// Number of use events seen.
    pub uses: u64,
    /// Number of free events seen (including at-exit ones).
    pub frees: u64,
    /// Number of frees reported at exit.
    pub exit_frees: u64,
    /// Number of deep-GC samples seen.
    pub gcs: u64,
    /// Number of retain samples seen.
    pub retains: u64,
    /// Whether `on_exit` fired.
    pub exited: bool,
}

impl CountingObserver {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HeapObserver for CountingObserver {
    fn on_alloc(&mut self, _: AllocEvent) {
        self.allocs += 1;
    }
    fn on_use(&mut self, _: UseEvent) {
        self.uses += 1;
    }
    fn on_free(&mut self, event: FreeEvent) {
        self.frees += 1;
        if event.at_exit {
            self.exit_frees += 1;
        }
    }
    fn on_deep_gc(&mut self, _: GcEvent) {
        self.gcs += 1;
    }
    fn on_retain_sample(&mut self, _: RetainEvent) {
        self.retains += 1;
    }
    fn on_exit(&mut self, _: u64) {
        self.exited = true;
    }
    fn retain_delivery(&self) -> RetainDelivery {
        RetainDelivery::Sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_ignores_everything() {
        let mut o = NullObserver;
        o.on_exit(7);
        o.on_deep_gc(GcEvent::new(0));
        assert_eq!(o.retain_delivery(), RetainDelivery::Skip);
    }

    #[test]
    fn counting_observer_counts() {
        let mut o = CountingObserver::new();
        o.on_alloc(AllocEvent::new(ObjectId(1), ClassId(0), 16, 16, ChainId(0)));
        o.on_free(FreeEvent::new(ObjectId(1), 32).with_at_exit(true));
        o.on_retain_sample(RetainEvent::new(
            ObjectId(1),
            16,
            24,
            RetainPath::new("static X.y", 0, false),
        ));
        o.on_exit(32);
        assert_eq!(o.allocs, 1);
        assert_eq!(o.frees, 1);
        assert_eq!(o.exit_frees, 1);
        assert_eq!(o.retains, 1);
        assert!(o.exited);
    }

    #[test]
    fn event_builders_populate_fields() {
        let gc = GcEvent::new(100).with_reachable(2048, 3);
        assert_eq!((gc.time, gc.reachable_bytes, gc.reachable_count), (100, 2048, 3));
        let free = FreeEvent::new(ObjectId(9), 7);
        assert!(!free.at_exit);
        let alloc = AllocEvent::new(ObjectId(1), ClassId(2), 24, 48, ChainId(3));
        assert_eq!(alloc.size, 24);
        let use_ = UseEvent::new(ObjectId(1), UseKind::Invoke, 50, ChainId(3));
        assert_eq!(use_.kind, UseKind::Invoke);
    }

    #[test]
    fn all_use_kinds_enumerated() {
        assert_eq!(UseKind::ALL.len(), 6);
    }
}
