//! The heap-event interface through which profilers observe a run.
//!
//! This is the Rust analogue of the paper's JVM instrumentation: the VM
//! reports object creation, each of the five kinds of object *use*, object
//! reclamation, deep-GC sample points, and program exit. A profiler
//! implements [`HeapObserver`] and is attached via
//! [`Vm::run_observed`](crate::interp::Vm::run_observed).

use crate::ids::{ChainId, ClassId, ObjectId};

/// Which of the paper's five events constituted a use of the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseKind {
    /// Reading a field (`getfield`).
    GetField,
    /// Writing a field (`putfield`).
    PutField,
    /// Invoking a method on the object (`invokevirtual`).
    Invoke,
    /// Entering its monitor (`monitorenter`).
    MonitorEnter,
    /// Exiting its monitor (`monitorexit`).
    MonitorExit,
    /// Dereferencing its handle: array element access / array length, as
    /// native code would do through the handle table.
    HandleDeref,
}

impl UseKind {
    /// All use kinds, in declaration order.
    pub const ALL: [UseKind; 6] = [
        UseKind::GetField,
        UseKind::PutField,
        UseKind::Invoke,
        UseKind::MonitorEnter,
        UseKind::MonitorExit,
        UseKind::HandleDeref,
    ];

    /// A lowercase stable name, used in metric labels and log rendering.
    pub fn name(&self) -> &'static str {
        match self {
            UseKind::GetField => "getfield",
            UseKind::PutField => "putfield",
            UseKind::Invoke => "invoke",
            UseKind::MonitorEnter => "monitorenter",
            UseKind::MonitorExit => "monitorexit",
            UseKind::HandleDeref => "handlederef",
        }
    }
}

/// An object was allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocEvent {
    /// Run-unique object id.
    pub object: ObjectId,
    /// Class of the object ([`Program::builtins`](crate::program::Program)
    /// `.array` for arrays).
    pub class: ClassId,
    /// Object size in bytes: header plus fields/elements, 8-byte aligned.
    /// Excludes the handle and the profiling trailer, per the paper.
    pub size: u64,
    /// Allocation-clock time (bytes allocated so far, including this one).
    pub time: u64,
    /// Nested allocation site.
    pub site: ChainId,
}

/// An object was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseEvent {
    /// The object used.
    pub object: ObjectId,
    /// What kind of use.
    pub kind: UseKind,
    /// Allocation-clock time of the use.
    pub time: u64,
    /// Nested last-use site candidate.
    pub site: ChainId,
}

/// An object was reclaimed by GC (or survived to program exit, in which case
/// the VM reports it with the end-of-run time after the final deep GC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeEvent {
    /// The object reclaimed.
    pub object: ObjectId,
    /// Allocation-clock time of reclamation.
    pub time: u64,
    /// True if the object was still reachable at program exit and is being
    /// reported as-if collected then.
    pub at_exit: bool,
}

/// A deep-GC cycle finished; a sample point for heap-size curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcEvent {
    /// Allocation-clock time of the sample.
    pub time: u64,
    /// Bytes of objects reachable after the cycle (excluding pinned objects).
    pub reachable_bytes: u64,
    /// Number of reachable objects (excluding pinned objects).
    pub reachable_count: u64,
}

/// How an observer wants [`HeapObserver::on_use`] events delivered.
///
/// Only the *fast* interpreter honors this hint; the reference interpreter
/// always delivers per access, which is what makes it the oracle of the
/// differential harness. Allocation, free, deep-GC, and exit events are
/// always delivered in full regardless of the mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UseDelivery {
    /// Deliver every use event as it happens (the reference behavior, and
    /// the default).
    #[default]
    PerAccess,
    /// Do not deliver use events at all. For observers that ignore
    /// `on_use`, this makes the fast interpreter's use path branch-free.
    /// Under this mode use-site chains are not interned either, so the
    /// VM's site table may contain fewer entries than a per-access run.
    Skip,
    /// Deliver at most one use event per object per GC window: the *last*
    /// use observed since the previous flush, delivered at GC safepoints
    /// (any collection) and at program exit, with its original timestamp.
    /// Exactly equivalent to per-access delivery for observers whose
    /// `on_use` is last-write-wins per object (like the drag profiler's
    /// trailer update).
    Coalesced,
}

/// Receiver of heap events during a run.
///
/// All methods have empty default bodies so observers implement only what
/// they need. The VM never reports events for *pinned* objects (the stand-in
/// for `Class` objects and the special objects reachable from them, which
/// the paper excludes).
pub trait HeapObserver {
    /// An object was allocated.
    fn on_alloc(&mut self, event: AllocEvent) {
        let _ = event;
    }

    /// An object was used.
    fn on_use(&mut self, event: UseEvent) {
        let _ = event;
    }

    /// An object was reclaimed.
    fn on_free(&mut self, event: FreeEvent) {
        let _ = event;
    }

    /// A deep-GC sample point.
    fn on_deep_gc(&mut self, event: GcEvent) {
        let _ = event;
    }

    /// The program exited normally; `time` is the final allocation clock.
    /// Survivor objects have already been reported through
    /// [`HeapObserver::on_free`] with `at_exit = true`.
    fn on_exit(&mut self, time: u64) {
        let _ = time;
    }

    /// How this observer wants use events delivered (a hint the fast
    /// interpreter uses to cheapen its hot path; see [`UseDelivery`]).
    fn use_delivery(&self) -> UseDelivery {
        UseDelivery::PerAccess
    }
}

/// An observer that ignores everything; the default when none is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl HeapObserver for NullObserver {
    fn use_delivery(&self) -> UseDelivery {
        UseDelivery::Skip
    }
}

/// An observer that counts events; handy in tests and smoke checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// Number of allocation events seen.
    pub allocs: u64,
    /// Number of use events seen.
    pub uses: u64,
    /// Number of free events seen (including at-exit ones).
    pub frees: u64,
    /// Number of frees reported at exit.
    pub exit_frees: u64,
    /// Number of deep-GC samples seen.
    pub gcs: u64,
    /// Whether `on_exit` fired.
    pub exited: bool,
}

impl HeapObserver for CountingObserver {
    fn on_alloc(&mut self, _: AllocEvent) {
        self.allocs += 1;
    }
    fn on_use(&mut self, _: UseEvent) {
        self.uses += 1;
    }
    fn on_free(&mut self, event: FreeEvent) {
        self.frees += 1;
        if event.at_exit {
            self.exit_frees += 1;
        }
    }
    fn on_deep_gc(&mut self, _: GcEvent) {
        self.gcs += 1;
    }
    fn on_exit(&mut self, _: u64) {
        self.exited = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_ignores_everything() {
        let mut o = NullObserver;
        o.on_exit(7);
        o.on_deep_gc(GcEvent {
            time: 0,
            reachable_bytes: 0,
            reachable_count: 0,
        });
    }

    #[test]
    fn counting_observer_counts() {
        let mut o = CountingObserver::default();
        o.on_alloc(AllocEvent {
            object: ObjectId(1),
            class: ClassId(0),
            size: 16,
            time: 16,
            site: ChainId(0),
        });
        o.on_free(FreeEvent {
            object: ObjectId(1),
            time: 32,
            at_exit: true,
        });
        o.on_exit(32);
        assert_eq!(o.allocs, 1);
        assert_eq!(o.frees, 1);
        assert_eq!(o.exit_frees, 1);
        assert!(o.exited);
    }

    #[test]
    fn all_use_kinds_enumerated() {
        assert_eq!(UseKind::ALL.len(), 6);
    }
}
