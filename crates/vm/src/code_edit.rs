//! In-place bytecode surgery: inserting and replacing instructions while
//! keeping jump targets, exception-handler ranges, and site labels
//! consistent.
//!
//! The program transformations of the `heapdrag-transform` crate are
//! expressed with these primitives.

use crate::class::Method;
use crate::insn::Insn;

/// Inserts `insns` at `at`, shifting the instructions previously at
/// `at..` forward.
///
/// Jump targets strictly beyond `at` are adjusted; a jump *to* `at` now
/// lands on the first inserted instruction (so guards inserted before an
/// instruction dominate every path into it). Handler boundaries follow the
/// same rule; site labels move with the instruction they annotate.
///
/// # Panics
///
/// Panics if `at` is beyond the end of the method.
pub fn insert_at(method: &mut Method, at: u32, insns: &[Insn]) {
    let len = method.code.len() as u32;
    assert!(at <= len, "insertion point {at} beyond method end {len}");
    let k = insns.len() as u32;
    if k == 0 {
        return;
    }
    let shift = |t: u32| if t > at { t + k } else { t };
    for insn in method.code.iter_mut() {
        if let Some(t) = insn.jump_target() {
            *insn = insn.with_jump_target(shift(t));
        }
    }
    for h in method.handlers.iter_mut() {
        h.start_pc = shift(h.start_pc);
        h.end_pc = shift(h.end_pc);
        h.handler_pc = shift(h.handler_pc);
    }
    let labels = std::mem::take(&mut method.site_labels);
    method.site_labels = labels
        .into_iter()
        .map(|(pc, l)| (if pc >= at { pc + k } else { pc }, l))
        .collect();
    method.code.splice(at as usize..at as usize, insns.iter().copied());
    // Inserted jumps carry absolute targets computed against the *new*
    // layout by the caller; nothing further to fix here.
}

/// Replaces the instruction at `pc` with `insn` (same length, so no target
/// fixups are needed).
///
/// # Panics
///
/// Panics if `pc` is out of range.
pub fn replace_at(method: &mut Method, pc: u32, insn: Insn) {
    let slot = method
        .code
        .get_mut(pc as usize)
        .unwrap_or_else(|| panic!("pc {pc} out of range"));
    *slot = insn;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn method_with(code: Vec<Insn>) -> Method {
        let mut m = Method::new("f", 0, 4);
        m.code = code;
        m
    }

    #[test]
    fn insert_shifts_later_targets() {
        // 0: jump 3 ; 1: nop ; 2: nop ; 3: ret
        let mut m = method_with(vec![Insn::Jump(3), Insn::Nop, Insn::Nop, Insn::Ret]);
        insert_at(&mut m, 2, &[Insn::PushNull, Insn::Store(0)]);
        assert_eq!(m.code.len(), 6);
        assert_eq!(m.code[0], Insn::Jump(5), "target after point shifts");
        assert_eq!(m.code[2], Insn::PushNull);
        assert_eq!(m.code[5], Insn::Ret);
    }

    #[test]
    fn jump_to_insertion_point_executes_inserted_code() {
        // 0: jump 1 ; 1: ret  — insert guard at 1
        let mut m = method_with(vec![Insn::Jump(1), Insn::Ret]);
        insert_at(&mut m, 1, &[Insn::Nop]);
        assert_eq!(m.code[0], Insn::Jump(1), "jump still lands at pc 1");
        assert_eq!(m.code[1], Insn::Nop, "which is now the inserted code");
        assert_eq!(m.code[2], Insn::Ret);
    }

    #[test]
    fn handlers_and_labels_shift() {
        let mut m = method_with(vec![Insn::Nop, Insn::Nop, Insn::Ret]);
        m.handlers.push(crate::class::Handler {
            start_pc: 0,
            end_pc: 2,
            handler_pc: 2,
            catch: None,
        });
        m.site_labels.insert(1, "site".into());
        insert_at(&mut m, 1, &[Insn::Nop, Insn::Nop]);
        let h = m.handlers[0];
        assert_eq!((h.start_pc, h.end_pc, h.handler_pc), (0, 4, 4));
        assert_eq!(m.site_label(3), Some("site"), "label follows its insn");
        assert_eq!(m.site_label(1), None);
    }

    #[test]
    fn insert_at_end_appends() {
        let mut m = method_with(vec![Insn::Ret]);
        insert_at(&mut m, 1, &[Insn::Nop]);
        assert_eq!(m.code, vec![Insn::Ret, Insn::Nop]);
    }

    #[test]
    fn replace_swaps_one_instruction() {
        let mut m = method_with(vec![Insn::Nop, Insn::Ret]);
        replace_at(&mut m, 0, Insn::PushNull);
        assert_eq!(m.code[0], Insn::PushNull);
    }

    #[test]
    #[should_panic(expected = "beyond method end")]
    fn insert_past_end_panics() {
        let mut m = method_with(vec![Insn::Ret]);
        insert_at(&mut m, 5, &[Insn::Nop]);
    }
}
