//! Runtime values manipulated by the interpreter.

use std::fmt;

use crate::error::VmError;
use crate::heap::Handle;

/// A single operand-stack or local-variable slot.
///
/// The VM is dynamically typed with three kinds of values, mirroring the
/// subset of the JVM the paper's instrumentation cares about: integers,
/// object references ("handles" in Sun JVM 1.2 terminology), and `null`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A reference to a heap object.
    Ref(Handle),
    /// The null reference.
    #[default]
    Null,
}

impl Value {
    /// Returns the integer payload.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeMismatch`] if the value is not an [`Value::Int`].
    pub fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(i) => Ok(i),
            other => Err(VmError::TypeMismatch {
                expected: "int",
                found: other.kind_name(),
            }),
        }
    }

    /// Returns the handle payload, treating `null` as an error.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeMismatch`] for integers. Callers that must
    /// signal `NullPointerException` on `null` should use
    /// [`Value::as_ref_nullable`] and handle `None` themselves.
    pub fn as_handle(self) -> Result<Handle, VmError> {
        match self {
            Value::Ref(h) => Ok(h),
            other => Err(VmError::TypeMismatch {
                expected: "reference",
                found: other.kind_name(),
            }),
        }
    }

    /// Returns `Some(handle)` for references, `None` for `null`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::TypeMismatch`] for integers.
    pub fn as_ref_nullable(self) -> Result<Option<Handle>, VmError> {
        match self {
            Value::Ref(h) => Ok(Some(h)),
            Value::Null => Ok(None),
            other => Err(VmError::TypeMismatch {
                expected: "reference or null",
                found: other.kind_name(),
            }),
        }
    }

    /// True if the value is a (non-null) reference.
    pub fn is_ref(self) -> bool {
        matches!(self, Value::Ref(_))
    }

    /// True if the value is `null`.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short human-readable name for the value's kind.
    pub fn kind_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Ref(_) => "reference",
            Value::Null => "null",
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<Handle> for Value {
    fn from(h: Handle) -> Self {
        Value::Ref(h)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Ref(h) => write!(f, "{h}"),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        assert_eq!(Value::Int(42).as_int().unwrap(), 42);
        assert!(Value::Null.as_int().is_err());
        assert_eq!(Value::from(7), Value::Int(7));
    }

    #[test]
    fn ref_accessors() {
        let h = Handle::from_parts(3, 1);
        assert_eq!(Value::Ref(h).as_handle().unwrap(), h);
        assert_eq!(Value::Ref(h).as_ref_nullable().unwrap(), Some(h));
        assert_eq!(Value::Null.as_ref_nullable().unwrap(), None);
        assert!(Value::Int(0).as_ref_nullable().is_err());
    }

    #[test]
    fn kind_names_and_display() {
        assert_eq!(Value::Null.kind_name(), "null");
        assert_eq!(Value::Int(1).to_string(), "1");
        assert_eq!(Value::Null.to_string(), "null");
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_ref());
    }
}
