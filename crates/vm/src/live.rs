//! In-process live profiling feed: a bounded single-producer /
//! single-consumer ring buffer and the [`LiveProfiler`] observer that
//! forwards heap events through it.
//!
//! The design constraint is the interpreter's fast path: the producer
//! side must **never block and never allocate**. [`RingProducer::push`]
//! is one relaxed load, one acquire load, one slot write, and one
//! release store; when the ring is full the event is *dropped* and a
//! shared overflow counter incremented — the consumer can tell exactly
//! how much it missed, and the analysis layer treats a nonzero drop
//! count as "this run is not byte-reproducible", never as an error.
//!
//! The ring is a power-of-two slot array with free-running head/tail
//! indices (wrapping arithmetic; the mask picks the slot). `push` takes
//! `&mut self` — single-producer is enforced by ownership, not by
//! atomics — and the release store on `tail` publishes the slot write
//! to the consumer's acquire load. Dropping an endpoint never drops
//! in-flight events twice: the ring's own `Drop` reads both indices
//! non-atomically (it has exclusive access by then) and drains the
//! remainder.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::observer::{
    AllocEvent, FreeEvent, GcEvent, HeapObserver, RetainDelivery, RetainEvent, UseDelivery,
    UseEvent,
};

struct RingInner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop (consumer-owned; producer reads with Acquire).
    head: AtomicUsize,
    /// Next slot to push (producer-owned; consumer reads with Acquire).
    tail: AtomicUsize,
}

// SAFETY: slots are only touched by the single producer (between
// reserving a tail index and publishing it) or the single consumer
// (between observing a published tail and advancing head); the
// release/acquire pair on `tail` (and symmetrically `head`) orders the
// slot accesses. `T: Send` is required to move values across threads.
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            // SAFETY: exclusive access (we are in Drop); every index in
            // [head, tail) holds an initialised value not yet popped.
            unsafe { (*self.buf[head & self.mask].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The producer endpoint of a [`ring`]. Not cloneable: one producer.
pub struct RingProducer<T> {
    inner: Arc<RingInner<T>>,
}

/// The consumer endpoint of a [`ring`]. Not cloneable: one consumer.
pub struct RingConsumer<T> {
    inner: Arc<RingInner<T>>,
}

/// Creates a bounded SPSC ring holding at least `capacity` elements
/// (rounded up to the next power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(RingInner {
        buf,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        RingProducer {
            inner: Arc::clone(&inner),
        },
        RingConsumer { inner },
    )
}

impl<T> RingProducer<T> {
    /// Offers one value. Returns `false` — without blocking, waiting, or
    /// touching the value's destination slot — when the ring is full.
    pub fn push(&mut self, value: T) -> bool {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == inner.buf.len() {
            return false;
        }
        // SAFETY: the slot at `tail` is not visible to the consumer
        // until the release store below, and the capacity check above
        // proves the consumer has finished with it.
        unsafe { (*inner.buf[tail & inner.mask].get()).write(value) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }
}

impl<T> RingConsumer<T> {
    /// Takes the oldest value, or `None` when the ring is momentarily
    /// empty (which says nothing about whether the producer is done).
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the acquire load of `tail` observed the producer's
        // release store, so the slot at `head` is initialised; the
        // release store on `head` below hands the slot back.
        let value = unsafe { (*inner.buf[head & inner.mask].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }
}

/// One heap event as it crosses the ring — the observer callbacks,
/// reified. `Exit` carries the final allocation-clock value and is the
/// stream terminator. (Not `Copy`: retain samples carry their rendered
/// path.)
#[derive(Debug, Clone)]
pub enum LiveEvent {
    /// An object was allocated.
    Alloc(AllocEvent),
    /// An object was used (read/written/called through).
    Use(UseEvent),
    /// An object was reclaimed, or reported as a survivor at exit.
    Free(FreeEvent),
    /// A periodic deep-GC census.
    DeepGc(GcEvent),
    /// A retaining path was sampled during a deep-GC mark.
    Retain(RetainEvent),
    /// The VM exited; no further events follow.
    Exit {
        /// Final allocation-clock value (bytes ever allocated).
        time: u64,
    },
}

/// Shared state between a [`LiveProfiler`] and its consumer: the
/// overflow count and the done flag.
#[derive(Debug, Default)]
pub struct LiveShared {
    /// Events the ring had no room for, by kind-independent count.
    pub dropped: AtomicU64,
    /// Set when the producer is finished (VM exit or error); once set,
    /// an empty ring means end-of-stream.
    pub done: AtomicBool,
}

/// A [`HeapObserver`] that forwards every heap event into an SPSC ring
/// for an in-process analysis thread, instead of buffering trailers for
/// a post-mortem log. The fast path never blocks: a full ring drops the
/// event and counts it in [`LiveShared::dropped`].
///
/// Uses batched [`UseDelivery::Coalesced`] delivery — at most one use
/// event per object per GC window, flushed with original timestamps at
/// safepoints — exactly like the file-logging `DragProfiler` in
/// `heapdrag-core`, whose last-write-wins trailer semantics the
/// consumer mirrors.
pub struct LiveProfiler {
    tx: RingProducer<LiveEvent>,
    shared: Arc<LiveShared>,
}

impl LiveProfiler {
    /// Wraps the producer endpoint. The matching consumer should hold a
    /// clone of [`shared`](Self::shared) to observe drops and completion.
    pub fn new(tx: RingProducer<LiveEvent>) -> Self {
        LiveProfiler {
            tx,
            shared: Arc::new(LiveShared::default()),
        }
    }

    /// The drop counter and done flag this profiler publishes to.
    pub fn shared(&self) -> Arc<LiveShared> {
        Arc::clone(&self.shared)
    }

    /// Marks the stream finished without an exit event — the error
    /// path's terminator, so a consumer draining the ring terminates
    /// even when the VM never reached `on_exit`.
    pub fn abort(&self) {
        self.shared.done.store(true, Ordering::Release);
    }

    fn offer(&mut self, event: LiveEvent) {
        if !self.tx.push(event) {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl HeapObserver for LiveProfiler {
    fn on_alloc(&mut self, event: AllocEvent) {
        self.offer(LiveEvent::Alloc(event));
    }

    fn on_use(&mut self, event: UseEvent) {
        self.offer(LiveEvent::Use(event));
    }

    fn on_free(&mut self, event: FreeEvent) {
        self.offer(LiveEvent::Free(event));
    }

    fn on_deep_gc(&mut self, event: GcEvent) {
        self.offer(LiveEvent::DeepGc(event));
    }

    fn on_retain_sample(&mut self, event: RetainEvent) {
        self.offer(LiveEvent::Retain(event));
    }

    fn on_exit(&mut self, time: u64) {
        self.offer(LiveEvent::Exit { time });
        self.shared.done.store(true, Ordering::Release);
    }

    fn use_delivery(&self) -> UseDelivery {
        UseDelivery::Coalesced
    }

    fn retain_delivery(&self) -> RetainDelivery {
        RetainDelivery::Sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_fifo() {
        let (mut tx, mut rx) = ring::<u32>(4);
        assert!(tx.push(1) && tx.push(2) && tx.push(3));
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(4) && tx.push(5));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.pop(), Some(5));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_without_overwriting() {
        let (mut tx, mut rx) = ring::<u32>(2);
        assert_eq!(tx.capacity(), 2);
        assert!(tx.push(10));
        assert!(tx.push(11));
        assert!(!tx.push(12));
        assert_eq!(rx.pop(), Some(10));
        assert!(tx.push(13));
        assert_eq!(rx.pop(), Some(11));
        assert_eq!(rx.pop(), Some(13));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn drop_releases_inflight_values() {
        let payload = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(8);
        for _ in 0..5 {
            assert!(tx.push(Arc::clone(&payload)));
        }
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn profiler_counts_drops_and_signals_done() {
        let (tx, mut rx) = ring::<LiveEvent>(2);
        let mut profiler = LiveProfiler::new(tx);
        let shared = profiler.shared();
        for t in 0..5u64 {
            profiler.on_exit(t); // any event kind; Exit is simplest to forge
        }
        // Capacity 2: three of the five pushes overflowed.
        assert_eq!(shared.dropped.load(Ordering::Relaxed), 3);
        assert!(shared.done.load(Ordering::Acquire));
        assert!(matches!(rx.pop(), Some(LiveEvent::Exit { time: 0 })));
        assert!(matches!(rx.pop(), Some(LiveEvent::Exit { time: 1 })));
        assert!(rx.pop().is_none());
    }
}
