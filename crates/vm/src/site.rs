//! Interning of code locations ("sites") and nested call-chain contexts.
//!
//! The paper reports drag per *nested allocation site* — the call chain
//! leading to the allocation, truncated to a configurable depth — and per
//! *nested last-use site*. The [`SiteTable`] interns both flavours so that
//! every profiling event carries only a compact [`ChainId`].

use std::collections::HashMap;

use crate::ids::{ChainId, MethodId, SiteId};
use crate::program::Program;

/// A single interned code location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// Method containing the site.
    pub method: MethodId,
    /// Program counter within the method.
    pub pc: u32,
}

/// Interning table for sites and nested site chains.
///
/// Cloneable so that a finished run can hand the table to the off-line
/// analyzer together with the object records.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    sites: Vec<SiteInfo>,
    by_loc: HashMap<(MethodId, u32), SiteId>,
    chains: Vec<Vec<SiteId>>,
    by_chain: HashMap<Vec<SiteId>, ChainId>,
}

impl SiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the location `(method, pc)`.
    pub fn intern_site(&mut self, method: MethodId, pc: u32) -> SiteId {
        if let Some(&id) = self.by_loc.get(&(method, pc)) {
            return id;
        }
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(SiteInfo { method, pc });
        self.by_loc.insert((method, pc), id);
        id
    }

    /// Interns a call chain (innermost site first).
    pub fn intern_chain(&mut self, chain: &[SiteId]) -> ChainId {
        if let Some(&id) = self.by_chain.get(chain) {
            return id;
        }
        let id = ChainId(self.chains.len() as u32);
        self.chains.push(chain.to_vec());
        self.by_chain.insert(chain.to_vec(), id);
        id
    }

    /// Looks up an interned site.
    pub fn site(&self, id: SiteId) -> &SiteInfo {
        &self.sites[id.index()]
    }

    /// Looks up an interned chain (innermost site first).
    pub fn chain(&self, id: ChainId) -> &[SiteId] {
        &self.chains[id.index()]
    }

    /// The innermost site of a chain, i.e. the *coarse* (non-nested) site.
    ///
    /// Returns `None` only for the empty chain, which the VM never produces.
    pub fn innermost(&self, id: ChainId) -> Option<SiteId> {
        self.chain(id).first().copied()
    }

    /// Number of interned sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of interned chains.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Formats one site like `Juru.indexDocument@12 "new char[]"`, using the
    /// method's site label when present.
    pub fn format_site(&self, program: &Program, id: SiteId) -> String {
        let info = self.site(id);
        let name = program.method_name(info.method);
        match program.methods[info.method.index()].site_label(info.pc) {
            Some(label) => format!("{name}@{} \"{label}\"", info.pc),
            None => format!("{name}@{}", info.pc),
        }
    }

    /// Formats a chain innermost-first, separated by ` <- `.
    pub fn format_chain(&self, program: &Program, id: ChainId) -> String {
        self.chain(id)
            .iter()
            .map(|s| self.format_site(program, *s))
            .collect::<Vec<_>>()
            .join(" <- ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SiteTable::new();
        let a = t.intern_site(MethodId(0), 3);
        let b = t.intern_site(MethodId(0), 3);
        let c = t.intern_site(MethodId(0), 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.num_sites(), 2);
    }

    #[test]
    fn chain_interning() {
        let mut t = SiteTable::new();
        let s0 = t.intern_site(MethodId(0), 0);
        let s1 = t.intern_site(MethodId(1), 5);
        let c1 = t.intern_chain(&[s0, s1]);
        let c2 = t.intern_chain(&[s0, s1]);
        let c3 = t.intern_chain(&[s1, s0]);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        assert_eq!(t.chain(c1), &[s0, s1]);
        assert_eq!(t.innermost(c1), Some(s0));
        assert_eq!(t.num_chains(), 2);
    }

    #[test]
    fn empty_chain_has_no_innermost() {
        let mut t = SiteTable::new();
        let c = t.intern_chain(&[]);
        assert_eq!(t.innermost(c), None);
    }
}
