//! Small integer identifier newtypes used throughout the VM.
//!
//! Every entity that the interpreter, the garbage collector, or an attached
//! [`HeapObserver`](crate::observer::HeapObserver) refers to is named by a
//! compact id. Ids are indices into tables owned by
//! [`Program`](crate::program::Program) or [`Vm`](crate::interp::Vm); they are
//! cheap to copy and hash, and stable for the lifetime of the owning table.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index value.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a class in [`Program::classes`](crate::program::Program).
    ClassId(u32)
}

id_type! {
    /// Identifies a method in [`Program::methods`](crate::program::Program).
    MethodId(u32)
}

id_type! {
    /// Identifies a static variable slot in a [`Program`](crate::program::Program).
    StaticId(u32)
}

id_type! {
    /// Identifies a virtual-dispatch slot (a "selector") shared by all classes.
    VSlot(u32)
}

id_type! {
    /// Identifies a single code location `(method, pc)` interned in a
    /// [`SiteTable`](crate::site::SiteTable).
    SiteId(u32)
}

id_type! {
    /// Identifies an interned *nested* site: a call chain of [`SiteId`]s,
    /// innermost first.
    ChainId(u32)
}

/// Uniquely identifies a heap object for the whole run.
///
/// Unlike a [`Handle`](crate::heap::Handle), an `ObjectId` is never reused,
/// so observers can safely key profiling state by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Returns the raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let c = ClassId::from(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "ClassId#7");
        assert_eq!(ClassId(7), c);
    }

    #[test]
    fn object_id_is_ordered() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(9).raw(), 9);
    }

    #[test]
    fn ids_hash_distinctly() {
        use std::collections::HashSet;
        let set: HashSet<MethodId> = (0..100).map(MethodId).collect();
        assert_eq!(set.len(), 100);
    }
}
