//! Reachability-based garbage collection: full mark-sweep and an optional
//! generational (nursery) mode.
//!
//! The profiler's *deep GC* (collect → run finalizers → collect) is
//! orchestrated by the interpreter; this module provides the two collection
//! primitives. Full collections also discover objects awaiting
//! finalization: an unreachable, unfinalized object whose class declares a
//! finalizer is resurrected (kept alive together with everything it
//! references) and queued; the interpreter runs the finalizer and the *next*
//! collection can reclaim it.

use std::time::{Duration, Instant};

use crate::heap::{Handle, Heap, Object};
use crate::program::Program;
use crate::retain::{RetainSample, RetainSampler};
use crate::value::Value;

/// Result of a full collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectOutcome {
    /// Bytes reachable after the collection, excluding pinned objects.
    pub reachable_bytes: u64,
    /// Objects reachable after the collection, excluding pinned objects.
    pub reachable_count: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Objects reclaimed.
    pub freed_count: u64,
    /// Unreachable objects newly queued for finalization (resurrected until
    /// their finalizer runs).
    pub pending_finalizers: Vec<Handle>,
    /// Retaining-path samples drawn during the mark (empty unless the
    /// collection ran through [`collect_full_traced`]).
    pub retain_samples: Vec<RetainSample>,
    /// Wall-clock spent in the collection (pause-time accounting).
    pub elapsed: Duration,
}

/// Result of a minor (nursery-only) collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinorOutcome {
    /// Bytes reclaimed from the nursery.
    pub freed_bytes: u64,
    /// Objects reclaimed from the nursery.
    pub freed_count: u64,
    /// Nursery survivors promoted to the old generation.
    pub promoted: u64,
    /// Wall-clock spent in the collection (pause-time accounting).
    pub elapsed: Duration,
}

fn trace_children(object: &Object, worklist: &mut Vec<Handle>) {
    for value in &object.data {
        if let Value::Ref(h) = value {
            worklist.push(*h);
        }
    }
}

/// Runs a full mark-sweep collection.
///
/// `roots` are the mutator roots (operand stacks, locals, statics). Pinned
/// objects and objects queued for finalization are implicit roots.
/// `on_free` is invoked for every reclaimed non-pinned object, before it is
/// freed.
pub fn collect_full(
    heap: &mut Heap,
    program: &Program,
    roots: &[Handle],
    on_free: &mut dyn FnMut(&Object),
) -> CollectOutcome {
    collect_full_impl(heap, program, roots, on_free, None)
}

/// Runs a full mark-sweep collection with retaining-path sampling.
///
/// Identical to [`collect_full`] — same marking, finalizer resurrection,
/// and sweep — except that the mark loop additionally records each
/// object's discovery edge and draws from the sampler's seeded stream;
/// the resolved samples come back in
/// [`CollectOutcome::retain_samples`]. The sampler's generator state is
/// advanced in place so the caller can carry it to the next collection.
pub fn collect_full_traced(
    heap: &mut Heap,
    program: &Program,
    roots: &[Handle],
    on_free: &mut dyn FnMut(&Object),
    sampler: &mut RetainSampler,
) -> CollectOutcome {
    collect_full_impl(heap, program, roots, on_free, Some(sampler))
}

fn collect_full_impl(
    heap: &mut Heap,
    program: &Program,
    roots: &[Handle],
    on_free: &mut dyn FnMut(&Object),
    mut sampler: Option<&mut RetainSampler>,
) -> CollectOutcome {
    let start = Instant::now();
    let live = heap.live_handles();
    for &h in &live {
        if let Some(o) = heap.get_mut(h) {
            o.marked = false;
        }
    }

    let mut worklist: Vec<Handle> = roots.to_vec();
    for &h in &live {
        if let Some(o) = heap.get(h) {
            if o.pinned || o.finalize_pending {
                worklist.push(h);
            }
        }
    }
    let mut traced = 0u64;
    match sampler.as_deref_mut() {
        Some(s) => {
            for &h in &worklist {
                s.note_seed(h);
            }
            mark_traced(heap, &mut worklist, &mut traced, s);
        }
        None => mark(heap, &mut worklist, &mut traced),
    }

    // Resurrect unreachable finalizable objects and queue them. The
    // resurrection mark is never sampled: a finalizer-pending subgraph
    // is not *retained* by the mutator, so it has no retaining path.
    let mut pending = Vec::new();
    for &h in &live {
        let Some(o) = heap.get(h) else { continue };
        let finalizable = program.classes[o.class.index()].finalizer.is_some();
        if !o.marked && finalizable && !o.finalized && !o.finalize_pending {
            pending.push(h);
        }
    }
    if !pending.is_empty() {
        let mut resurrect = Vec::new();
        for &h in &pending {
            if let Some(o) = heap.get_mut(h) {
                o.finalize_pending = true;
            }
            resurrect.push(h);
        }
        mark(heap, &mut resurrect, &mut traced);
    }
    heap.stats_mut().traced_objects += traced;

    // Resolve sampled paths while the marked heap is still populated.
    let retain_samples = match sampler {
        Some(s) => {
            s.resolve(heap, program);
            s.take_samples()
        }
        None => Vec::new(),
    };

    // Sweep.
    let mut outcome = CollectOutcome {
        pending_finalizers: pending,
        retain_samples,
        ..CollectOutcome::default()
    };
    for &h in &live {
        let Some(o) = heap.get(h) else { continue };
        if o.marked {
            if !o.pinned {
                outcome.reachable_bytes += o.size_bytes;
                outcome.reachable_count += 1;
            }
            // Tenure every survivor: with no young objects left, clearing
            // the remembered set below cannot drop a live old-to-young edge.
            heap.get_mut(h).expect("live").old = true;
        } else {
            if !o.pinned {
                on_free(o);
            }
            outcome.freed_bytes += o.size_bytes;
            outcome.freed_count += 1;
            heap.free(h);
        }
    }
    heap.stats_mut().full_collections += 1;
    heap.remembered.clear();
    outcome.elapsed = start.elapsed();
    outcome
}

/// Runs a minor collection over the nursery (objects not yet promoted).
///
/// Old objects are never reclaimed here; old-to-young edges created by
/// mutation are covered by the heap's remembered set (maintained by the
/// interpreter's write barrier). Nursery objects whose class declares a
/// finalizer are conservatively promoted rather than collected. All
/// survivors are promoted, so the remembered set can be cleared afterwards.
pub fn collect_minor(
    heap: &mut Heap,
    program: &Program,
    roots: &[Handle],
    on_free: &mut dyn FnMut(&Object),
) -> MinorOutcome {
    let start = Instant::now();
    let live = heap.live_handles();
    for &h in &live {
        if let Some(o) = heap.get_mut(h) {
            if !o.old {
                o.marked = false;
            }
        }
    }

    let mut worklist: Vec<Handle> = roots.to_vec();
    // Remembered-set entries contribute their outgoing edges.
    let remembered = std::mem::take(&mut heap.remembered);
    for &h in &remembered {
        if let Some(o) = heap.get(h) {
            trace_children(o, &mut worklist);
        }
    }
    // Pinned or finalizable nursery objects survive unconditionally.
    for &h in &live {
        if let Some(o) = heap.get(h) {
            let finalizable = program.classes[o.class.index()].finalizer.is_some();
            if !o.old && (o.pinned || finalizable || o.finalize_pending) {
                worklist.push(h);
            }
        }
    }

    let mut traced = 0u64;
    // Mark, skipping old objects entirely.
    while let Some(h) = worklist.pop() {
        let Some(o) = heap.get_mut(h) else { continue };
        if o.old || o.marked {
            continue;
        }
        o.marked = true;
        traced += 1;
        let o = heap.get(h).expect("just marked");
        trace_children(o, &mut worklist);
    }
    heap.stats_mut().traced_objects += traced;

    let mut outcome = MinorOutcome::default();
    for &h in &live {
        let Some(o) = heap.get(h) else { continue };
        if o.old {
            continue;
        }
        if o.marked {
            outcome.promoted += 1;
            heap.get_mut(h).expect("live").old = true;
        } else {
            if !o.pinned {
                on_free(o);
            }
            outcome.freed_bytes += o.size_bytes;
            outcome.freed_count += 1;
            heap.free(h);
        }
    }
    heap.stats_mut().minor_collections += 1;
    outcome.elapsed = start.elapsed();
    outcome
}

fn mark(heap: &mut Heap, worklist: &mut Vec<Handle>, traced: &mut u64) {
    while let Some(h) = worklist.pop() {
        let Some(o) = heap.get_mut(h) else { continue };
        if o.marked {
            continue;
        }
        o.marked = true;
        *traced += 1;
        let o = heap.get(h).expect("just marked");
        trace_children(o, worklist);
    }
}

/// [`mark`] with discovery-edge recording and per-object sampling. Kept
/// as a separate loop so the untraced mark pays nothing for the feature.
fn mark_traced(heap: &mut Heap, worklist: &mut Vec<Handle>, traced: &mut u64, s: &mut RetainSampler) {
    while let Some(h) = worklist.pop() {
        let Some(o) = heap.get_mut(h) else { continue };
        if o.marked {
            continue;
        }
        o.marked = true;
        *traced += 1;
        s.draw(h);
        let o = heap.get(h).expect("just marked");
        for (slot, value) in o.data.iter().enumerate() {
            if let Value::Ref(child) = value {
                s.note_edge(*child, h, slot as u32);
                worklist.push(*child);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClassId;

    fn test_program() -> Program {
        let mut p = Program::empty();
        let mut main = crate::class::Method::new("main", 1, 1);
        main.code = vec![crate::insn::Insn::Ret];
        p.methods.push(main);
        p.link().unwrap();
        p
    }

    fn plain_class(p: &Program) -> ClassId {
        p.builtins.object
    }

    #[test]
    fn unreachable_objects_are_swept() {
        let p = test_program();
        let c = plain_class(&p);
        let mut heap = Heap::new();
        let a = heap.alloc(c, 1, false, false);
        let b = heap.alloc(c, 1, false, false);
        // a references b; only a is a root.
        heap.get_mut(a).unwrap().data[0] = Value::Ref(b);
        let orphan = heap.alloc(c, 5, false, false);
        let mut freed = Vec::new();
        let outcome = collect_full(&mut heap, &p, &[a], &mut |o| freed.push(o.id));
        assert_eq!(outcome.freed_count, 1);
        assert_eq!(outcome.reachable_count, 2);
        assert_eq!(freed.len(), 1);
        assert!(heap.get(orphan).is_none());
        assert!(heap.get(a).is_some());
        assert!(heap.get(b).is_some(), "transitively reachable survives");
    }

    #[test]
    fn cycles_are_collected() {
        let p = test_program();
        let c = plain_class(&p);
        let mut heap = Heap::new();
        let a = heap.alloc(c, 1, false, false);
        let b = heap.alloc(c, 1, false, false);
        heap.get_mut(a).unwrap().data[0] = Value::Ref(b);
        heap.get_mut(b).unwrap().data[0] = Value::Ref(a);
        let outcome = collect_full(&mut heap, &p, &[], &mut |_| {});
        assert_eq!(outcome.freed_count, 2);
        assert_eq!(heap.live_count(), 0);
    }

    #[test]
    fn pinned_objects_are_roots_and_unreported() {
        let p = test_program();
        let c = plain_class(&p);
        let mut heap = Heap::new();
        let pinned = heap.alloc(c, 1, false, true);
        let reached = heap.alloc(c, 0, false, false);
        heap.get_mut(pinned).unwrap().data[0] = Value::Ref(reached);
        let mut freed = 0;
        let outcome = collect_full(&mut heap, &p, &[], &mut |_| freed += 1);
        assert_eq!(freed, 0);
        assert_eq!(outcome.freed_count, 0);
        // Pinned objects are excluded from the reachable sample.
        assert_eq!(outcome.reachable_count, 1);
        assert!(heap.get(pinned).is_some());
        assert!(heap.get(reached).is_some());
    }

    #[test]
    fn finalizable_objects_are_resurrected_once() {
        let mut p = Program::empty();
        let mut fin = crate::class::Method::new("finalize", 1, 1);
        fin.is_static = false;
        fin.code = vec![crate::insn::Insn::Ret];
        let fin_id = crate::ids::MethodId(p.methods.len() as u32);
        let mut c = crate::class::ClassDef::new("Finalizable");
        c.super_class = Some(p.builtins.object);
        let cid = ClassId(p.classes.len() as u32);
        fin.class = Some(cid);
        p.methods.push(fin);
        c.finalizer = Some(fin_id);
        p.classes.push(c);
        let mut main = crate::class::Method::new("main", 1, 1);
        main.code = vec![crate::insn::Insn::Ret];
        p.methods.push(main);
        p.entry = crate::ids::MethodId(1);
        p.link().unwrap();

        let mut heap = Heap::new();
        let f = heap.alloc(cid, 0, false, false);
        let mut freed = 0;
        let o1 = collect_full(&mut heap, &p, &[], &mut |_| freed += 1);
        assert_eq!(o1.pending_finalizers, vec![f]);
        assert_eq!(freed, 0, "resurrected, not freed");
        assert!(heap.get(f).is_some());
        // Simulate the finalizer having run.
        {
            let o = heap.get_mut(f).unwrap();
            o.finalize_pending = false;
            o.finalized = true;
        }
        let o2 = collect_full(&mut heap, &p, &[], &mut |_| freed += 1);
        assert!(o2.pending_finalizers.is_empty());
        assert_eq!(freed, 1, "second collection reclaims it");
        assert!(heap.get(f).is_none());
    }

    #[test]
    fn minor_collects_only_nursery() {
        let p = test_program();
        let c = plain_class(&p);
        let mut heap = Heap::new();
        let old = heap.alloc(c, 1, false, false);
        heap.get_mut(old).unwrap().old = true;
        let young_dead = heap.alloc(c, 0, false, false);
        let young_live = heap.alloc(c, 0, false, false);
        let outcome = collect_minor(&mut heap, &p, &[young_live], &mut |_| {});
        assert_eq!(outcome.freed_count, 1);
        assert_eq!(outcome.promoted, 1);
        assert!(heap.get(young_dead).is_none());
        assert!(heap.get(young_live).is_some());
        assert!(heap.get(young_live).unwrap().old, "survivor promoted");
        assert!(heap.get(old).is_some(), "old gen untouched even if unrooted");
    }

    #[test]
    fn remembered_set_keeps_young_referents_alive() {
        let p = test_program();
        let c = plain_class(&p);
        let mut heap = Heap::new();
        let old = heap.alloc(c, 1, false, false);
        heap.get_mut(old).unwrap().old = true;
        let young = heap.alloc(c, 0, false, false);
        heap.get_mut(old).unwrap().data[0] = Value::Ref(young);
        heap.remembered.push(old); // what the write barrier would do
        let outcome = collect_minor(&mut heap, &p, &[], &mut |_| {});
        assert_eq!(outcome.freed_count, 0);
        assert!(heap.get(young).is_some(), "old->young edge kept it alive");
        // Without the remembered set the young object would have died:
        let young2 = heap.alloc(c, 0, false, false);
        heap.get_mut(old).unwrap().data[0] = Value::Ref(young2);
        // (barrier "forgot" to record it)
        let outcome = collect_minor(&mut heap, &p, &[], &mut |_| {});
        assert_eq!(outcome.freed_count, 1, "demonstrates the barrier is load-bearing");
    }
}
