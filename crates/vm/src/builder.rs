//! Fluent construction of [`Program`]s: classes, methods with symbolic
//! labels, statics, and automatic linking.
//!
//! ```
//! use heapdrag_vm::builder::ProgramBuilder;
//! use heapdrag_vm::class::Visibility;
//! use heapdrag_vm::interp::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), heapdrag_vm::error::VmError> {
//! let mut b = ProgramBuilder::new();
//! let point = b
//!     .begin_class("Point")
//!     .field("x", Visibility::Private)
//!     .field("y", Visibility::Private)
//!     .finish();
//! let main = b.declare_method("main", None, true, 1, 2);
//! {
//!     let mut m = b.begin_body(main);
//!     m.new_obj(point).store(1);
//!     m.load(1).push_int(3).putfield(0); // p.x = 3
//!     m.load(1).getfield(0).print();
//!     m.ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let program = b.finish()?;
//! let mut vm = Vm::new(&program, VmConfig::default());
//! let outcome = vm.run(&[])?;
//! assert_eq!(outcome.output, vec![3]);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::class::{ClassDef, FieldDef, Handler, Method, Visibility};
use crate::error::VmError;
use crate::ids::{ClassId, MethodId, StaticId, VSlot};
use crate::insn::Insn;
use crate::program::{Program, StaticDef};
use crate::value::Value;

/// Builder for a whole [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    entry_set: bool,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder pre-populated with the builtin classes.
    pub fn new() -> Self {
        ProgramBuilder {
            program: Program::empty(),
            entry_set: false,
        }
    }

    /// The builtin class ids (exception classes, `Object`, `Array`).
    pub fn builtins(&self) -> crate::program::Builtins {
        self.program.builtins
    }

    /// Starts a new class extending `Object`.
    pub fn begin_class(&mut self, name: impl Into<String>) -> ClassBuilder<'_> {
        let mut def = ClassDef::new(name);
        def.super_class = Some(self.program.builtins.object);
        ClassBuilder { builder: self, def }
    }

    /// Declares a method so it can be referenced (and called recursively)
    /// before its body is defined.
    ///
    /// `class` is `None` for free functions. For instance methods
    /// (`is_static == false`) parameter 0 is the receiver.
    pub fn declare_method(
        &mut self,
        name: impl Into<String>,
        class: Option<ClassId>,
        is_static: bool,
        num_params: u16,
        num_locals: u16,
    ) -> MethodId {
        let mut m = Method::new(name, num_params, num_locals);
        m.class = class;
        m.is_static = is_static;
        let id = MethodId(self.program.methods.len() as u32);
        self.program.methods.push(m);
        id
    }

    /// Opens a body builder for a previously declared method.
    ///
    /// # Panics
    ///
    /// Panics if the method already has code.
    pub fn begin_body(&mut self, method: MethodId) -> MethodBuilder<'_> {
        assert!(
            self.program.methods[method.index()].code.is_empty(),
            "method {} already has a body",
            self.program.methods[method.index()].name
        );
        MethodBuilder {
            builder: self,
            method,
            labels: HashMap::new(),
            fixups: Vec::new(),
            handler_fixups: Vec::new(),
            pending_label: None,
        }
    }

    /// Adjusts a declared method's local-variable count (never below its
    /// parameter count). Useful for front ends that discover how many
    /// locals a body needs while lowering it.
    pub fn set_method_locals(&mut self, method: MethodId, num_locals: u16) {
        let m = &mut self.program.methods[method.index()];
        m.num_locals = num_locals.max(m.num_params);
    }

    /// Declares a static variable.
    pub fn static_var(
        &mut self,
        name: impl Into<String>,
        visibility: Visibility,
        init: Value,
    ) -> StaticId {
        let id = StaticId(self.program.statics.len() as u32);
        self.program.statics.push(StaticDef {
            name: name.into(),
            visibility,
            init,
        });
        id
    }

    /// Marks a class's instances as pinned (excluded from profiling, rooted
    /// forever) — the stand-in for `Class` objects.
    pub fn pin_class(&mut self, class: ClassId) {
        self.program.classes[class.index()].pinned = true;
    }

    /// Registers `method` as the finalizer of `class`.
    pub fn set_finalizer(&mut self, class: ClassId, method: MethodId) {
        self.program.classes[class.index()].finalizer = Some(method);
    }

    /// Selects the program entry point (must be a static method).
    pub fn set_entry(&mut self, method: MethodId) {
        self.program.entry = method;
        self.entry_set = true;
    }

    /// Resolves (or creates) the selector slot for a virtual-call name.
    pub fn selector(&mut self, name: &str) -> VSlot {
        if let Some(v) = self.program.selector(name) {
            return v;
        }
        let v = VSlot(self.program.selectors.len() as u32);
        self.program.selectors.push(name.to_string());
        v
    }

    /// Computes the layout slot of `name` in `class` from the classes
    /// declared so far (innermost declaration wins).
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist — a builder-usage error.
    pub fn field_slot(&self, class: ClassId, name: &str) -> u16 {
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.program.classes[c.index()].super_class;
        }
        // Fields of the root land in the lowest slots.
        let mut slot = 0u16;
        let mut found = None;
        for c in chain.iter().rev() {
            for f in &self.program.classes[c.index()].fields {
                if f.name == name {
                    found = Some(slot); // keep overriding: innermost wins
                }
                slot += 1;
            }
        }
        found.unwrap_or_else(|| {
            panic!(
                "class {} has no field `{name}`",
                self.program.classes[class.index()].name
            )
        })
    }

    /// Total number of layout slots `class` will have after linking.
    pub fn num_slots(&self, class: ClassId) -> u16 {
        let mut n = 0u16;
        let mut cur = Some(class);
        while let Some(c) = cur {
            n += self.program.classes[c.index()].fields.len() as u16;
            cur = self.program.classes[c.index()].super_class;
        }
        n
    }

    /// Links and returns the finished program.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError::LinkError`] or [`VmError::InvalidBytecode`] if
    /// the program is malformed; see [`Program::link`].
    pub fn finish(mut self) -> Result<Program, VmError> {
        if !self.entry_set {
            return Err(VmError::LinkError("no entry method set".into()));
        }
        self.program.link()?;
        Ok(self.program)
    }

    /// Access to the program under construction (read-only).
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Builder for one class; created by [`ProgramBuilder::begin_class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    def: ClassDef,
}

impl ClassBuilder<'_> {
    /// Sets the superclass (default: `Object`).
    pub fn extends(mut self, super_class: ClassId) -> Self {
        self.def.super_class = Some(super_class);
        self
    }

    /// Declares a field.
    pub fn field(mut self, name: impl Into<String>, visibility: Visibility) -> Self {
        self.def.fields.push(FieldDef::new(name, visibility));
        self
    }

    /// Marks instances pinned (see [`ProgramBuilder::pin_class`]).
    pub fn pinned(mut self) -> Self {
        self.def.pinned = true;
        self
    }

    /// Read access to the program under construction (for name resolution
    /// while the builder is borrowed).
    pub fn builder_program(&self) -> &Program {
        self.builder.program()
    }

    /// Registers the class and returns its id.
    pub fn finish(self) -> ClassId {
        let id = ClassId(self.builder.program.classes.len() as u32);
        self.builder.program.classes.push(self.def);
        id
    }
}

/// Builder for one method body; created by [`ProgramBuilder::begin_body`].
///
/// Emission methods return `&mut Self` for chaining. Control flow uses
/// string labels: place one with [`MethodBuilder::label`], target it with
/// [`MethodBuilder::jump`] and friends; targets may be forward references.
#[derive(Debug)]
pub struct MethodBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    method: MethodId,
    labels: HashMap<String, u32>,
    fixups: Vec<(u32, String)>,
    handler_fixups: Vec<(String, String, String, Option<ClassId>)>,
    pending_label: Option<String>,
}

impl MethodBuilder<'_> {
    fn code(&mut self) -> &mut Vec<Insn> {
        &mut self.builder.program.methods[self.method.index()].code
    }

    /// Read access to the enclosing [`ProgramBuilder`].
    pub fn builder(&self) -> &ProgramBuilder {
        self.builder
    }

    /// Read access to the program under construction.
    pub fn builder_program(&self) -> &Program {
        self.builder.program()
    }

    /// Current pc (where the next instruction will land).
    pub fn pc(&mut self) -> u32 {
        self.code().len() as u32
    }

    /// Emits a raw instruction.
    pub fn op(&mut self, insn: Insn) -> &mut Self {
        if let Some(label) = self.pending_label.take() {
            let pc = self.pc();
            self.builder.program.methods[self.method.index()]
                .site_labels
                .insert(pc, label);
        }
        self.code().push(insn);
        self
    }

    /// Attaches a human-readable site label to the *next* instruction; it
    /// shows up in profiler reports for that site.
    pub fn mark(&mut self, label: impl Into<String>) -> &mut Self {
        self.pending_label = Some(label.into());
        self
    }

    /// Places a jump label at the current pc.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let pc = self.pc();
        let prev = self.labels.insert(name.clone(), pc);
        assert!(prev.is_none(), "label `{name}` placed twice");
        self
    }

    fn jump_like(&mut self, make: fn(u32) -> Insn, target: impl Into<String>) -> &mut Self {
        let pc = self.pc();
        self.fixups.push((pc, target.into()));
        self.op(make(u32::MAX))
    }

    // --- instruction shorthands -------------------------------------------

    /// `push <i>`.
    pub fn push_int(&mut self, i: i64) -> &mut Self {
        self.op(Insn::PushInt(i))
    }
    /// `pushnull`.
    pub fn push_null(&mut self) -> &mut Self {
        self.op(Insn::PushNull)
    }
    /// `dup`.
    pub fn dup(&mut self) -> &mut Self {
        self.op(Insn::Dup)
    }
    /// `pop`.
    pub fn pop(&mut self) -> &mut Self {
        self.op(Insn::Pop)
    }
    /// `swap`.
    pub fn swap(&mut self) -> &mut Self {
        self.op(Insn::Swap)
    }
    /// `load <n>`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.op(Insn::Load(n))
    }
    /// `store <n>`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.op(Insn::Store(n))
    }
    /// `add`.
    pub fn add(&mut self) -> &mut Self {
        self.op(Insn::Add)
    }
    /// `sub`.
    pub fn sub(&mut self) -> &mut Self {
        self.op(Insn::Sub)
    }
    /// `mul`.
    pub fn mul(&mut self) -> &mut Self {
        self.op(Insn::Mul)
    }
    /// `div`.
    pub fn div(&mut self) -> &mut Self {
        self.op(Insn::Div)
    }
    /// `rem`.
    pub fn rem(&mut self) -> &mut Self {
        self.op(Insn::Rem)
    }
    /// `neg`.
    pub fn neg(&mut self) -> &mut Self {
        self.op(Insn::Neg)
    }
    /// `cmpeq`.
    pub fn cmpeq(&mut self) -> &mut Self {
        self.op(Insn::CmpEq)
    }
    /// `cmpne`.
    pub fn cmpne(&mut self) -> &mut Self {
        self.op(Insn::CmpNe)
    }
    /// `cmplt`.
    pub fn cmplt(&mut self) -> &mut Self {
        self.op(Insn::CmpLt)
    }
    /// `cmple`.
    pub fn cmple(&mut self) -> &mut Self {
        self.op(Insn::CmpLe)
    }
    /// `cmpgt`.
    pub fn cmpgt(&mut self) -> &mut Self {
        self.op(Insn::CmpGt)
    }
    /// `cmpge`.
    pub fn cmpge(&mut self) -> &mut Self {
        self.op(Insn::CmpGe)
    }
    /// `jump <label>`.
    pub fn jump(&mut self, target: impl Into<String>) -> &mut Self {
        self.jump_like(Insn::Jump, target)
    }
    /// `branch <label>` (pops an int; jumps when non-zero).
    pub fn branch(&mut self, target: impl Into<String>) -> &mut Self {
        self.jump_like(Insn::Branch, target)
    }
    /// `brnull <label>`.
    pub fn branch_if_null(&mut self, target: impl Into<String>) -> &mut Self {
        self.jump_like(Insn::BranchIfNull, target)
    }
    /// `brnonnull <label>`.
    pub fn branch_if_not_null(&mut self, target: impl Into<String>) -> &mut Self {
        self.jump_like(Insn::BranchIfNotNull, target)
    }
    /// `new <class>`.
    pub fn new_obj(&mut self, class: ClassId) -> &mut Self {
        self.op(Insn::New(class))
    }
    /// `newarray` (length on stack).
    pub fn new_array(&mut self) -> &mut Self {
        self.op(Insn::NewArray)
    }
    /// `getfield <slot>`.
    pub fn getfield(&mut self, slot: u16) -> &mut Self {
        self.op(Insn::GetField(slot))
    }
    /// `putfield <slot>`.
    pub fn putfield(&mut self, slot: u16) -> &mut Self {
        self.op(Insn::PutField(slot))
    }
    /// `getfield` resolving the slot by `(class, field-name)`.
    pub fn getfield_named(&mut self, class: ClassId, name: &str) -> &mut Self {
        let slot = self.builder.field_slot(class, name);
        self.getfield(slot)
    }
    /// `putfield` resolving the slot by `(class, field-name)`.
    pub fn putfield_named(&mut self, class: ClassId, name: &str) -> &mut Self {
        let slot = self.builder.field_slot(class, name);
        self.putfield(slot)
    }
    /// `aload`.
    pub fn aload(&mut self) -> &mut Self {
        self.op(Insn::ALoad)
    }
    /// `astore`.
    pub fn astore(&mut self) -> &mut Self {
        self.op(Insn::AStore)
    }
    /// `arraylen`.
    pub fn array_len(&mut self) -> &mut Self {
        self.op(Insn::ArrayLen)
    }
    /// `instanceof <class>`.
    pub fn instance_of(&mut self, class: ClassId) -> &mut Self {
        self.op(Insn::InstanceOf(class))
    }
    /// `getstatic <id>`.
    pub fn getstatic(&mut self, s: StaticId) -> &mut Self {
        self.op(Insn::GetStatic(s))
    }
    /// `putstatic <id>`.
    pub fn putstatic(&mut self, s: StaticId) -> &mut Self {
        self.op(Insn::PutStatic(s))
    }
    /// `call <method>` (direct, static binding).
    pub fn call(&mut self, m: MethodId) -> &mut Self {
        self.op(Insn::Call(m))
    }
    /// `callvirtual` through the named selector.
    pub fn call_virtual(&mut self, selector: &str, argc: u8) -> &mut Self {
        let vslot = self.builder.selector(selector);
        self.op(Insn::CallVirtual { vslot, argc })
    }
    /// `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.op(Insn::Ret)
    }
    /// `retval`.
    pub fn ret_val(&mut self) -> &mut Self {
        self.op(Insn::RetVal)
    }
    /// `monitorenter`.
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.op(Insn::MonitorEnter)
    }
    /// `monitorexit`.
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.op(Insn::MonitorExit)
    }
    /// `throw`.
    pub fn throw(&mut self) -> &mut Self {
        self.op(Insn::Throw)
    }
    /// `print`.
    pub fn print(&mut self) -> &mut Self {
        self.op(Insn::Print)
    }
    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.op(Insn::Nop)
    }

    /// Registers an exception handler: instructions between labels `start`
    /// (inclusive) and `end` (exclusive) are covered; control transfers to
    /// `handler` when an exception of class `catch` (or any, for `None`) is
    /// thrown.
    pub fn handler(
        &mut self,
        start: impl Into<String>,
        end: impl Into<String>,
        handler: impl Into<String>,
        catch: Option<ClassId>,
    ) -> &mut Self {
        self.handler_fixups
            .push((start.into(), end.into(), handler.into(), catch));
        self
    }

    /// Resolves labels and completes the body.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never placed.
    pub fn finish(&mut self) -> MethodId {
        let labels = std::mem::take(&mut self.labels);
        let resolve = |name: &str| -> u32 {
            *labels
                .get(name)
                .unwrap_or_else(|| panic!("label `{name}` referenced but never placed"))
        };
        for (pc, name) in std::mem::take(&mut self.fixups) {
            let target = resolve(&name);
            let code = &mut self.builder.program.methods[self.method.index()].code;
            code[pc as usize] = code[pc as usize].with_jump_target(target);
        }
        for (start, end, handler, catch) in std::mem::take(&mut self.handler_fixups) {
            let h = Handler {
                start_pc: resolve(&start),
                end_pc: resolve(&end),
                handler_pc: resolve(&handler),
                catch,
            };
            self.builder.program.methods[self.method.index()]
                .handlers
                .push(h);
        }
        self.method
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Vm, VmConfig};

    #[test]
    fn build_and_run_arithmetic() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.push_int(6).push_int(7).mul().print().ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![42]);
    }

    #[test]
    fn labels_support_loops() {
        // sum 1..=5 via a backward branch
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            m.push_int(0).store(1); // acc
            m.push_int(1).store(2); // i
            m.label("loop");
            m.load(2).push_int(5).cmpgt().branch("done");
            m.load(1).load(2).add().store(1);
            m.load(2).push_int(1).add().store(2);
            m.jump("loop");
            m.label("done");
            m.load(1).print().ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![15]);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unresolved_label_panics() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        let mut m = b.begin_body(main);
        m.jump("nowhere").ret();
        m.finish();
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        let mut m = b.begin_body(main);
        m.label("l").label("l");
    }

    #[test]
    fn field_slot_resolution_with_inheritance() {
        let mut b = ProgramBuilder::new();
        let base = b
            .begin_class("Base")
            .field("a", Visibility::Private)
            .finish();
        let derived = b
            .begin_class("Derived")
            .extends(base)
            .field("b", Visibility::Private)
            .finish();
        assert_eq!(b.field_slot(derived, "a"), 0);
        assert_eq!(b.field_slot(derived, "b"), 1);
        assert_eq!(b.num_slots(derived), 2);
        assert_eq!(b.num_slots(base), 1);
    }

    #[test]
    fn mark_attaches_site_label() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.push_int(1).mark("the print").print().ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert_eq!(p.methods[main.index()].site_label(1), Some("the print"));
        assert_eq!(p.methods[main.index()].site_label(0), None);
    }

    #[test]
    fn virtual_dispatch_end_to_end() {
        let mut b = ProgramBuilder::new();
        let animal = b.begin_class("Animal").finish();
        let dog = b.begin_class("Dog").extends(animal).finish();
        let speak_animal = b.declare_method("speak", Some(animal), false, 1, 1);
        {
            let mut m = b.begin_body(speak_animal);
            m.push_int(1).ret_val();
            m.finish();
        }
        let speak_dog = b.declare_method("speak", Some(dog), false, 1, 1);
        {
            let mut m = b.begin_body(speak_dog);
            m.push_int(2).ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(animal).call_virtual("speak", 0).print();
            m.new_obj(dog).call_virtual("speak", 0).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![1, 2]);
    }

    #[test]
    fn exception_handler_catches_builtin() {
        let mut b = ProgramBuilder::new();
        let arith = b.builtins().arithmetic;
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.label("try");
            m.push_int(1).push_int(0).div().print();
            m.label("end_try");
            m.jump("out");
            m.label("catch");
            m.pop().push_int(-1).print();
            m.label("out");
            m.ret();
            m.handler("try", "end_try", "catch", Some(arith));
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        assert_eq!(vm.run(&[]).unwrap().output, vec![-1]);
    }
}
