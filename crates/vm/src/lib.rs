//! # heapdrag-vm
//!
//! A handle-based bytecode virtual machine with reachability garbage
//! collection and heap-event instrumentation — the execution substrate for
//! the drag profiler of *Heap Profiling for Space-Efficient Java* (Shaham,
//! Kolodner & Sagiv, PLDI 2001).
//!
//! The VM plays the role the instrumented Sun JVM 1.2 plays in the paper:
//!
//! * objects live behind **handles** in an indirected heap
//!   ([`heap::Heap`]), sized as *header + slots, 8-byte aligned*;
//! * the clock is **bytes allocated since program start**
//!   ([`heap::Heap::clock`]);
//! * a **mark-sweep collector** ([`gc`]) reclaims unreachable objects, with
//!   finalization support and an optional generational mode;
//! * every allocation, each of the paper's **five kinds of object use**
//!   (getfield, putfield, invoke, monitor enter/exit, handle dereference),
//!   every reclamation, and every deep-GC sample is reported to an attached
//!   [`observer::HeapObserver`];
//! * **deep GCs** (collect → run finalizers → collect) run every N bytes of
//!   allocation (the paper uses 100 KB — see
//!   [`interp::VmConfig::profiling`]).
//!
//! Programs are built with [`builder::ProgramBuilder`] or parsed from the
//! textual [`asm`] format, and run with [`interp::Vm`]:
//!
//! ```
//! use heapdrag_vm::builder::ProgramBuilder;
//! use heapdrag_vm::interp::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), heapdrag_vm::error::VmError> {
//! let mut b = ProgramBuilder::new();
//! let main = b.declare_method("main", None, true, 1, 1);
//! {
//!     let mut m = b.begin_body(main);
//!     m.push_int(2).push_int(2).add().print().ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let program = b.finish()?;
//! let outcome = Vm::new(&program, VmConfig::default()).run(&[])?;
//! assert_eq!(outcome.output, vec![4]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod class;
pub mod code_edit;
pub mod disasm;
pub mod error;
pub mod gc;
pub mod heap;
pub mod ids;
pub mod insn;
pub mod interp;
pub mod live;
pub mod metrics;
pub mod observer;
pub mod predecode;
pub mod program;
pub mod retain;
pub mod site;
pub mod value;
pub mod verify;

pub use builder::ProgramBuilder;
pub use error::VmError;
pub use ids::{ChainId, ClassId, MethodId, ObjectId, SiteId, StaticId, VSlot};
pub use insn::{Insn, OpcodeClass};
pub use interp::{InterpreterKind, RunOutcome, Vm, VmConfig};
pub use live::{ring, LiveEvent, LiveProfiler, LiveShared, RingConsumer, RingProducer};
pub use metrics::VmMetrics;
pub use observer::{HeapObserver, UseDelivery, UseKind};
pub use program::Program;
pub use value::Value;
