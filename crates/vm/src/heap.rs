//! The handle-indirected object heap and its allocation clock.
//!
//! Like Sun JVM 1.2 ("classic VM"), whose memory system the paper
//! instruments, objects are addressed through *handles*: stable slots that
//! indirect to the object payload. Handles carry a generation counter so a
//! dereference of a reclaimed object is caught deterministically — the VM
//! equivalent of a segfault, and a property the GC tests lean on.
//!
//! Time is measured in **bytes allocated since the beginning of program
//! execution** (the paper's clock); [`Heap::clock`] advances on every
//! allocation by the object's size.

use std::fmt;

use crate::ids::{ClassId, ObjectId};
use crate::value::Value;

/// Bytes of per-object header (mirrors the paper's accounting, which counts
/// header and alignment but not handle or trailer).
pub const HEADER_BYTES: u64 = 16;
/// Bytes per field or array-element slot.
pub const SLOT_BYTES: u64 = 8;
/// Object alignment.
pub const ALIGN_BYTES: u64 = 8;

/// Size in bytes of an object with `slots` fields or elements.
pub fn object_size(slots: usize) -> u64 {
    let raw = HEADER_BYTES + slots as u64 * SLOT_BYTES;
    raw.div_ceil(ALIGN_BYTES) * ALIGN_BYTES
}

/// An indirect reference to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// Reconstructs a handle from raw parts (used in tests).
    pub fn from_parts(index: u32, generation: u32) -> Self {
        Self { index, generation }
    }

    /// The slot index in the handle table.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ref@{}", self.index)
    }
}

/// A heap object: class, payload slots, and GC metadata.
#[derive(Debug, Clone)]
pub struct Object {
    /// Run-unique id (never reused, unlike the handle slot).
    pub id: ObjectId,
    /// The object's class (`builtins.array` for arrays).
    pub class: ClassId,
    /// Field values (instances) or elements (arrays).
    pub data: Vec<Value>,
    /// True for arrays.
    pub is_array: bool,
    /// Size in bytes, as reported to profilers.
    pub size_bytes: u64,
    /// Pinned objects model `Class` objects: permanent roots, invisible to
    /// observers.
    pub pinned: bool,
    pub(crate) marked: bool,
    pub(crate) old: bool,
    pub(crate) finalize_pending: bool,
    pub(crate) finalized: bool,
}

struct Slot {
    generation: u32,
    object: Option<Object>,
}

/// Running totals maintained by the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total bytes ever allocated (equals the final clock).
    pub allocated_bytes: u64,
    /// Total objects ever allocated.
    pub allocated_objects: u64,
    /// Objects freed by GC.
    pub freed_objects: u64,
    /// Bytes freed by GC.
    pub freed_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_live_bytes: u64,
    /// Full (major) collections run.
    pub full_collections: u64,
    /// Minor (nursery) collections run.
    pub minor_collections: u64,
    /// Objects traced by the mark phase across all collections — the GC work
    /// measure used by the deterministic cost model.
    pub traced_objects: u64,
}

impl HeapStats {
    /// Publishes the totals into `registry` under `vm_heap_*` names.
    ///
    /// Counter values are *added*, so publish once per run; the peak is a
    /// gauge (set, saturating at `i64::MAX`).
    pub fn publish(&self, registry: &heapdrag_obs::Registry) {
        registry
            .counter("vm_heap_alloc_bytes_total")
            .add(self.allocated_bytes);
        registry
            .counter("vm_heap_alloc_objects_total")
            .add(self.allocated_objects);
        registry
            .counter("vm_heap_freed_bytes_total")
            .add(self.freed_bytes);
        registry
            .counter("vm_heap_freed_objects_total")
            .add(self.freed_objects);
        registry
            .counter("vm_heap_gc_full_total")
            .add(self.full_collections);
        registry
            .counter("vm_heap_gc_minor_total")
            .add(self.minor_collections);
        registry
            .counter("vm_heap_traced_objects_total")
            .add(self.traced_objects);
        registry
            .gauge("vm_heap_peak_live_bytes")
            .set(i64::try_from(self.peak_live_bytes).unwrap_or(i64::MAX));
    }
}

/// The object heap.
#[derive(Default)]
pub struct Heap {
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    next_id: u64,
    clock: u64,
    live_bytes: u64,
    live_count: u64,
    limit: Option<u64>,
    /// Old objects that may have been mutated to point at young objects.
    pub(crate) remembered: Vec<Handle>,
    stats: HeapStats,
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("live_count", &self.live_count)
            .field("live_bytes", &self.live_bytes)
            .field("clock", &self.clock)
            .finish()
    }
}

impl Heap {
    /// Creates an empty heap with no size limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a heap that reports out-of-memory when live bytes would
    /// exceed `limit`.
    pub fn with_limit(limit: u64) -> Self {
        Heap {
            limit: Some(limit),
            ..Self::default()
        }
    }

    /// The allocation clock: bytes allocated since the start of the run.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Bytes of currently live (unreclaimed) objects, including pinned ones.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of currently live objects.
    pub fn live_count(&self) -> u64 {
        self.live_count
    }

    /// The configured heap limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Running statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut HeapStats {
        &mut self.stats
    }

    /// True if allocating `slots` more value slots would exceed the limit.
    pub fn would_exceed_limit(&self, slots: usize) -> bool {
        match self.limit {
            Some(limit) => self.live_bytes + object_size(slots) > limit,
            None => false,
        }
    }

    /// Allocates an object; advances the clock by its size.
    ///
    /// Does **not** check the heap limit — the interpreter checks
    /// [`Heap::would_exceed_limit`] first so it can attempt a collection
    /// before declaring out-of-memory.
    pub fn alloc(
        &mut self,
        class: ClassId,
        slots: usize,
        is_array: bool,
        pinned: bool,
    ) -> Handle {
        let size = object_size(slots);
        self.clock += size;
        self.live_bytes += size;
        self.live_count += 1;
        self.stats.allocated_bytes = self.clock;
        self.stats.allocated_objects += 1;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.live_bytes);
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let object = Object {
            id,
            class,
            data: vec![Value::Null; slots],
            is_array,
            size_bytes: size,
            pinned,
            marked: false,
            old: false,
            finalize_pending: false,
            finalized: false,
        };
        match self.free_slots.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.object.is_none());
                slot.object = Some(object);
                Handle {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    object: Some(object),
                });
                Handle {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Dereferences a handle.
    ///
    /// Returns `None` for stale handles (object already reclaimed) — a VM
    /// bug if it ever happens during interpretation.
    pub fn get(&self, handle: Handle) -> Option<&Object> {
        let slot = self.slots.get(handle.index())?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.object.as_ref()
    }

    /// Mutable dereference; see [`Heap::get`].
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut Object> {
        let slot = self.slots.get_mut(handle.index())?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.object.as_mut()
    }

    /// Frees the object behind `handle`, returning it. The slot's generation
    /// is bumped so outstanding handles go stale.
    pub(crate) fn free(&mut self, handle: Handle) -> Option<Object> {
        let slot = self.slots.get_mut(handle.index())?;
        if slot.generation != handle.generation {
            return None;
        }
        let object = slot.object.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free_slots.push(handle.index);
        self.live_bytes -= object.size_bytes;
        self.live_count -= 1;
        self.stats.freed_objects += 1;
        self.stats.freed_bytes += object.size_bytes;
        Some(object)
    }

    /// Iterates over `(handle, object)` for all live objects.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &Object)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.object.as_ref().map(|o| {
                (
                    Handle {
                        index: i as u32,
                        generation: slot.generation,
                    },
                    o,
                )
            })
        })
    }

    /// Handles of all live objects (used by the collector).
    pub(crate) fn live_handles(&self) -> Vec<Handle> {
        self.iter().map(|(h, _)| h).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_size_accounting() {
        assert_eq!(object_size(0), 16);
        assert_eq!(object_size(1), 24);
        assert_eq!(object_size(2), 32);
        assert_eq!(object_size(100), 816);
    }

    #[test]
    fn clock_advances_by_size() {
        let mut heap = Heap::new();
        heap.alloc(ClassId(0), 2, false, false);
        assert_eq!(heap.clock(), 32);
        heap.alloc(ClassId(0), 0, false, false);
        assert_eq!(heap.clock(), 48);
        assert_eq!(heap.live_bytes(), 48);
        assert_eq!(heap.live_count(), 2);
    }

    #[test]
    fn handles_go_stale_after_free() {
        let mut heap = Heap::new();
        let h = heap.alloc(ClassId(0), 1, false, false);
        assert!(heap.get(h).is_some());
        let freed = heap.free(h).unwrap();
        assert_eq!(freed.size_bytes, 24);
        assert!(heap.get(h).is_none(), "stale handle must not resolve");
        // Slot is recycled with a new generation.
        let h2 = heap.alloc(ClassId(0), 1, false, false);
        assert_eq!(h2.index(), h.index());
        assert!(heap.get(h).is_none());
        assert!(heap.get(h2).is_some());
    }

    #[test]
    fn object_ids_are_unique_across_slot_reuse() {
        let mut heap = Heap::new();
        let h1 = heap.alloc(ClassId(0), 0, false, false);
        let id1 = heap.get(h1).unwrap().id;
        heap.free(h1);
        let h2 = heap.alloc(ClassId(0), 0, false, false);
        let id2 = heap.get(h2).unwrap().id;
        assert_ne!(id1, id2);
    }

    #[test]
    fn limit_checks() {
        let mut heap = Heap::with_limit(64);
        assert!(!heap.would_exceed_limit(2)); // 32 <= 64
        heap.alloc(ClassId(0), 2, false, false);
        assert!(!heap.would_exceed_limit(2)); // 64 <= 64
        heap.alloc(ClassId(0), 2, false, false);
        assert!(heap.would_exceed_limit(0));
    }

    #[test]
    fn stats_track_peaks_and_frees() {
        let mut heap = Heap::new();
        let h = heap.alloc(ClassId(0), 10, true, false);
        heap.alloc(ClassId(0), 0, false, false);
        heap.free(h);
        let s = heap.stats();
        assert_eq!(s.allocated_objects, 2);
        assert_eq!(s.freed_objects, 1);
        assert_eq!(s.freed_bytes, object_size(10));
        assert_eq!(s.peak_live_bytes, object_size(10) + object_size(0));
        assert_eq!(heap.live_count(), 1);
    }

    #[test]
    fn iter_visits_live_objects() {
        let mut heap = Heap::new();
        let a = heap.alloc(ClassId(0), 0, false, false);
        let b = heap.alloc(ClassId(1), 0, false, false);
        heap.free(a);
        let live: Vec<_> = heap.iter().map(|(h, _)| h).collect();
        assert_eq!(live, vec![b]);
    }
}
