//! Property tests for the collector: on arbitrary object graphs, a full
//! collection frees exactly the complement of the root closure, accounting
//! stays consistent, and the generational collector never frees anything a
//! full collection would keep.

use std::collections::HashSet;

use heapdrag_testkit::{check, Rng};
use heapdrag_vm::class::Method;
use heapdrag_vm::gc::{collect_full, collect_minor};
use heapdrag_vm::heap::{Handle, Heap};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;

fn test_program() -> Program {
    let mut p = Program::empty();
    let mut main = Method::new("main", 1, 1);
    main.code = vec![Insn::Ret];
    p.methods.push(main);
    p.link().unwrap();
    p
}

/// A random heap shape: object field counts, edges, and roots.
#[derive(Debug, Clone)]
struct GraphSpec {
    fields: Vec<u8>,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
}

fn graph(rng: &mut Rng, max_objects: usize) -> GraphSpec {
    let n = rng.range_usize(2, max_objects);
    let fields = (0..n).map(|_| rng.range_u8(1, 6)).collect();
    let edges = rng.vec(0, n * 3, |r| (r.range_usize(0, n), r.range_usize(0, n)));
    let roots = rng.vec(0, n.div_ceil(2).max(1), |r| r.range_usize(0, n));
    GraphSpec { fields, edges, roots }
}

/// Materialises the spec; returns handles in spec order.
fn build_heap(program: &Program, spec: &GraphSpec) -> (Heap, Vec<Handle>) {
    let mut heap = Heap::new();
    let handles: Vec<Handle> = spec
        .fields
        .iter()
        .map(|f| heap.alloc(program.builtins.object, *f as usize, false, false))
        .collect();
    for (from, to) in &spec.edges {
        let slot = to % spec.fields[*from] as usize;
        heap.get_mut(handles[*from]).unwrap().data[slot] = Value::Ref(handles[*to]);
    }
    (heap, handles)
}

/// The root closure, computed independently of the collector.
fn closure(spec: &GraphSpec) -> HashSet<usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = spec.roots.clone();
    while let Some(i) = stack.pop() {
        if !seen.insert(i) {
            continue;
        }
        for (from, to) in &spec.edges {
            // Edges into the same slot overwrite earlier ones; recompute
            // the final slot contents the same way build_heap does.
            if *from == i {
                let slot = to % spec.fields[*from] as usize;
                let winner = spec
                    .edges
                    .iter()
                    .rfind(|(f, t)| *f == i && t % spec.fields[i] as usize == slot)
                    .map(|(_, t)| *t)
                    .expect("at least this edge");
                stack.push(winner);
            }
        }
    }
    seen
}

#[test]
fn full_collection_frees_exactly_the_unreachable() {
    check("full_collection_frees_exactly_the_unreachable", 64, |rng| {
        let spec = graph(rng, 24);
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        let expected = closure(&spec);
        let mut freed = 0usize;
        collect_full(&mut heap, &program, &roots, &mut |_| freed += 1);
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(
                heap.get(*h).is_some(),
                expected.contains(&i),
                "object {} reachable={}",
                i,
                expected.contains(&i)
            );
        }
        assert_eq!(freed, handles.len() - expected.len());
    });
}

#[test]
fn accounting_stays_consistent_after_collection() {
    check("accounting_stays_consistent_after_collection", 64, |rng| {
        let spec = graph(rng, 24);
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        collect_full(&mut heap, &program, &roots, &mut |_| {});
        let live_bytes: u64 = heap.iter().map(|(_, o)| o.size_bytes).sum();
        assert_eq!(heap.live_bytes(), live_bytes);
        assert_eq!(heap.live_count(), heap.iter().count() as u64);
        let stats = heap.stats();
        assert_eq!(
            stats.allocated_objects,
            heap.live_count() + stats.freed_objects
        );
    });
}

#[test]
fn collection_is_idempotent() {
    check("collection_is_idempotent", 64, |rng| {
        let spec = graph(rng, 20);
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        collect_full(&mut heap, &program, &roots, &mut |_| {});
        let alive_after_first: Vec<bool> = handles.iter().map(|h| heap.get(*h).is_some()).collect();
        let mut freed_second = 0;
        collect_full(&mut heap, &program, &roots, &mut |_| freed_second += 1);
        assert_eq!(freed_second, 0, "second collection frees nothing");
        for (h, was_alive) in handles.iter().zip(alive_after_first) {
            assert_eq!(heap.get(*h).is_some(), was_alive);
        }
    });
}

#[test]
fn minor_collection_is_conservative() {
    check("minor_collection_is_conservative", 64, |rng| {
        // Whatever survives a full collection must also survive a minor
        // one (the nursery may keep more alive, never less).
        let spec = graph(rng, 20);
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        let expected = closure(&spec);
        collect_minor(&mut heap, &program, &roots, &mut |_| {});
        for (i, h) in handles.iter().enumerate() {
            if expected.contains(&i) {
                assert!(heap.get(*h).is_some(), "reachable {} survives minor", i);
            }
        }
    });
}
