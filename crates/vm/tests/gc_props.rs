//! Property tests for the collector: on arbitrary object graphs, a full
//! collection frees exactly the complement of the root closure, accounting
//! stays consistent, and the generational collector never frees anything a
//! full collection would keep.

use std::collections::HashSet;

use heapdrag_vm::class::Method;
use heapdrag_vm::gc::{collect_full, collect_minor};
use heapdrag_vm::heap::{Handle, Heap};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;
use proptest::prelude::*;

fn test_program() -> Program {
    let mut p = Program::empty();
    let mut main = Method::new("main", 1, 1);
    main.code = vec![Insn::Ret];
    p.methods.push(main);
    p.link().unwrap();
    p
}

/// A random heap shape: object field counts, edges, and roots.
#[derive(Debug, Clone)]
struct GraphSpec {
    fields: Vec<u8>,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
}

fn graph_strategy(max_objects: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_objects).prop_flat_map(|n| {
        let fields = proptest::collection::vec(1u8..6, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
        let roots = proptest::collection::vec(0..n, 0..n.div_ceil(2));
        (fields, edges, roots).prop_map(|(fields, edges, roots)| GraphSpec {
            fields,
            edges,
            roots,
        })
    })
}

/// Materialises the spec; returns handles in spec order.
fn build_heap(program: &Program, spec: &GraphSpec) -> (Heap, Vec<Handle>) {
    let mut heap = Heap::new();
    let handles: Vec<Handle> = spec
        .fields
        .iter()
        .map(|f| heap.alloc(program.builtins.object, *f as usize, false, false))
        .collect();
    for (from, to) in &spec.edges {
        let slot = to % spec.fields[*from] as usize;
        heap.get_mut(handles[*from]).unwrap().data[slot] = Value::Ref(handles[*to]);
    }
    (heap, handles)
}

/// The root closure, computed independently of the collector.
fn closure(spec: &GraphSpec) -> HashSet<usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = spec.roots.clone();
    while let Some(i) = stack.pop() {
        if !seen.insert(i) {
            continue;
        }
        for (from, to) in &spec.edges {
            // Edges into the same slot overwrite earlier ones; recompute
            // the final slot contents the same way build_heap does.
            if *from == i {
                let slot = to % spec.fields[*from] as usize;
                let winner = spec
                    .edges
                    .iter().rfind(|(f, t)| *f == i && t % spec.fields[i] as usize == slot)
                    .map(|(_, t)| *t)
                    .expect("at least this edge");
                stack.push(winner);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_collection_frees_exactly_the_unreachable(spec in graph_strategy(24)) {
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        let expected = closure(&spec);
        let mut freed = 0usize;
        collect_full(&mut heap, &program, &roots, &mut |_| freed += 1);
        for (i, h) in handles.iter().enumerate() {
            prop_assert_eq!(
                heap.get(*h).is_some(),
                expected.contains(&i),
                "object {} reachable={}",
                i,
                expected.contains(&i)
            );
        }
        prop_assert_eq!(freed, handles.len() - expected.len());
    }

    #[test]
    fn accounting_stays_consistent_after_collection(spec in graph_strategy(24)) {
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        collect_full(&mut heap, &program, &roots, &mut |_| {});
        let live_bytes: u64 = heap.iter().map(|(_, o)| o.size_bytes).sum();
        prop_assert_eq!(heap.live_bytes(), live_bytes);
        prop_assert_eq!(heap.live_count(), heap.iter().count() as u64);
        let stats = heap.stats();
        prop_assert_eq!(
            stats.allocated_objects,
            heap.live_count() + stats.freed_objects
        );
    }

    #[test]
    fn collection_is_idempotent(spec in graph_strategy(20)) {
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        collect_full(&mut heap, &program, &roots, &mut |_| {});
        let alive_after_first: Vec<bool> = handles.iter().map(|h| heap.get(*h).is_some()).collect();
        let mut freed_second = 0;
        collect_full(&mut heap, &program, &roots, &mut |_| freed_second += 1);
        prop_assert_eq!(freed_second, 0, "second collection frees nothing");
        for (h, was_alive) in handles.iter().zip(alive_after_first) {
            prop_assert_eq!(heap.get(*h).is_some(), was_alive);
        }
    }

    #[test]
    fn minor_collection_is_conservative(spec in graph_strategy(20)) {
        // Whatever survives a full collection must also survive a minor
        // one (the nursery may keep more alive, never less).
        let program = test_program();
        let (mut heap, handles) = build_heap(&program, &spec);
        let roots: Vec<Handle> = spec.roots.iter().map(|i| handles[*i]).collect();
        let expected = closure(&spec);
        collect_minor(&mut heap, &program, &roots, &mut |_| {});
        for (i, h) in handles.iter().enumerate() {
            if expected.contains(&i) {
                prop_assert!(heap.get(*h).is_some(), "reachable {} survives minor", i);
            }
        }
    }
}
