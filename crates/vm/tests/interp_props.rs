//! Property tests for the interpreter: randomly generated programs run
//! deterministically, survive assembly round-trips, and keep heap
//! accounting consistent under any GC configuration.

use heapdrag_testkit::{check, Rng};
use heapdrag_vm::asm::assemble;
use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::disasm::disassemble;
use heapdrag_vm::interp::{Vm, VmConfig};
use heapdrag_vm::program::Program;

/// A generator for small, well-formed programs: straight-line statements
/// over int locals and one object class, with an optional if/else on a
/// comparison and a counted loop.
#[derive(Debug, Clone)]
enum Stmt {
    SetInt { local: u16, value: i32 },
    AddInto { local: u16, other: u16 },
    AllocObj { local: u16, field_value: i32 },
    ReadField { from: u16, into: u16 },
    AllocArray { local: u16, len: u8 },
    StoreElem { local: u16, idx: u8, value: i32 },
    DropRef { local: u16 },
    PrintLocal { local: u16 },
}

const INT_LOCALS: u16 = 3; // locals 1..=3 hold ints
const REF_LOCALS: u16 = 3; // locals 4..=6 hold refs

fn stmt(rng: &mut Rng) -> Stmt {
    match rng.range_u32(0, 8) {
        0 => Stmt::SetInt {
            local: rng.range_u16(1, INT_LOCALS + 1),
            value: rng.range_i32(-100, 100),
        },
        1 => Stmt::AddInto {
            local: rng.range_u16(1, INT_LOCALS + 1),
            other: rng.range_u16(1, INT_LOCALS + 1),
        },
        2 => Stmt::AllocObj {
            local: rng.range_u16(4, 4 + REF_LOCALS),
            field_value: rng.range_i32(-50, 50),
        },
        3 => Stmt::ReadField {
            from: rng.range_u16(4, 4 + REF_LOCALS),
            into: rng.range_u16(1, INT_LOCALS + 1),
        },
        4 => Stmt::AllocArray {
            local: rng.range_u16(4, 4 + REF_LOCALS),
            len: rng.range_u8(1, 20),
        },
        5 => Stmt::StoreElem {
            local: rng.range_u16(4, 4 + REF_LOCALS),
            idx: rng.range_u8(0, 20),
            value: rng.range_i32(-9, 9),
        },
        6 => Stmt::DropRef {
            local: rng.range_u16(4, 4 + REF_LOCALS),
        },
        _ => Stmt::PrintLocal {
            local: rng.range_u16(1, INT_LOCALS + 1),
        },
    }
}

#[derive(Debug, Clone)]
struct ProgSpec {
    setup: Vec<Stmt>,
    then_branch: Vec<Stmt>,
    else_branch: Vec<Stmt>,
    loop_body: Vec<Stmt>,
    loop_count: u8,
    tail: Vec<Stmt>,
}

fn prog(rng: &mut Rng) -> ProgSpec {
    ProgSpec {
        setup: rng.vec(0, 12, stmt),
        then_branch: rng.vec(0, 6, stmt),
        else_branch: rng.vec(0, 6, stmt),
        loop_body: rng.vec(0, 6, stmt),
        loop_count: rng.range_u8(0, 20),
        tail: rng.vec(0, 8, stmt),
    }
}

fn build(spec: &ProgSpec) -> Program {
    let mut b = ProgramBuilder::new();
    let class = b
        .begin_class("P.Obj")
        .field("f", Visibility::Private)
        .finish();
    let main = b.declare_method("main", None, true, 1, 8); // local 7: loop counter
    {
        let mut m = b.begin_body(main);
        // All ref locals start as objects so ReadField never NPEs; all int
        // locals start as ints.
        for l in 1..=INT_LOCALS {
            m.push_int(0).store(l);
        }
        for l in 4..4 + REF_LOCALS {
            m.new_obj(class).store(l);
            m.load(l).push_int(0).putfield(0);
        }
        let emit = |m: &mut heapdrag_vm::builder::MethodBuilder<'_>, stmts: &[Stmt], tag: usize| {
            for (k, s) in stmts.iter().enumerate() {
                match s {
                    Stmt::SetInt { local, value } => {
                        m.push_int(*value as i64).store(*local);
                    }
                    Stmt::AddInto { local, other } => {
                        m.load(*local).load(*other).add().store(*local);
                    }
                    Stmt::AllocObj { local, field_value } => {
                        m.new_obj(class).store(*local);
                        m.load(*local).push_int(*field_value as i64).putfield(0);
                    }
                    Stmt::ReadField { from, into } => {
                        // Guard: the ref local may hold an array or null.
                        let skip = format!("skip{tag}_{k}");
                        m.load(*from).instance_of(class).push_int(0).cmpeq();
                        m.branch(skip.clone());
                        m.load(*from).getfield(0).store(*into);
                        m.label(skip);
                    }
                    Stmt::AllocArray { local, len } => {
                        m.push_int(*len as i64).new_array().store(*local);
                    }
                    Stmt::StoreElem { local, idx, value } => {
                        let skip = format!("skiparr{tag}_{k}");
                        // Only store when the local holds an array big enough.
                        m.load(*local).instance_of(class).push_int(1).cmpeq();
                        m.branch(skip.clone());
                        m.load(*local).branch_if_null(skip.clone());
                        m.load(*local).array_len().push_int(*idx as i64).cmple();
                        m.branch(skip.clone());
                        m.load(*local)
                            .push_int(*idx as i64)
                            .push_int(*value as i64)
                            .astore();
                        m.label(skip);
                    }
                    Stmt::DropRef { local } => {
                        m.push_null().store(*local);
                    }
                    Stmt::PrintLocal { local } => {
                        m.load(*local).print();
                    }
                }
            }
        };
        emit(&mut m, &spec.setup, 0);
        // if (local1 < local2) then … else …
        m.load(1).load(2).cmplt().branch("then");
        emit(&mut m, &spec.else_branch, 1);
        m.jump("endif");
        m.label("then");
        emit(&mut m, &spec.then_branch, 2);
        m.label("endif");
        // counted loop
        m.push_int(0).store(7);
        m.label("loop");
        m.load(7).push_int(spec.loop_count as i64).cmpge().branch("loopend");
        emit(&mut m, &spec.loop_body, 3);
        m.load(7).push_int(1).add().store(7);
        m.jump("loop");
        m.label("loopend");
        emit(&mut m, &spec.tail, 4);
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("generated program links")
}

#[test]
fn generated_programs_pass_the_verifier() {
    check("generated_programs_pass_the_verifier", 48, |rng| {
        let p = build(&prog(rng));
        heapdrag_vm::verify::verify_program(&p).expect("builder output verifies");
    });
}

#[test]
fn generated_programs_run_deterministically() {
    check("generated_programs_run_deterministically", 48, |rng| {
        let p = build(&prog(rng));
        let a = Vm::new(&p, VmConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&p, VmConfig::default()).run(&[]).expect("runs");
        assert_eq!(&a.output, &b.output);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.end_time, b.end_time);
    });
}

#[test]
fn gc_configuration_never_changes_output() {
    check("gc_configuration_never_changes_output", 48, |rng| {
        let p = build(&prog(rng));
        let plain = Vm::new(&p, VmConfig::default()).run(&[]).expect("runs");
        let profiled = Vm::new(&p, VmConfig::profiling()).run(&[]).expect("runs");
        let tight = Vm::new(
            &p,
            VmConfig {
                deep_gc_interval: Some(512),
                ..VmConfig::default()
            },
        )
        .run(&[])
        .expect("runs");
        let generational = Vm::new(
            &p,
            VmConfig {
                generational: true,
                nursery_bytes: 1024,
                ..VmConfig::default()
            },
        )
        .run(&[])
        .expect("runs");
        assert_eq!(&plain.output, &profiled.output);
        assert_eq!(&plain.output, &tight.output);
        assert_eq!(&plain.output, &generational.output);
        // Allocation behaviour (the byte clock) is GC-independent too.
        assert_eq!(plain.end_time, profiled.end_time);
        assert_eq!(plain.end_time, generational.end_time);
    });
}

#[test]
fn assembly_roundtrip_preserves_generated_programs() {
    check("assembly_roundtrip_preserves_generated_programs", 48, |rng| {
        let p = build(&prog(rng));
        let text = disassemble(&p);
        let p2 = assemble(&text).expect("reassembles");
        let a = Vm::new(&p, VmConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&p2, VmConfig::default()).run(&[]).expect("runs");
        assert_eq!(a.output, b.output);
    });
}
