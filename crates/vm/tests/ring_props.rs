//! Property tests for the live SPSC ring and its [`LiveProfiler`] under
//! seeded pathological producers: overflow drops are counted *exactly*,
//! accepted events keep FIFO order, and neither endpoint ever blocks or
//! panics — however bursty the producer or stalled the consumer.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use heapdrag_testkit::{check, Rng};
use heapdrag_vm::live::{ring, LiveEvent, LiveProfiler};
use heapdrag_vm::observer::{GcEvent, HeapObserver};

#[test]
fn single_threaded_interleavings_match_a_queue_model() {
    check("ring-model", 256, |rng: &mut Rng| {
        let (mut tx, mut rx) = ring::<u64>(rng.range_usize(0, 9));
        let cap = tx.capacity();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..rng.range_usize(10, 200) {
            if rng.ratio(3, 5) {
                let accepted = tx.push(next);
                assert_eq!(
                    accepted,
                    model.len() < cap,
                    "push must accept iff the ring is not full ({} of {cap})",
                    model.len()
                );
                if accepted {
                    model.push_back(next);
                }
                next += 1;
            } else {
                assert_eq!(rx.pop(), model.pop_front(), "FIFO order");
            }
        }
        // Everything accepted and not yet popped drains out in order.
        while let Some(want) = model.pop_front() {
            assert_eq!(rx.pop(), Some(want));
        }
        assert_eq!(rx.pop(), None);
    });
}

#[test]
fn bursting_producers_never_block_and_drops_are_counted_exactly() {
    // A producer that fires events as fast as it can into a tiny ring
    // while the consumer randomly stalls. The producer must finish (it
    // never blocks), every event is either popped or counted dropped,
    // and the popped timestamps stay strictly increasing (drops lose
    // events but never reorder the survivors).
    check("ring-burst-producer", 24, |rng: &mut Rng| {
        let (tx, mut rx) = ring::<LiveEvent>(rng.range_usize(2, 64));
        let mut profiler = LiveProfiler::new(tx);
        let shared = profiler.shared();
        let consumer_shared = Arc::clone(&shared);
        let total = rng.range_u64(100, 3_000);
        let mut consumer_rng = rng.fork();

        let (popped, exits) = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || {
                let mut times: Vec<u64> = Vec::new();
                let mut exits = 0u32;
                loop {
                    match rx.pop() {
                        Some(LiveEvent::DeepGc(e)) => times.push(e.time),
                        Some(LiveEvent::Exit { .. }) => exits += 1,
                        Some(_) => unreachable!("only DeepGc/Exit are produced"),
                        None => {
                            if consumer_shared.done.load(Ordering::Acquire) {
                                match rx.pop() {
                                    Some(LiveEvent::DeepGc(e)) => times.push(e.time),
                                    Some(LiveEvent::Exit { .. }) => exits += 1,
                                    Some(_) => unreachable!(),
                                    None => break,
                                }
                            } else if consumer_rng.ratio(1, 4) {
                                // Pathological stall: let the ring fill.
                                std::thread::sleep(Duration::from_micros(
                                    consumer_rng.range_u64(1, 200),
                                ));
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                (times, exits)
            });
            for t in 0..total {
                profiler.on_deep_gc(GcEvent::new(t));
            }
            profiler.on_exit(total);
            consumer.join().expect("consumer must not panic")
        });

        let dropped = shared.dropped.load(Ordering::Relaxed);
        assert_eq!(
            popped.len() as u64 + u64::from(exits) + dropped,
            total + 1,
            "every event is popped or counted dropped"
        );
        assert!(
            popped.windows(2).all(|w| w[0] < w[1]),
            "accepted events must keep their order"
        );
        assert!(exits <= 1, "at most the one exit event");
    });
}

#[test]
fn a_full_ring_keeps_rejecting_until_the_consumer_frees_a_slot() {
    check("ring-full-reject", 64, |rng: &mut Rng| {
        let (mut tx, mut rx) = ring::<u64>(rng.range_usize(2, 16));
        let cap = tx.capacity();
        for i in 0..cap as u64 {
            assert!(tx.push(i));
        }
        // Arbitrarily many further pushes all reject, without blocking,
        // panicking, or corrupting the queued values.
        for _ in 0..rng.range_usize(1, 100) {
            assert!(!tx.push(u64::MAX));
        }
        for want in 0..cap as u64 {
            assert_eq!(rx.pop(), Some(want));
            assert!(tx.push(1_000 + want), "freed slot must be reusable");
        }
    });
}
