//! End-to-end tests of the VM's runtime features: exception propagation
//! across frames, finalization during deep GC, out-of-memory behaviour
//! with a bounded heap, and monitor bookkeeping.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::error::VmError;
use heapdrag_vm::interp::{Vm, VmConfig};
use heapdrag_vm::observer::CountingObserver;
use heapdrag_vm::value::Value;

#[test]
fn exception_propagates_through_calls_to_outer_handler() {
    let mut b = ProgramBuilder::new();
    let arith = b.builtins().arithmetic;
    // inner() divides by zero with no handler of its own.
    let inner = b.declare_method("inner", None, true, 1, 1);
    {
        let mut m = b.begin_body(inner);
        m.push_int(10).load(0).div().ret_val();
        m.finish();
    }
    let middle = b.declare_method("middle", None, true, 1, 1);
    {
        let mut m = b.begin_body(middle);
        m.load(0).call(inner).ret_val();
        m.finish();
    }
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.label("try");
        m.push_int(0).call(middle).print();
        m.label("end");
        m.jump("out");
        m.label("catch");
        m.pop().push_int(-7).print();
        m.label("out");
        m.ret();
        m.handler("try", "end", "catch", Some(arith));
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let out = Vm::new(&p, VmConfig::default()).run(&[]).unwrap();
    assert_eq!(out.output, vec![-7], "unwound two frames into the handler");
}

#[test]
fn uncaught_user_exception_reports_class() {
    let mut b = ProgramBuilder::new();
    let boom = b.begin_class("app.Boom").finish();
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.new_obj(boom).throw();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let err = Vm::new(&p, VmConfig::default()).run(&[]).unwrap_err();
    match err {
        VmError::UncaughtException { class_name, .. } => assert_eq!(class_name, "app.Boom"),
        other => panic!("expected uncaught exception, got {other}"),
    }
}

#[test]
fn user_exception_object_reaches_the_handler() {
    let mut b = ProgramBuilder::new();
    let boom = b
        .begin_class("app.Boom")
        .field("code", Visibility::Public)
        .finish();
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.label("try");
        m.new_obj(boom).dup().push_int(55).putfield(0);
        m.throw();
        m.label("end");
        m.label("catch");
        m.getfield(0).print(); // the thrown object is on the stack
        m.ret();
        m.handler("try", "end", "catch", Some(boom));
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let out = Vm::new(&p, VmConfig::default()).run(&[]).unwrap();
    assert_eq!(out.output, vec![55]);
}

#[test]
fn finalizers_run_once_during_deep_gc() {
    let mut b = ProgramBuilder::new();
    let counter = b.static_var("G.finalized", Visibility::Public, Value::Int(0));
    let res = b.begin_class("app.Resource").finish();
    let fin = b.declare_method("finalize", Some(res), false, 1, 1);
    {
        let mut m = b.begin_body(fin);
        m.getstatic(counter).push_int(1).add().putstatic(counter);
        m.ret();
        m.finish();
    }
    b.set_finalizer(res, fin);
    let main = b.declare_method("main", None, true, 1, 2);
    {
        // Allocate 3 resources, drop them, churn past two deep-GC
        // intervals, then print the finalization count.
        let mut m = b.begin_body(main);
        for _ in 0..3 {
            m.new_obj(res).pop();
        }
        m.push_int(0).store(1);
        m.label("churn");
        m.load(1).push_int(600).cmpge().branch("done");
        m.push_int(40).new_array().pop();
        m.load(1).push_int(1).add().store(1);
        m.jump("churn");
        m.label("done");
        m.getstatic(counter).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let out = Vm::new(&p, VmConfig::profiling()).run(&[]).unwrap();
    assert_eq!(out.output, vec![3], "each resource finalized exactly once");
}

#[test]
fn finalizable_objects_survive_one_extra_cycle_in_the_profile() {
    // Resurrection is visible to the profiler: a finalizable object's
    // reclamation time is at least one deep-GC later than a plain one's.
    let mut b = ProgramBuilder::new();
    let res = b.begin_class("app.Resource").finish();
    let plain = b.begin_class("app.Plain").finish();
    let fin = b.declare_method("finalize", Some(res), false, 1, 1);
    {
        let mut m = b.begin_body(fin);
        m.ret();
        m.finish();
    }
    b.set_finalizer(res, fin);
    let main = b.declare_method("main", None, true, 1, 2);
    {
        let mut m = b.begin_body(main);
        m.new_obj(res).pop();
        m.new_obj(plain).pop();
        m.push_int(0).store(1);
        m.label("churn");
        m.load(1).push_int(800).cmpge().branch("done");
        m.push_int(40).new_array().pop();
        m.load(1).push_int(1).add().store(1);
        m.jump("churn");
        m.label("done");
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let mut observer = CountingObserver::default();
    let out = Vm::new(&p, VmConfig::profiling())
        .run_observed(&[], &mut observer)
        .unwrap();
    assert!(out.deep_gcs >= 2);
    assert!(observer.frees >= 2, "both objects eventually reclaimed");
}

#[test]
fn oom_throws_into_the_program_after_a_forced_gc() {
    let mut b = ProgramBuilder::new();
    let oom = b.builtins().out_of_memory;
    let main = b.declare_method("main", None, true, 1, 2);
    {
        // Keep allocating 1 KB arrays while holding the last two; a 4 KB
        // heap fills up quickly — but dropping references lets the forced
        // collection recover, so only the *retaining* loop dies.
        let mut m = b.begin_body(main);
        m.label("try");
        m.push_int(0).store(1);
        m.label("grow");
        // allocate and retain forever via an escaping chain: arr[0] = prev
        m.push_int(120).new_array();
        m.dup().push_int(0).load(1).swap().pop().astore(); // arr[0] = 0 (dummy)
        m.store(1); // keep only the newest — still, below, we retain
        m.jump("grow");
        m.label("end");
        m.label("catch");
        m.pop().push_int(-1).print();
        m.ret();
        m.handler("try", "end", "catch", Some(oom));
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    // With an unbounded heap this would loop forever (step budget); bound
    // it and watch the program catch its own OOM. The collection keeps
    // recovering the dropped arrays, so we must retain: use a tiny limit
    // smaller than one array to force it immediately.
    let config = VmConfig {
        heap_limit: Some(600),
        max_steps: Some(2_000_000),
        ..VmConfig::default()
    };
    let out = Vm::new(&p, config).run(&[]).unwrap();
    assert_eq!(out.output, vec![-1], "OutOfMemoryError caught by the program");
}

#[test]
fn unbalanced_monitor_is_a_vm_error() {
    let mut b = ProgramBuilder::new();
    let c = b.begin_class("C").finish();
    let main = b.declare_method("main", None, true, 1, 2);
    {
        let mut m = b.begin_body(main);
        m.new_obj(c).store(1);
        m.load(1).monitor_exit(); // never entered
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let err = Vm::new(&p, VmConfig::default()).run(&[]).unwrap_err();
    assert_eq!(err, VmError::UnbalancedMonitor);
}

#[test]
fn monitors_count_as_uses_and_root_objects() {
    let mut b = ProgramBuilder::new();
    let c = b.begin_class("C").finish();
    let main = b.declare_method("main", None, true, 1, 2);
    {
        let mut m = b.begin_body(main);
        m.new_obj(c).store(1);
        m.load(1).monitor_enter();
        m.load(1).monitor_exit();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let mut observer = CountingObserver::default();
    Vm::new(&p, VmConfig::default())
        .run_observed(&[], &mut observer)
        .unwrap();
    assert!(observer.uses >= 2, "enter and exit both recorded as uses");
}

#[test]
fn step_budget_is_enforced() {
    let mut b = ProgramBuilder::new();
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.label("spin");
        m.jump("spin");
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let config = VmConfig {
        max_steps: Some(10_000),
        ..VmConfig::default()
    };
    let err = Vm::new(&p, config).run(&[]).unwrap_err();
    assert_eq!(err, VmError::StepBudgetExhausted);
}

#[test]
fn deep_recursion_overflows_cleanly() {
    let mut b = ProgramBuilder::new();
    let f = b.declare_method("f", None, true, 1, 1);
    {
        let mut m = b.begin_body(f);
        m.load(0).push_int(1).add().call(f).ret_val();
        m.finish();
    }
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.push_int(0).call(f).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let err = Vm::new(&p, VmConfig::default()).run(&[]).unwrap_err();
    assert!(matches!(err, VmError::StackOverflow { .. }));
}
