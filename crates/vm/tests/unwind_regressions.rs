//! Exception-unwind regressions pinning the subtle pc arithmetic both
//! interpreters must agree on:
//!
//! * the resume pc after a `Call` is the *call's own* pc
//!   (`caller.pc.saturating_sub(1)`), including the pc-0 edge where the
//!   subtraction saturates;
//! * a fault in the *second half* of a fused superinstruction pair (the
//!   fast interpreter executes `load; getfield` as one op) is attributed
//!   to the second instruction's original pc, so handler ranges keep
//!   their exact Insn-level meaning;
//! * handler search walks past non-matching handlers in intermediate
//!   frames;
//! * a throw escaping a finalizer is swallowed without corrupting the
//!   interpreter loop that triggered the deep GC;
//! * the step budget lands on the same instruction even when that
//!   instruction is the buried half of a fused pair.
//!
//! Every scenario runs on both interpreters and the results are compared
//! wholesale, so these double as the smallest-possible differential
//! cases for the unwind machinery.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::error::VmError;
use heapdrag_vm::ids::MethodId;
use heapdrag_vm::interp::{InterpreterKind, RunOutcome, Vm, VmConfig};
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;
use heapdrag_vm::class::Visibility;

fn run_both(program: &Program, config: VmConfig) -> Result<RunOutcome, VmError> {
    let fast = Vm::new(
        program,
        VmConfig {
            interpreter: InterpreterKind::Fast,
            ..config.clone()
        },
    )
    .run(&[]);
    let reference = Vm::new(
        program,
        VmConfig {
            interpreter: InterpreterKind::Reference,
            ..config
        },
    )
    .run(&[]);
    assert_eq!(fast, reference, "interpreters disagree");
    fast
}

/// A 0-parameter static method whose body divides by zero.
fn add_boom(b: &mut ProgramBuilder) -> MethodId {
    let boom = b.declare_method("boom", None, true, 0, 1);
    let mut m = b.begin_body(boom);
    m.push_int(1).push_int(0).div().pop().ret();
    m.finish()
}

#[test]
fn handler_at_pc_zero_catches_fault_from_called_frame() {
    // The Call sits at pc 0 of main, so after the callee's frame is
    // popped the caller's resume pc is 1 and the faulting pc is
    // `1.saturating_sub(1) == 0` — the handler range [0, 1) must match.
    let mut b = ProgramBuilder::new();
    let arith = b.builtins().arithmetic;
    let boom = add_boom(&mut b);
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.label("try");
        m.call(boom); // pc 0
        m.label("end");
        m.jump("out");
        m.label("h").pop().push_int(42).print();
        m.label("out").ret();
        m.handler("try", "end", "h", Some(arith));
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let out = run_both(&p, VmConfig::default()).expect("caught");
    assert_eq!(out.output, vec![42]);
}

/// Builds `main` as `load 0; getfield val` on a null local — a fusable
/// pair — with the handler covering only `[cover_start, cover_end)`.
fn fused_null_getfield(cover_start: &str, cover_end: &str) -> Program {
    let mut b = ProgramBuilder::new();
    let npe = b.builtins().null_pointer;
    let c = b
        .begin_class("app.C")
        .field("val", Visibility::Public)
        .finish();
    let slot = b.field_slot(c, "val");
    let main = b.declare_method("main", None, true, 1, 2);
    {
        let mut m = b.begin_body(main);
        m.push_null().store(1); // pc 0, 1
        m.label("p2");
        m.load(1); // pc 2  ─┐ fused into LoadGetField
        m.label("p3");
        m.getfield(slot); // pc 3  ─┘ the NPE belongs *here*
        m.label("p4");
        m.pop().push_int(-1).print().ret();
        m.label("h").pop().push_int(7).print().ret();
        m.handler(cover_start, cover_end, "h", Some(npe));
        m.finish();
    }
    b.set_entry(main);
    b.finish().unwrap()
}

#[test]
fn fused_pair_fault_is_attributed_to_the_second_pc() {
    // Handler covering only the getfield's pc catches...
    let p = fused_null_getfield("p3", "p4");
    let out = run_both(&p, VmConfig::default()).expect("caught at pc 3");
    assert_eq!(out.output, vec![7]);

    // ...and a handler covering only the load's pc does not, even though
    // the fast interpreter raised the fault from an op fetched at pc 2.
    let p = fused_null_getfield("p2", "p3");
    let err = run_both(&p, VmConfig::default()).expect_err("pc 2 is not covered");
    assert!(
        matches!(err, VmError::UncaughtException { .. }),
        "expected an uncaught NPE, got {err:?}"
    );
}

#[test]
fn unwind_searches_past_non_matching_intermediate_handlers() {
    // main ── f (handler for app.Exc only) ── g (throws arithmetic):
    // the unwind must pop g, reject f's handler, and land in main's.
    let mut b = ProgramBuilder::new();
    let arith = b.builtins().arithmetic;
    let exc = b.begin_class("app.Exc").finish();
    let g = add_boom(&mut b);
    let f = b.declare_method("f", None, true, 0, 1);
    {
        let mut m = b.begin_body(f);
        m.label("fs");
        m.call(g);
        m.label("fe");
        m.ret_val();
        m.label("fh").pop().push_int(-9).ret_val();
        m.handler("fs", "fe", "fh", Some(exc));
        m.finish();
    }
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.push_int(1).print(); // before
        m.label("ms");
        m.call(f);
        m.pop();
        m.label("me");
        m.jump("out");
        m.label("mh").pop().push_int(3).print();
        m.label("out").push_int(2).print().ret();
        m.handler("ms", "me", "mh", Some(arith));
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let out = run_both(&p, VmConfig::default()).expect("main catches");
    assert_eq!(out.output, vec![1, 3, 2]);
}

#[test]
fn throw_escaping_a_finalizer_is_swallowed() {
    // The finalizer divides by zero; the deep GC that runs it must not
    // abort the program or disturb the mutator's observable output.
    let mut b = ProgramBuilder::new();
    let counter = b.static_var("G.finalized", Visibility::Public, Value::Int(0));
    let res = b.begin_class("app.Res").finish();
    let fin = b.declare_method("finalize", Some(res), false, 1, 1);
    {
        let mut m = b.begin_body(fin);
        m.getstatic(counter).push_int(1).add().putstatic(counter);
        m.push_int(1).push_int(0).div().pop(); // throws out of the finalizer
        m.ret();
        m.finish();
    }
    b.set_finalizer(res, fin);
    let main = b.declare_method("main", None, true, 1, 2);
    {
        let mut m = b.begin_body(main);
        for _ in 0..3 {
            m.new_obj(res).pop();
        }
        m.push_int(0).store(1);
        m.label("churn");
        m.load(1).push_int(400).cmpge().branch("done");
        m.push_int(40).new_array().pop();
        m.load(1).push_int(1).add().store(1);
        m.jump("churn");
        m.label("done");
        m.getstatic(counter).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let out = run_both(&p, VmConfig::profiling()).expect("survives finalizer throws");
    assert_eq!(out.output, vec![3], "all three finalizers still ran");
}

#[test]
fn fused_second_half_underflow_matches_reference_attribution() {
    // `push 5; add` fuses into PushIntAdd; the underflow happens while
    // popping the *second* operand, so both interpreters must report the
    // add's pc (1), not the push's (0).
    let mut b = ProgramBuilder::new();
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.push_int(5).add().pop().ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    let err = run_both(&p, VmConfig::default()).expect_err("underflows");
    assert_eq!(err, VmError::StackUnderflow { method: main, pc: 1 });
}

#[test]
fn step_budget_lands_identically_inside_fused_pairs() {
    // `push 1; push 2; add; print; ret` — the (push 2, add) pair fuses,
    // so budget 3 exhausts *between* the halves of one fast op.
    let mut b = ProgramBuilder::new();
    let main = b.declare_method("main", None, true, 1, 1);
    {
        let mut m = b.begin_body(main);
        m.push_int(1).push_int(2).add().print().ret();
        m.finish();
    }
    b.set_entry(main);
    let p = b.finish().unwrap();
    for budget in 1..=4 {
        let config = VmConfig {
            max_steps: Some(budget),
            ..VmConfig::default()
        };
        let r = run_both(&p, config);
        assert_eq!(r, Err(VmError::StepBudgetExhausted), "budget {budget}");
    }
    let full = run_both(
        &p,
        VmConfig {
            max_steps: Some(5),
            ..VmConfig::default()
        },
    )
    .expect("five steps suffice");
    assert_eq!(full.output, vec![3]);
    assert_eq!(full.steps, 5);
}
